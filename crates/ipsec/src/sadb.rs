//! Security association database (SADB).
//!
//! A host — the paper's example is a gateway with "multiple SAs existing
//! at the same time, either for the same peer or for different peers" —
//! keeps its SAs here. The §3 cost argument is about exactly this
//! object: after a reboot, the IETF remedy renegotiates *every* SA, while
//! SAVE/FETCH wakes them all up with one FETCH + SAVE each.
//!
//! # Storage layout
//!
//! Endpoints live in slab vectors (`Vec<Option<...>>`, one per
//! direction, with free-lists for slot reuse), so the hot
//! [`Sadb::process_batch`] drain walks cache-dense contiguous storage
//! instead of chasing tree nodes. A `BTreeMap<spi, slot>` per direction
//! is kept purely as the *deterministic index*: every SPI-ordered sweep
//! — [`Sadb::recover_all`], [`Sadb::iter_outbound`], the wake-up event
//! order a [`crate::Gateway`] reports — walks the index, which the
//! seeded harness scenarios rely on.
//!
//! # The pending-save index
//!
//! Alongside the slabs, the database maintains one ordered due-set per
//! direction of SPIs that *may* have a background SAVE in flight. Every
//! datapath entry point records the no-save → save-pending transition
//! into it, so [`crate::Gateway::save_completed`] completes in time
//! proportional to the SAs that actually owe a save instead of sweeping
//! a million-entry fleet. The set is a superset (entries are verified
//! against the endpoint before completing, and false positives are
//! dropped), which keeps the maintenance a single capture around each
//! mutation instead of a bookkeeping protocol.

use std::collections::{BTreeMap, BTreeSet};

use bytes::Bytes;
use reset_stable::{StableError, StableStore};

use anti_replay::{Phase, SeqNum};

use crate::esp::{Inbound, Outbound, RxReject, RxResult};
use crate::IpsecError;

/// Both directional endpoints torn out of the database by
/// [`Sadb::remove`] — whichever of the two existed for the SPI.
#[derive(Debug)]
pub struct RemovedSa<S> {
    /// The outbound endpoint, if one was installed.
    pub outbound: Option<Outbound<S>>,
    /// The inbound endpoint, if one was installed.
    pub inbound: Option<Inbound<S>>,
}

/// The SA database of one host.
///
/// Endpoint storage is slab-based with a `BTreeMap` SPI index per
/// direction (see the [crate docs](crate)): lookups and iteration are
/// SPI-deterministic, while the endpoints themselves sit in contiguous
/// vectors for cache-dense batch drains.
///
/// # Examples
///
/// ```
/// use reset_ipsec::{Sadb, SaKeys, SecurityAssociation};
/// use reset_stable::MemStable;
///
/// let mut sadb: Sadb<MemStable> = Sadb::new();
/// let keys = SaKeys::derive(b"secret", b"out");
/// sadb.install_outbound(SecurityAssociation::new(1, keys), MemStable::new(), 25);
/// assert_eq!(sadb.outbound_count(), 1);
/// let wire = sadb.protect(1, b"data")?.expect("up");
/// # Ok::<(), reset_ipsec::IpsecError>(())
/// ```
#[derive(Debug, Default)]
pub struct Sadb<S> {
    /// Outbound endpoints, slab order (holes are free slots).
    out_slots: Vec<Option<Outbound<S>>>,
    /// Inbound endpoints, slab order.
    in_slots: Vec<Option<Inbound<S>>>,
    /// Deterministic SPI → slab-slot index, outbound.
    out_index: BTreeMap<u32, u32>,
    /// Deterministic SPI → slab-slot index, inbound.
    in_index: BTreeMap<u32, u32>,
    /// Reusable outbound slots.
    out_free: Vec<u32>,
    /// Reusable inbound slots.
    in_free: Vec<u32>,
    /// SPIs whose outbound endpoint may owe a background SAVE.
    saves_out: BTreeSet<u32>,
    /// SPIs whose inbound endpoint may owe a background SAVE.
    saves_in: BTreeSet<u32>,
    /// True when a fleet-wide recovery sweep left the save index out of
    /// date (wake-up SAVEs issued or completed in bulk). Consumers
    /// rebuild via [`Sadb::resync_saves`] before trusting the sets —
    /// deferring the rebuild keeps the recover-storm loop free of
    /// per-SA index maintenance it would immediately throw away.
    saves_stale: bool,
}

impl<S> Sadb<S> {
    /// Total number of installed SA endpoints (outbound + inbound; an SA
    /// pair installed in both directions counts twice, matching what
    /// [`Sadb::recover_all`] reports).
    pub fn len(&self) -> usize {
        self.out_index.len() + self.in_index.len()
    }

    /// True iff no SA is installed in either direction.
    pub fn is_empty(&self) -> bool {
        self.out_index.is_empty() && self.in_index.is_empty()
    }
}

impl<S: StableStore> Sadb<S> {
    /// An empty database.
    pub fn new() -> Self {
        Sadb {
            out_slots: Vec::new(),
            in_slots: Vec::new(),
            out_index: BTreeMap::new(),
            in_index: BTreeMap::new(),
            out_free: Vec::new(),
            in_free: Vec::new(),
            saves_out: BTreeSet::new(),
            saves_in: BTreeSet::new(),
            saves_stale: false,
        }
    }

    /// Installs an outbound SA with its persistent store and save
    /// interval. Replaces any previous SA with the same SPI (reusing its
    /// slab slot).
    pub fn install_outbound(
        &mut self,
        sa: crate::SecurityAssociation,
        store: S,
        k: u64,
    ) -> &mut Outbound<S> {
        let spi = sa.spi();
        let ep = Outbound::new(sa, store, k);
        // A fresh endpoint owes no save; drop any stale index entry
        // from a replaced predecessor.
        self.saves_out.remove(&spi);
        let slot = match self.out_index.get(&spi).copied() {
            Some(slot) => {
                self.out_slots[slot as usize] = Some(ep);
                slot
            }
            None => {
                let slot = match self.out_free.pop() {
                    Some(slot) => {
                        self.out_slots[slot as usize] = Some(ep);
                        slot
                    }
                    None => {
                        self.out_slots.push(Some(ep));
                        (self.out_slots.len() - 1) as u32
                    }
                };
                self.out_index.insert(spi, slot);
                slot
            }
        };
        self.out_slots[slot as usize]
            .as_mut()
            .expect("just installed")
    }

    /// Installs an inbound SA.
    pub fn install_inbound(
        &mut self,
        sa: crate::SecurityAssociation,
        store: S,
        k: u64,
        w: u64,
    ) -> &mut Inbound<S> {
        let spi = sa.spi();
        let ep = Inbound::new(sa, store, k, w);
        self.saves_in.remove(&spi);
        let slot = match self.in_index.get(&spi).copied() {
            Some(slot) => {
                self.in_slots[slot as usize] = Some(ep);
                slot
            }
            None => {
                let slot = match self.in_free.pop() {
                    Some(slot) => {
                        self.in_slots[slot as usize] = Some(ep);
                        slot
                    }
                    None => {
                        self.in_slots.push(Some(ep));
                        (self.in_slots.len() - 1) as u32
                    }
                };
                self.in_index.insert(spi, slot);
                slot
            }
        };
        self.in_slots[slot as usize]
            .as_mut()
            .expect("just installed")
    }

    /// Number of outbound SAs.
    pub fn outbound_count(&self) -> usize {
        self.out_index.len()
    }

    /// Number of inbound SAs.
    pub fn inbound_count(&self) -> usize {
        self.in_index.len()
    }

    /// Looks up an outbound SA (read-only).
    pub fn outbound(&self, spi: u32) -> Option<&Outbound<S>> {
        let slot = self.out_index.get(&spi).copied()?;
        self.out_slots[slot as usize].as_ref()
    }

    /// Looks up an inbound SA (read-only).
    pub fn inbound(&self, spi: u32) -> Option<&Inbound<S>> {
        let slot = self.in_index.get(&spi).copied()?;
        self.in_slots[slot as usize].as_ref()
    }

    /// Looks up an outbound SA.
    ///
    /// Note for direct datapath use: a background SAVE issued through
    /// this handle (rather than through [`Sadb::protect`]) is invisible
    /// to the pending-save index until the next indexed operation on
    /// the SPI — complete such saves directly on the endpoint.
    pub fn outbound_mut(&mut self, spi: u32) -> Option<&mut Outbound<S>> {
        let slot = self.out_index.get(&spi).copied()?;
        self.out_slots[slot as usize].as_mut()
    }

    /// Looks up an inbound SA (the caveat on [`Sadb::outbound_mut`]
    /// applies here too).
    pub fn inbound_mut(&mut self, spi: u32) -> Option<&mut Inbound<S>> {
        let slot = self.in_index.get(&spi).copied()?;
        self.in_slots[slot as usize].as_mut()
    }

    /// Iterates over outbound endpoints in SPI order.
    pub fn iter_outbound(&self) -> impl Iterator<Item = (u32, &Outbound<S>)> {
        self.out_index.iter().map(|(&spi, &slot)| {
            (
                spi,
                self.out_slots[slot as usize].as_ref().expect("indexed"),
            )
        })
    }

    /// Iterates over inbound endpoints in SPI order.
    pub fn iter_inbound(&self) -> impl Iterator<Item = (u32, &Inbound<S>)> {
        self.in_index
            .iter()
            .map(|(&spi, &slot)| (spi, self.in_slots[slot as usize].as_ref().expect("indexed")))
    }

    /// Mutably iterates over outbound endpoints in SPI order (save
    /// completion sweeps, fault injection). Collects the references up
    /// front, so it is a cold-path tool, not a drain loop.
    pub fn iter_outbound_mut(&mut self) -> impl Iterator<Item = (u32, &mut Outbound<S>)> {
        let mut refs: Vec<(u32, &mut Outbound<S>)> = self
            .out_slots
            .iter_mut()
            .filter_map(|s| s.as_mut())
            .map(|o| (o.sa().spi(), o))
            .collect();
        refs.sort_unstable_by_key(|(spi, _)| *spi);
        refs.into_iter()
    }

    /// Mutably iterates over inbound endpoints in SPI order.
    pub fn iter_inbound_mut(&mut self) -> impl Iterator<Item = (u32, &mut Inbound<S>)> {
        let mut refs: Vec<(u32, &mut Inbound<S>)> = self
            .in_slots
            .iter_mut()
            .filter_map(|s| s.as_mut())
            .map(|i| (i.sa().spi(), i))
            .collect();
        refs.sort_unstable_by_key(|(spi, _)| *spi);
        refs.into_iter()
    }

    /// Removes both directions of `spi` (SA teardown). Returns the
    /// removed endpoints — e.g. to erase their persistent slots, which a
    /// correct teardown must do before the SPI can be reused — or `None`
    /// if the SPI was not installed in either direction. Freed slab
    /// slots are reused by later installs.
    pub fn remove(&mut self, spi: u32) -> Option<RemovedSa<S>> {
        let outbound = self.out_index.remove(&spi).map(|slot| {
            self.out_free.push(slot);
            self.out_slots[slot as usize].take().expect("indexed")
        });
        let inbound = self.in_index.remove(&spi).map(|slot| {
            self.in_free.push(slot);
            self.in_slots[slot as usize].take().expect("indexed")
        });
        if outbound.is_none() && inbound.is_none() {
            return None;
        }
        self.saves_out.remove(&spi);
        self.saves_in.remove(&spi);
        Some(RemovedSa { outbound, inbound })
    }

    /// Protects a payload on the outbound SA `spi`.
    ///
    /// # Errors
    ///
    /// [`IpsecError::UnknownSa`] if no such SA; datapath errors otherwise.
    pub fn protect(&mut self, spi: u32, payload: &[u8]) -> Result<Option<Bytes>, IpsecError> {
        let slot = self
            .out_index
            .get(&spi)
            .copied()
            .ok_or(IpsecError::UnknownSa { spi })?;
        let out = self.out_slots[slot as usize].as_mut().expect("indexed");
        let was_pending = out.seq_state().pending_save().is_some();
        let res = out.protect(payload);
        let now_pending = out.seq_state().pending_save().is_some();
        if now_pending && !was_pending {
            self.saves_out.insert(spi);
        }
        res
    }

    /// Dispatches an inbound wire packet to its SA by SPI.
    ///
    /// # Errors
    ///
    /// [`IpsecError::UnknownSa`] for an unknown SPI; datapath errors
    /// otherwise.
    pub fn process(&mut self, wire: &[u8]) -> Result<RxResult, IpsecError> {
        let spi = reset_wire::peek_spi(wire).ok_or(IpsecError::Wire(
            reset_wire::WireError::Truncated {
                needed: 4,
                got: wire.len(),
            },
        ))?;
        let slot = self
            .in_index
            .get(&spi)
            .copied()
            .ok_or(IpsecError::UnknownSa { spi })?;
        let inbound = self.in_slots[slot as usize].as_mut().expect("indexed");
        let was_pending = inbound.seq_state().pending_save().is_some();
        let res = inbound.process(wire);
        let now_pending = inbound.seq_state().pending_save().is_some();
        if now_pending && !was_pending {
            self.saves_in.insert(spi);
        }
        res
    }

    /// [`Sadb::process`] for shared buffers: auth-only payloads come
    /// back as zero-copy slices of `wire` and wake-up buffering is a
    /// reference-count bump (see [`Inbound::process_bytes`]).
    ///
    /// # Errors
    ///
    /// Same as [`Sadb::process`].
    pub fn process_bytes(&mut self, wire: &Bytes) -> Result<RxResult, IpsecError> {
        let spi = reset_wire::peek_spi(wire).ok_or(IpsecError::Wire(
            reset_wire::WireError::Truncated {
                needed: 4,
                got: wire.len(),
            },
        ))?;
        let slot = self
            .in_index
            .get(&spi)
            .copied()
            .ok_or(IpsecError::UnknownSa { spi })?;
        let inbound = self.in_slots[slot as usize].as_mut().expect("indexed");
        let was_pending = inbound.seq_state().pending_save().is_some();
        let res = inbound.process_bytes(wire);
        let now_pending = inbound.seq_state().pending_save().is_some();
        if now_pending && !was_pending {
            self.saves_in.insert(spi);
        }
        res
    }

    /// Drains a queue of inbound packets, in arrival order, with one
    /// result per packet.
    ///
    /// Packets are dispatched in runs of equal SPI so the SA lookup (and
    /// the run's shared decryption arena inside
    /// [`Inbound::process_batch`]) is amortized across each run rather
    /// than paid per packet. Per-packet failures — unknown SPI, bad
    /// framing, failed authentication — come back in-line as
    /// [`RxResult::Rejected`] instead of aborting the drain. Wall-clock
    /// is on par with per-packet [`Sadb::process`] today (the pipeline
    /// is crypto-bound); the batch form's win is its allocation profile
    /// — see `BENCH_datapath.json` and the memory caveat on
    /// [`Inbound::process_batch`].
    ///
    /// # Errors
    ///
    /// Reserved for non-per-packet infrastructure failures; today all
    /// failures are reported in-line and the call returns `Ok`.
    ///
    /// # Examples
    ///
    /// ```
    /// use reset_ipsec::{Sadb, SaKeys, SecurityAssociation};
    /// use reset_stable::MemStable;
    ///
    /// let mut sadb: Sadb<MemStable> = Sadb::new();
    /// let keys = SaKeys::derive(b"secret", b"pair");
    /// sadb.install_outbound(SecurityAssociation::new(1, keys.clone()), MemStable::new(), 25);
    /// sadb.install_inbound(SecurityAssociation::new(1, keys), MemStable::new(), 25, 64);
    /// let queue: Vec<_> = (0..4)
    ///     .map(|i| sadb.protect(1, format!("pkt {i}").as_bytes()).unwrap().unwrap())
    ///     .collect();
    /// let results = sadb.process_batch(&queue)?;
    /// assert!(results.iter().all(|r| r.is_delivered()));
    /// # Ok::<(), reset_ipsec::IpsecError>(())
    /// ```
    pub fn process_batch(&mut self, wires: &[Bytes]) -> Result<Vec<RxResult>, IpsecError> {
        let mut out = Vec::with_capacity(wires.len());
        let mut i = 0;
        while i < wires.len() {
            let Some(spi) = reset_wire::peek_spi(&wires[i]) else {
                out.push(RxResult::Rejected(RxReject::Wire(
                    reset_wire::WireError::Truncated {
                        needed: 4,
                        got: wires[i].len(),
                    },
                )));
                i += 1;
                continue;
            };
            // Extend the run of consecutive packets for the same SA.
            let mut j = i + 1;
            while j < wires.len() && wires[j].len() >= 4 && wires[j][0..4] == wires[i][0..4] {
                j += 1;
            }
            match self.in_index.get(&spi).copied() {
                Some(slot) => {
                    let inbound = self.in_slots[slot as usize].as_mut().expect("indexed");
                    let was_pending = inbound.seq_state().pending_save().is_some();
                    let res = inbound.process_batch(&wires[i..j]);
                    let now_pending = inbound.seq_state().pending_save().is_some();
                    if now_pending && !was_pending {
                        self.saves_in.insert(spi);
                    }
                    out.extend(res?);
                }
                None => {
                    out.extend((i..j).map(|_| RxResult::Rejected(RxReject::UnknownSa { spi })));
                }
            }
            i = j;
        }
        Ok(out)
    }

    /// Routed form of [`Sadb::process_batch`] for the sharded fan-out:
    /// drains the frames of a *shared* batch selected by `route`
    /// (indices into `batch`, in arrival order) without cloning a
    /// per-shard `Vec<Bytes>` first. Semantically identical to
    /// `process_batch(&route.map(|i| batch[i]))` — runs of equal SPI are
    /// detected over the routed view and dispatched through the same
    /// gather drain.
    pub(crate) fn process_batch_routed(
        &mut self,
        batch: &[Bytes],
        route: &[u32],
    ) -> Result<Vec<RxResult>, IpsecError> {
        let mut out = Vec::with_capacity(route.len());
        let mut i = 0;
        while i < route.len() {
            let wire = &batch[route[i] as usize];
            let Some(spi) = reset_wire::peek_spi(wire) else {
                out.push(RxResult::Rejected(RxReject::Wire(
                    reset_wire::WireError::Truncated {
                        needed: 4,
                        got: wire.len(),
                    },
                )));
                i += 1;
                continue;
            };
            let mut j = i + 1;
            while j < route.len() {
                let next = &batch[route[j] as usize];
                if next.len() >= 4 && next[0..4] == wire[0..4] {
                    j += 1;
                } else {
                    break;
                }
            }
            match self.in_index.get(&spi).copied() {
                Some(slot) => {
                    let inbound = self.in_slots[slot as usize].as_mut().expect("indexed");
                    let was_pending = inbound.seq_state().pending_save().is_some();
                    let res = inbound.process_batch_gather(
                        j - i,
                        route[i..j].iter().map(|&k| &batch[k as usize]),
                    );
                    let now_pending = inbound.seq_state().pending_save().is_some();
                    if now_pending && !was_pending {
                        self.saves_in.insert(spi);
                    }
                    out.extend(res?);
                }
                None => {
                    out.extend((i..j).map(|_| RxResult::Rejected(RxReject::UnknownSa { spi })));
                }
            }
            i = j;
        }
        Ok(out)
    }

    /// A host-wide reset: every SA loses its volatile counters (and any
    /// in-flight background SAVE with them).
    pub fn reset_all(&mut self) {
        for o in self.out_slots.iter_mut().flatten() {
            o.reset();
        }
        for i in self.in_slots.iter_mut().flatten() {
            i.reset();
        }
        self.saves_out.clear();
        self.saves_in.clear();
        self.saves_stale = false;
    }

    /// SAVE/FETCH wake-up of the whole database; returns the number of
    /// SAs recovered (the t5 experiment's cheap path — compare with one
    /// full IKE handshake *per SA* for the IETF remedy).
    ///
    /// # Errors
    ///
    /// First store failure aborts the sweep.
    pub fn recover_all(&mut self) -> Result<usize, StableError> {
        let res = self.recover_all_sweep();
        self.saves_stale = true;
        res
    }

    fn recover_all_sweep(&mut self) -> Result<usize, StableError> {
        let mut n = 0;
        for &slot in self.out_index.values() {
            let o = self.out_slots[slot as usize].as_mut().expect("indexed");
            o.wake_up()?;
            n += 1;
        }
        for &slot in self.in_index.values() {
            let i = self.in_slots[slot as usize].as_mut().expect("indexed");
            i.wake_up()?;
            n += 1;
        }
        Ok(n)
    }

    /// First half of [`Sadb::recover_all`] for timed drivers: FETCH +
    /// leap + issue the synchronous wake-up SAVE on every SA that is
    /// down. Inbound traffic arriving before
    /// [`Sadb::finish_recover_all`] is buffered per SA.
    ///
    /// A FETCH failure — a corrupt record, or a generation rollback
    /// caught by the store witness — no longer aborts the sweep: the
    /// failing SA direction stays `Down` and is reported in the returned
    /// list, while every healthy SA proceeds with its wake-up. The layer
    /// above ([`crate::Gateway`]) **fails the reported SAs closed**:
    /// no window leaped from untrusted state is safe, so the SA is
    /// replaced rather than resumed.
    pub fn begin_recover_all(&mut self) -> Vec<(u32, StableError)> {
        let mut failed = Vec::new();
        for (&spi, &slot) in self.out_index.iter() {
            let o = self.out_slots[slot as usize].as_mut().expect("indexed");
            if o.phase() == Phase::Down {
                if let Err(e) = o.begin_wakeup() {
                    failed.push((spi, e));
                }
            }
        }
        for (&spi, &slot) in self.in_index.iter() {
            let i = self.in_slots[slot as usize].as_mut().expect("indexed");
            if i.phase() == Phase::Down {
                if let Err(e) = i.begin_wakeup() {
                    failed.push((spi, e));
                }
            }
        }
        // The wake-up SAVEs issued above are pending until
        // `finish_recover_all`; consumers resync before trusting the
        // index.
        self.saves_stale = true;
        failed
    }

    /// Second half of [`Sadb::recover_all`]: completes the wake-up SAVE
    /// on every waking SA, rebuilds the windows at the leaped edges and
    /// classifies the packets buffered in between. Returns the number of
    /// SA directions recovered and, per inbound SA in SPI order, the
    /// buffered packets' outcomes in arrival order.
    ///
    /// # Errors
    ///
    /// First store failure aborts the sweep.
    #[allow(clippy::type_complexity)]
    pub fn finish_recover_all(&mut self) -> Result<(usize, Vec<(u32, RxResult)>), StableError> {
        let res = self.finish_recover_all_sweep();
        // The wake-up SAVEs are done, but classifying buffered frames
        // can put *new* background SAVEs in flight — the deferred
        // rebuild picks those up.
        self.saves_stale = true;
        res
    }

    fn finish_recover_all_sweep(&mut self) -> Result<(usize, Vec<(u32, RxResult)>), StableError> {
        let mut n = 0;
        for &slot in self.out_index.values() {
            let o = self.out_slots[slot as usize].as_mut().expect("indexed");
            if o.phase() == Phase::Waking {
                o.finish_wakeup()?;
                n += 1;
            }
        }
        let mut buffered = Vec::new();
        for (&spi, &slot) in self.in_index.iter() {
            let i = self.in_slots[slot as usize].as_mut().expect("indexed");
            if i.phase() == Phase::Waking {
                let outcomes = i.finish_wakeup()?;
                buffered.extend(outcomes.into_iter().map(|r| (spi, r)));
                n += 1;
            }
        }
        Ok((n, buffered))
    }

    /// Rebuilds the pending-save index from the endpoints' own state —
    /// the bulk form of the per-endpoint transition tracking, for the
    /// fleet-wide recovery sweeps where per-SPI set surgery would pay a
    /// tree rebalance per SA (measured ~40% on a 256-SA recover storm).
    /// Index iteration yields SPIs in ascending order, so the collect
    /// takes `BTreeSet`'s O(n) sorted bulk-build path, and the rebuild
    /// is exact: a superset of the truly pending endpoints with no
    /// stale carry-over.
    fn resync_saves(&mut self) {
        let slots = &self.out_slots;
        self.saves_out = self
            .out_index
            .iter()
            .filter(|&(_, &slot)| {
                slots[slot as usize]
                    .as_ref()
                    .expect("indexed")
                    .seq_state()
                    .pending_save()
                    .is_some()
            })
            .map(|(&spi, _)| spi)
            .collect();
        let slots = &self.in_slots;
        self.saves_in = self
            .in_index
            .iter()
            .filter(|&(_, &slot)| {
                slots[slot as usize]
                    .as_ref()
                    .expect("indexed")
                    .seq_state()
                    .pending_save()
                    .is_some()
            })
            .map(|(&spi, _)| spi)
            .collect();
    }

    /// Marks `spi`'s outbound endpoint as possibly owing a background
    /// SAVE — for callers (the gateway's `protect`) that drive the
    /// endpoint through [`Sadb::outbound_mut`] and observe the
    /// no-save → save-pending transition themselves.
    pub(crate) fn note_outbound_save(&mut self, spi: u32) {
        self.saves_out.insert(spi);
    }

    /// True iff any SA actually has a background SAVE in flight. Walks
    /// the pending-save index (a superset), verifying each candidate
    /// against its endpoint — O(pending), not O(fleet).
    pub(crate) fn has_pending_save(&self) -> bool {
        if self.saves_stale {
            // A recovery sweep invalidated the index; answer from the
            // endpoints directly (`&self` can't rebuild the sets).
            return self
                .out_slots
                .iter()
                .flatten()
                .any(|o| o.seq_state().pending_save().is_some())
                || self
                    .in_slots
                    .iter()
                    .flatten()
                    .any(|i| i.seq_state().pending_save().is_some());
        }
        self.saves_out.iter().any(
            |&spi| matches!(self.outbound(spi), Some(o) if o.seq_state().pending_save().is_some()),
        ) || self.saves_in.iter().any(
            |&spi| matches!(self.inbound(spi), Some(i) if i.seq_state().pending_save().is_some()),
        )
    }

    /// Completes every in-flight background SAVE (outbound SPIs
    /// ascending, then inbound), dropping verified-stale index entries
    /// along the way. On a store failure the failing SPI (and everything
    /// after it) stays indexed so the completion can be retried.
    pub(crate) fn complete_pending_saves(&mut self) -> Result<(), StableError> {
        if self.saves_stale {
            self.resync_saves();
            self.saves_stale = false;
        }
        while let Some(&spi) = self.saves_out.iter().next() {
            let slot = self.out_index.get(&spi).copied();
            if let Some(slot) = slot {
                let o = self.out_slots[slot as usize].as_mut().expect("indexed");
                if o.seq_state().pending_save().is_some() {
                    o.save_completed()?;
                }
            }
            self.saves_out.remove(&spi);
        }
        while let Some(&spi) = self.saves_in.iter().next() {
            let slot = self.in_index.get(&spi).copied();
            if let Some(slot) = slot {
                let i = self.in_slots[slot as usize].as_mut().expect("indexed");
                if i.seq_state().pending_save().is_some() {
                    i.save_completed()?;
                }
            }
            self.saves_in.remove(&spi);
        }
        Ok(())
    }

    /// Every installed SPI (either direction), ascending and deduplicated
    /// — the sweep order fleet-wide operations (sharded recovery
    /// accounting, per-SA scenario bookkeeping) iterate in.
    pub fn spis(&self) -> Vec<u32> {
        let mut spis: Vec<u32> = self
            .out_index
            .keys()
            .chain(self.in_index.keys())
            .copied()
            .collect();
        spis.sort_unstable();
        spis.dedup();
        spis
    }

    /// Iterates over outbound `(spi, next_seq)` pairs.
    pub fn outbound_seqs(&self) -> impl Iterator<Item = (u32, SeqNum)> + '_ {
        self.iter_outbound()
            .map(|(spi, o)| (spi, o.seq_state().next_seq()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sa::{SaKeys, SecurityAssociation};
    use reset_stable::MemStable;

    fn sa(spi: u32) -> SecurityAssociation {
        SecurityAssociation::new(spi, SaKeys::derive(b"secret", &spi.to_be_bytes()))
    }

    fn sadb_with(n: u32) -> Sadb<MemStable> {
        let mut db = Sadb::new();
        for spi in 1..=n {
            db.install_outbound(sa(spi), MemStable::new(), 10);
            db.install_inbound(sa(spi), MemStable::new(), 10, 64);
        }
        db
    }

    #[test]
    fn install_and_count() {
        let db = sadb_with(5);
        assert_eq!(db.outbound_count(), 5);
        assert_eq!(db.inbound_count(), 5);
    }

    #[test]
    fn protect_and_process_dispatch_by_spi() {
        let mut db = sadb_with(3);
        let wire = db.protect(2, b"to sa 2").unwrap().unwrap();
        match db.process(&wire).unwrap() {
            RxResult::Delivered { payload, .. } => assert_eq!(&payload[..], b"to sa 2"),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn unknown_spi_errors() {
        let mut db = sadb_with(1);
        assert!(matches!(
            db.protect(99, b"x"),
            Err(IpsecError::UnknownSa { spi: 99 })
        ));
        let wire = db.protect(1, b"x").unwrap().unwrap();
        let mut foreign = wire.to_vec();
        foreign[3] = 42; // SPI 42 unknown — rejected before any crypto
        assert!(matches!(
            db.process(&foreign),
            Err(IpsecError::UnknownSa { spi: 42 })
        ));
    }

    #[test]
    fn remove_tears_down_both_directions() {
        let mut db = sadb_with(2);
        assert_eq!(db.len(), 4);
        let removed = db.remove(1).expect("spi 1 installed");
        assert_eq!(removed.outbound.expect("outbound half").sa().spi(), 1);
        assert_eq!(removed.inbound.expect("inbound half").sa().spi(), 1);
        assert!(db.remove(1).is_none(), "second remove is a no-op");
        assert_eq!(db.outbound_count(), 1);
        assert_eq!(db.len(), 2);
        assert!(!db.is_empty());
        assert!(db.protect(1, b"x").is_err());
    }

    #[test]
    fn freed_slots_are_reused_and_churn_keeps_spi_order() {
        let mut db = sadb_with(4);
        let slots_before = db.out_slots.len();
        db.remove(2);
        db.remove(3);
        // Two new SPIs must reuse the two freed slots, not grow the slab.
        db.install_outbound(sa(100), MemStable::new(), 10);
        db.install_inbound(sa(100), MemStable::new(), 10, 64);
        db.install_outbound(sa(50), MemStable::new(), 10);
        db.install_inbound(sa(50), MemStable::new(), 10, 64);
        assert_eq!(db.out_slots.len(), slots_before, "slab did not grow");
        assert!(db.out_free.is_empty(), "both free slots consumed");
        // The deterministic index still iterates in SPI order.
        let outs: Vec<u32> = db.iter_outbound().map(|(spi, _)| spi).collect();
        assert_eq!(outs, vec![1, 4, 50, 100]);
        let ins: Vec<u32> = db.iter_inbound().map(|(spi, _)| spi).collect();
        assert_eq!(ins, outs);
        // And the datapath routes to the right endpoints after churn.
        let wire = db.protect(50, b"to fifty").unwrap().unwrap();
        match db.process(&wire).unwrap() {
            RxResult::Delivered { payload, .. } => assert_eq!(&payload[..], b"to fifty"),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn pending_save_index_tracks_background_saves() {
        let mut db = sadb_with(2);
        assert!(!db.has_pending_save());
        // K=10: the 10th packet puts a background save in flight on
        // both the sender and (after processing) the receiver.
        for _ in 0..10 {
            let w = db.protect(1, b"data").unwrap().unwrap();
            db.process(&w).unwrap();
        }
        assert!(db.has_pending_save());
        assert!(db.saves_out.contains(&1));
        assert!(db.saves_in.contains(&1));
        assert!(!db.saves_out.contains(&2), "untouched SA not indexed");
        db.complete_pending_saves().unwrap();
        assert!(!db.has_pending_save());
        assert!(db.saves_out.is_empty() && db.saves_in.is_empty());

        // Completing a save directly on the endpoint (the documented
        // escape hatch) leaves a stale index entry — a false positive
        // the next sweep verifies away without touching the store.
        for _ in 0..10 {
            db.protect(2, b"data").unwrap().unwrap();
        }
        assert!(db.has_pending_save());
        db.outbound_mut(2).unwrap().save_completed().unwrap();
        assert!(!db.has_pending_save(), "index verifies, never trusts");
        db.complete_pending_saves().unwrap();
        assert!(db.saves_out.is_empty());
    }

    #[test]
    fn gateway_reboot_recover_all() {
        let mut db = sadb_with(10);
        // Traffic on every SA; saves made durable.
        for spi in 1..=10u32 {
            for _ in 0..15 {
                let w = db.protect(spi, b"data").unwrap().unwrap();
                db.process(&w).unwrap();
            }
            db.outbound_mut(spi).unwrap().save_completed().unwrap();
            db.inbound_mut(spi).unwrap().save_completed().unwrap();
        }
        db.reset_all();
        // Every SA is down.
        assert!(db.protect(3, b"x").unwrap().is_none());
        let recovered = db.recover_all().unwrap();
        assert_eq!(recovered, 20, "10 SAs × 2 directions");
        // Traffic flows again on all SAs; old replays bounce.
        for spi in 1..=10u32 {
            let w = db.protect(spi, b"fresh").unwrap().unwrap();
            // Sender leaped above receiver edge: delivered or (for the
            // sacrificed ≤2K range) rejected — never an error. Drive a
            // few packets to cross the leap.
            let mut delivered = false;
            let mut wire = w;
            for _ in 0..25 {
                if db.process(&wire).unwrap().is_delivered() {
                    delivered = true;
                    break;
                }
                wire = db.protect(spi, b"fresh").unwrap().unwrap();
            }
            assert!(delivered, "spi {spi} never resumed");
        }
    }

    #[test]
    fn process_batch_dispatches_runs_and_reports_unknown_spis() {
        let mut db = sadb_with(3);
        // Interleaved SPI runs + one unknown SPI + one runt packet.
        let mut queue: Vec<Bytes> = Vec::new();
        for _ in 0..4 {
            queue.push(db.protect(1, b"one").unwrap().unwrap());
        }
        for _ in 0..3 {
            queue.push(db.protect(2, b"two").unwrap().unwrap());
        }
        let mut foreign = db.protect(3, b"three").unwrap().unwrap().to_vec();
        foreign[3] = 99; // SPI 99 unknown
        queue.push(Bytes::from(foreign));
        queue.push(Bytes::copy_from_slice(&[0xAB; 2])); // runt
        for _ in 0..2 {
            queue.push(db.protect(1, b"one again").unwrap().unwrap());
        }

        let results = db.process_batch(&queue).unwrap();
        assert_eq!(results.len(), queue.len());
        assert!(results[..7].iter().all(|r| r.is_delivered()));
        assert!(matches!(
            results[7],
            RxResult::Rejected(RxReject::UnknownSa { spi: 99 })
        ));
        assert!(matches!(results[8], RxResult::Rejected(RxReject::Wire(_))));
        assert!(results[9..].iter().all(|r| r.is_delivered()));
    }

    #[test]
    fn process_batch_agrees_with_process() {
        let mut db_a = sadb_with(4);
        let mut db_b = sadb_with(4);
        let mut queue: Vec<Bytes> = Vec::new();
        for round in 0..10u32 {
            for spi in 1..=4u32 {
                queue.push(
                    db_a.protect(spi, format!("r{round} s{spi}").as_bytes())
                        .unwrap()
                        .unwrap(),
                );
            }
        }
        // Duplicate a slice of the queue: replays.
        queue.extend(queue[5..15].to_vec());
        // Keep db_b's outbound counters in sync (unused, but symmetric).
        let batch = db_a.process_batch(&queue).unwrap();
        for (i, wire) in queue.iter().enumerate() {
            let single = db_b.process(wire).unwrap();
            assert_eq!(batch[i], single, "packet {i}");
        }
    }

    #[test]
    fn process_batch_routed_agrees_with_contiguous_batch() {
        let mut db_routed = sadb_with(4);
        let mut db_contig = sadb_with(4);
        let mut batch: Vec<Bytes> = Vec::new();
        for round in 0..8u32 {
            for spi in 1..=4u32 {
                let payload = format!("r{round} s{spi}");
                batch.push(db_routed.protect(spi, payload.as_bytes()).unwrap().unwrap());
                // Keep db_contig's outbound counters identical so both
                // receivers face byte-identical wires.
                db_contig.protect(spi, payload.as_bytes()).unwrap();
            }
        }
        let mut foreign = batch[0].to_vec();
        foreign[3] = 99;
        batch.push(Bytes::from(foreign)); // unknown SPI
        batch.push(Bytes::copy_from_slice(&[0xCD; 3])); // runt
                                                        // A shard's view: every other frame, arrival order preserved.
        let route: Vec<u32> = (0..batch.len() as u32).filter(|i| i % 2 == 0).collect();
        let gathered: Vec<Bytes> = route.iter().map(|&i| batch[i as usize].clone()).collect();
        let routed = db_routed.process_batch_routed(&batch, &route).unwrap();
        let contig = db_contig.process_batch(&gathered).unwrap();
        assert_eq!(routed.len(), route.len());
        assert_eq!(routed, contig);
        assert!(routed.iter().any(|r| r.is_delivered()));
    }

    #[test]
    fn outbound_seqs_iterates() {
        let mut db = sadb_with(3);
        db.protect(1, b"x").unwrap();
        let seqs: std::collections::HashMap<u32, SeqNum> = db.outbound_seqs().collect();
        assert_eq!(seqs.len(), 3);
        assert_eq!(seqs[&1], SeqNum::new(2));
        assert_eq!(seqs[&2], SeqNum::new(1));
    }

    #[test]
    fn spis_unions_both_directions_sorted_deduped() {
        let mut db: Sadb<MemStable> = Sadb::new();
        db.install_outbound(sa(9), MemStable::new(), 10);
        db.install_outbound(sa(3), MemStable::new(), 10);
        db.install_inbound(sa(3), MemStable::new(), 10, 64);
        db.install_inbound(sa(7), MemStable::new(), 10, 64);
        assert_eq!(db.spis(), vec![3, 7, 9]);
        assert!(Sadb::<MemStable>::new().spis().is_empty());
    }

    #[test]
    fn iterators_walk_spis_in_order() {
        let mut db = Sadb::new();
        for &spi in &[9u32, 3, 7, 1] {
            db.install_outbound(sa(spi), MemStable::new(), 10);
            db.install_inbound(sa(spi), MemStable::new(), 10, 64);
        }
        let outs: Vec<u32> = db.iter_outbound().map(|(spi, _)| spi).collect();
        let ins: Vec<u32> = db.iter_inbound().map(|(spi, _)| spi).collect();
        assert_eq!(outs, vec![1, 3, 7, 9], "deterministic SPI order");
        assert_eq!(ins, outs);
        let outs_mut: Vec<u32> = db.iter_outbound_mut().map(|(spi, _)| spi).collect();
        let ins_mut: Vec<u32> = db.iter_inbound_mut().map(|(spi, _)| spi).collect();
        assert_eq!(outs_mut, vec![1, 3, 7, 9]);
        assert_eq!(ins_mut, outs_mut);
    }

    #[test]
    fn begin_recover_collects_failures_and_wakes_the_rest() {
        use reset_stable::{Fault, FaultyStable};
        let mut db: Sadb<FaultyStable<MemStable>> = Sadb::new();
        for spi in 1..=3u32 {
            db.install_outbound(sa(spi), FaultyStable::new(MemStable::new()), 10);
            db.install_inbound(sa(spi), FaultyStable::new(MemStable::new()), 10, 64);
        }
        for spi in 1..=3u32 {
            for _ in 0..15 {
                let w = db.protect(spi, b"data").unwrap().unwrap();
                db.process(&w).unwrap();
            }
            db.outbound_mut(spi).unwrap().save_completed().unwrap();
            db.inbound_mut(spi).unwrap().save_completed().unwrap();
        }
        db.reset_all();
        // SA 2's inbound FETCH will come back corrupt.
        db.inbound_mut(2)
            .unwrap()
            .store_mut()
            .push_fault(Fault::CorruptLoad);
        let failed = db.begin_recover_all();
        assert_eq!(failed.len(), 1, "{failed:?}");
        assert_eq!(failed[0].0, 2);
        // The sweep did not abort: the other five directions woke.
        let (recovered, _) = db.finish_recover_all().unwrap();
        assert_eq!(recovered, 5, "3 outbound + 2 healthy inbound");
        assert_eq!(db.inbound(2).unwrap().phase(), Phase::Down);
    }

    #[test]
    fn split_recovery_matches_atomic_recover_all() {
        let mut db = sadb_with(4);
        for spi in 1..=4u32 {
            for _ in 0..15 {
                let w = db.protect(spi, b"data").unwrap().unwrap();
                db.process(&w).unwrap();
            }
            db.outbound_mut(spi).unwrap().save_completed().unwrap();
            db.inbound_mut(spi).unwrap().save_completed().unwrap();
        }
        db.reset_all();
        assert!(db.begin_recover_all().is_empty(), "healthy stores");
        // A packet arriving mid-recovery is buffered, then classified.
        let w = {
            let mut other = sadb_with(4);
            for _ in 0..40 {
                other.protect(2, b"ahead").unwrap();
            }
            other.protect(2, b"fresh").unwrap().unwrap()
        };
        assert_eq!(db.process(&w).unwrap(), RxResult::Buffered);
        let (recovered, buffered) = db.finish_recover_all().unwrap();
        assert_eq!(recovered, 8, "4 SAs x 2 directions");
        assert_eq!(buffered.len(), 1);
        assert_eq!(buffered[0].0, 2);
        assert!(buffered[0].1.is_delivered(), "{buffered:?}");
    }
}

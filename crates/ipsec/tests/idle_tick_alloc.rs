//! Idle `Gateway::tick` must be allocation-free.
//!
//! The pre-wheel implementation built four temporaries (due-probe,
//! dead-peer, rekey, and sweep vectors) on *every* tick, even when no
//! timer was due. With the hierarchical timer wheel and the rekey
//! due-set, an idle tick only compares `now` against the wheel's cached
//! lower bound — no buckets are drained, nothing is allocated.
//!
//! A counting `#[global_allocator]` gates on a thread-local flag so the
//! assertion only observes the ticks under test, not the fixture setup.

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;
use std::sync::atomic::{AtomicU64, Ordering};

use reset_ipsec::{DpdConfig, GatewayBuilder, SaLifetime};

struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

thread_local! {
    static TRACK: Cell<bool> = const { Cell::new(false) };
}

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        if TRACK.with(Cell::get) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        if TRACK.with(Cell::get) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// Run `f` with allocation tracking enabled and return how many
/// allocations it performed on this thread.
fn allocations_during(f: impl FnOnce()) -> u64 {
    let before = ALLOCS.load(Ordering::Relaxed);
    TRACK.with(|t| t.set(true));
    f();
    TRACK.with(|t| t.set(false));
    ALLOCS.load(Ordering::Relaxed) - before
}

#[test]
fn idle_tick_does_not_allocate() {
    let mut gw = GatewayBuilder::in_memory()
        .dpd(DpdConfig::default())
        .rekey_after(SaLifetime {
            max_packets: 1_000_000,
            max_bytes: u64::MAX,
        })
        .build();

    // A fleet with live DPD detectors, scheduled wheel entries, and an
    // active rekey policy — the paths the old sweep allocated on.
    for spi in 1..=256u32 {
        gw.add_peer(spi, b"alloc-probe-master");
    }
    let frame = gw.protect(7, b"warm the datapath").unwrap().unwrap();
    gw.push_wire(&frame.wire).unwrap();

    // First tick arms every detector and populates the wheel; it may
    // allocate (wheel buckets grow, detectors are created).
    gw.tick(1_000);
    gw.poll_events();

    // Subsequent ticks before any deadline must be pure comparisons.
    let allocs = allocations_during(|| {
        for step in 1..=64u64 {
            gw.tick(1_000 + step);
        }
    });
    assert_eq!(
        allocs, 0,
        "idle tick allocated {allocs} times across 64 ticks; \
         the wheel's cached lower bound should have short-circuited"
    );
    assert_eq!(gw.poll_events(), vec![], "idle ticks must not emit events");
}

//! A hand-rolled JSON document tree and writer.
//!
//! The workspace vendors no serialization crate, and telemetry must
//! stay zero-dep, so reports are built as an explicit [`Json`] tree
//! and rendered by a ~60-line writer. Object keys keep insertion
//! order (a `Vec`, not a map), which makes rendered reports
//! deterministic — the same run always serializes byte-identically.

use std::fmt;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A non-negative integer (the common case for counters).
    U64(u64),
    /// A float; non-finite values render as `null` per JSON's rules.
    F64(f64),
    /// A string (escaped on render).
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object with insertion-ordered keys.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Convenience constructor for an object literal.
    pub fn obj(fields: Vec<(&str, Json)>) -> Json {
        Json::Obj(
            fields
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect(),
        )
    }

    /// Convenience constructor for a string value.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// Renders the tree as a compact JSON document.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::U64(n) => out.push_str(&n.to_string()),
            Json::F64(f) => {
                if f.is_finite() {
                    // Rust's shortest-roundtrip Display for finite f64
                    // is valid JSON (always digits, maybe '.', 'e', '-').
                    out.push_str(&f.to_string());
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => escape_into(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    escape_into(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render())
    }
}

/// Appends `s` as a quoted, escaped JSON string.
fn escape_into(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_nested_documents() {
        let doc = Json::obj(vec![
            ("name", Json::str("churn")),
            ("ok", Json::Bool(true)),
            ("count", Json::U64(42)),
            ("mean", Json::F64(1.5)),
            ("none", Json::Null),
            ("items", Json::Arr(vec![Json::U64(1), Json::U64(2)])),
        ]);
        assert_eq!(
            doc.render(),
            r#"{"name":"churn","ok":true,"count":42,"mean":1.5,"none":null,"items":[1,2]}"#
        );
    }

    #[test]
    fn escapes_strings() {
        let doc = Json::str("a\"b\\c\nd\u{1}");
        assert_eq!(doc.render(), "\"a\\\"b\\\\c\\nd\\u0001\"");
    }

    #[test]
    fn non_finite_floats_become_null() {
        assert_eq!(Json::F64(f64::NAN).render(), "null");
        assert_eq!(Json::F64(f64::INFINITY).render(), "null");
        assert_eq!(Json::F64(0.25).render(), "0.25");
    }

    #[test]
    fn object_key_order_is_preserved() {
        let doc = Json::obj(vec![("z", Json::U64(1)), ("a", Json::U64(2))]);
        assert_eq!(doc.render(), r#"{"z":1,"a":2}"#);
    }
}

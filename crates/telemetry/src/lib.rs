//! # `reset_telemetry` — observe the gateway without slowing it down
//!
//! A zero-dependency metrics and event-tracing layer for the
//! SAVE/FETCH stack. Everything the datapath touches is lock-free:
//! per-event-kind [`Counter`]s and log₂-bucket [`Histogram`]s are
//! plain relaxed atomics, recorded inline with no allocation. The
//! pieces that *do* take a lock — the [`TraceRing`] lifecycle trace
//! and the per-SA-class registry — are only touched on lifecycle
//! edges (install, rekey, recover, fail-closed), never per packet.
//!
//! A [`Telemetry`] handle is a cheap-clone `Arc`; one handle is shared
//! by every shard of a `ShardedGateway`, its WAL store, and the
//! harness that reads it. Instrumentation is strictly opt-in at the
//! recording sites (`Option<Telemetry>` checked with one branch), so
//! an uninstrumented gateway pays nothing.
//!
//! [`Telemetry::snapshot`] produces a plain-data [`Snapshot`] that
//! serializes to JSON through the hand-rolled [`Json`] writer — the
//! one report schema the whole workspace emits (see the harness crate
//! docs for the schema).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod counter;
mod histogram;
mod json;
mod trace;

pub use counter::Counter;
pub use histogram::{Bucket, Histogram, HistogramSnapshot, BUCKETS};
pub use json::Json;
pub use trace::{Severity, TraceEvent, TraceRing};

use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};

/// The kinds of gateway events telemetry counts, mirroring
/// `reset_ipsec::GatewayEvent` variant-for-variant (telemetry sits
/// below the ipsec crate, so the mapping lives on the gateway side).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum EventKind {
    /// Fresh payload delivered to the application.
    Delivered,
    /// Anti-replay window rejected a frame.
    ReplayDropped,
    /// ICV verification failed.
    AuthFailed,
    /// No SA matched the frame's SPI.
    UnknownSa,
    /// Frame buffered during recovery wakeup.
    Buffered,
    /// Frame dropped because the SA was down.
    DroppedDown,
    /// Rekey began.
    RekeyStarted,
    /// Rekey finished.
    RekeyCompleted,
    /// Dead-peer-detection probe is due.
    ProbeDue,
    /// Dead-peer-detection declared the peer dead.
    PeerDead,
    /// Recovery completed.
    Recovered,
    /// Recovery failed closed and the SA was replaced.
    FailedClosed,
}

impl EventKind {
    /// Every kind, in declaration order (the order snapshots use).
    pub const ALL: [EventKind; 12] = [
        EventKind::Delivered,
        EventKind::ReplayDropped,
        EventKind::AuthFailed,
        EventKind::UnknownSa,
        EventKind::Buffered,
        EventKind::DroppedDown,
        EventKind::RekeyStarted,
        EventKind::RekeyCompleted,
        EventKind::ProbeDue,
        EventKind::PeerDead,
        EventKind::Recovered,
        EventKind::FailedClosed,
    ];

    /// Stable snake_case label, used as the JSON key.
    pub fn name(self) -> &'static str {
        match self {
            EventKind::Delivered => "delivered",
            EventKind::ReplayDropped => "replay_dropped",
            EventKind::AuthFailed => "auth_failed",
            EventKind::UnknownSa => "unknown_sa",
            EventKind::Buffered => "buffered",
            EventKind::DroppedDown => "dropped_down",
            EventKind::RekeyStarted => "rekey_started",
            EventKind::RekeyCompleted => "rekey_completed",
            EventKind::ProbeDue => "probe_due",
            EventKind::PeerDead => "peer_dead",
            EventKind::Recovered => "recovered",
            EventKind::FailedClosed => "failed_closed",
        }
    }

    fn index(self) -> usize {
        self as usize
    }
}

/// One counter per [`EventKind`] — a fixed array, indexed without
/// hashing or locking.
#[derive(Debug, Default)]
pub struct EventCounters {
    counts: [Counter; 12],
}

impl EventCounters {
    /// Counts one event of `kind`.
    #[inline]
    pub fn record(&self, kind: EventKind) {
        self.counts[kind.index()].incr();
    }

    /// Current count for `kind`.
    pub fn get(&self, kind: EventKind) -> u64 {
        self.counts[kind.index()].get()
    }

    fn snapshot(&self) -> Vec<(&'static str, u64)> {
        EventKind::ALL
            .iter()
            .map(|&k| (k.name(), self.get(k)))
            .collect()
    }
}

/// Lifecycle counters for one SA class (one cipher-suite label). The
/// class registry is resolved at install/rekey/recover time only —
/// never per packet — so its interior `Mutex` stays off the hot path.
#[derive(Debug, Default)]
pub struct ClassStats {
    /// SAs installed under this class.
    pub installs: Counter,
    /// SAs removed.
    pub removals: Counter,
    /// Rekeys completed.
    pub rekeys: Counter,
    /// Recoveries completed.
    pub recoveries: Counter,
    /// Fail-closed replacements.
    pub failed_closed: Counter,
}

/// Per-shard registries: event counts, batch drain timings, queue
/// depths.
#[derive(Debug, Default)]
pub struct ShardStats {
    /// Event counts attributed to this shard.
    pub events: EventCounters,
    /// `push_wire_batch` calls drained on this shard.
    pub batches: Counter,
    /// Wire frames drained on this shard.
    pub frames: Counter,
    /// Wall-clock nanoseconds per batch drain.
    pub drain_ns: Histogram,
    /// Pending event-queue depth observed at the end of each drain.
    pub queue_depth: Histogram,
}

/// WAL store statistics (recorded by `reset_stable`'s WAL backend).
#[derive(Debug, Default)]
struct WalStats {
    appends: Counter,
    append_bytes: Counter,
    compactions: Counter,
    compact_ns: Histogram,
}

#[derive(Debug)]
struct Inner {
    events: EventCounters,
    shards: Box<[ShardStats]>,
    recover_ns: Histogram,
    rekey_ns: Histogram,
    wal: WalStats,
    classes: Mutex<BTreeMap<String, Arc<ClassStats>>>,
    trace: TraceRing,
}

/// Default capacity of the lifecycle trace ring.
const TRACE_CAPACITY: usize = 256;

/// The shared telemetry handle: a cheap-clone `Arc` every layer of the
/// stack records into. See the crate docs for the locking discipline.
#[derive(Debug, Clone)]
pub struct Telemetry {
    inner: Arc<Inner>,
}

impl Default for Telemetry {
    fn default() -> Self {
        Self::new()
    }
}

impl Telemetry {
    /// A handle with a single shard slot (a plain `Gateway`).
    pub fn new() -> Self {
        Self::with_shards(1)
    }

    /// A handle with `shards` per-shard registries (minimum 1). Out of
    /// range shard indices clamp to the last slot rather than panic —
    /// telemetry must never take the datapath down.
    pub fn with_shards(shards: usize) -> Self {
        let shards = shards.max(1);
        Telemetry {
            inner: Arc::new(Inner {
                events: EventCounters::default(),
                shards: (0..shards).map(|_| ShardStats::default()).collect(),
                recover_ns: Histogram::new(),
                rekey_ns: Histogram::new(),
                wal: WalStats::default(),
                classes: Mutex::new(BTreeMap::new()),
                trace: TraceRing::new(TRACE_CAPACITY),
            }),
        }
    }

    /// Number of per-shard registries.
    pub fn shard_count(&self) -> usize {
        self.inner.shards.len()
    }

    fn shard(&self, index: usize) -> &ShardStats {
        let last = self.inner.shards.len() - 1;
        &self.inner.shards[index.min(last)]
    }

    /// Counts one gateway event, globally and against `shard`.
    #[inline]
    pub fn record_event(&self, shard: usize, kind: EventKind) {
        self.inner.events.record(kind);
        self.shard(shard).events.record(kind);
    }

    /// Global count for `kind`.
    pub fn event_count(&self, kind: EventKind) -> u64 {
        self.inner.events.get(kind)
    }

    /// Records one batch drain on `shard`: `frames` wires processed in
    /// `elapsed_ns`, leaving `queue_depth` events pending.
    pub fn record_drain(&self, shard: usize, frames: u64, elapsed_ns: u64, queue_depth: u64) {
        let s = self.shard(shard);
        s.batches.incr();
        s.frames.add(frames);
        s.drain_ns.record(elapsed_ns);
        s.queue_depth.record(queue_depth);
    }

    /// Records one completed recovery's wall-clock latency.
    pub fn record_recovery_ns(&self, ns: u64) {
        self.inner.recover_ns.record(ns);
    }

    /// Records one completed rekey's wall-clock latency.
    pub fn record_rekey_ns(&self, ns: u64) {
        self.inner.rekey_ns.record(ns);
    }

    /// Records one WAL append of `bytes` bytes.
    pub fn record_wal_append(&self, bytes: u64) {
        self.inner.wal.appends.incr();
        self.inner.wal.append_bytes.add(bytes);
    }

    /// Records one WAL compaction taking `ns` nanoseconds.
    pub fn record_wal_compaction(&self, ns: u64) {
        self.inner.wal.compactions.incr();
        self.inner.wal.compact_ns.record(ns);
    }

    /// The lifecycle counters for SA class `label` (e.g. a cipher
    /// suite name), created on first use. Takes the registry lock —
    /// call on lifecycle edges only, and hold the returned `Arc` if
    /// repeated access is needed.
    pub fn class(&self, label: &str) -> Arc<ClassStats> {
        let mut classes = self.inner.classes.lock().expect("class registry poisoned");
        classes
            .entry(label.to_string())
            .or_insert_with(|| Arc::new(ClassStats::default()))
            .clone()
    }

    /// Appends a lifecycle event to the trace ring.
    pub fn trace(&self, at_ns: u64, severity: Severity, code: &'static str, spi: u32, detail: u64) {
        self.inner.trace.push(at_ns, severity, code, spi, detail);
    }

    /// A point-in-time copy of everything recorded so far.
    pub fn snapshot(&self) -> Snapshot {
        let (trace, trace_dropped) = self.inner.trace.drain_ordered();
        let classes = self
            .inner
            .classes
            .lock()
            .expect("class registry poisoned")
            .iter()
            .map(|(label, stats)| ClassSnapshot {
                label: label.clone(),
                installs: stats.installs.get(),
                removals: stats.removals.get(),
                rekeys: stats.rekeys.get(),
                recoveries: stats.recoveries.get(),
                failed_closed: stats.failed_closed.get(),
            })
            .collect();
        Snapshot {
            events: self.inner.events.snapshot(),
            shards: self
                .inner
                .shards
                .iter()
                .enumerate()
                .map(|(index, s)| ShardSnapshot {
                    index,
                    events: s.events.snapshot(),
                    batches: s.batches.get(),
                    frames: s.frames.get(),
                    drain_ns: s.drain_ns.snapshot(),
                    queue_depth: s.queue_depth.snapshot(),
                })
                .collect(),
            recover_ns: self.inner.recover_ns.snapshot(),
            rekey_ns: self.inner.rekey_ns.snapshot(),
            wal_appends: self.inner.wal.appends.get(),
            wal_append_bytes: self.inner.wal.append_bytes.get(),
            wal_compactions: self.inner.wal.compactions.get(),
            wal_compact_ns: self.inner.wal.compact_ns.snapshot(),
            classes,
            trace,
            trace_dropped,
        }
    }
}

/// Plain-data copy of one shard's registries.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardSnapshot {
    /// Shard index.
    pub index: usize,
    /// Event counts, in [`EventKind::ALL`] order.
    pub events: Vec<(&'static str, u64)>,
    /// Batch drains served.
    pub batches: u64,
    /// Wire frames drained.
    pub frames: u64,
    /// Drain latency distribution.
    pub drain_ns: HistogramSnapshot,
    /// Event-queue depth distribution.
    pub queue_depth: HistogramSnapshot,
}

/// Plain-data copy of one SA class's lifecycle counters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClassSnapshot {
    /// The class label (cipher suite name).
    pub label: String,
    /// SAs installed.
    pub installs: u64,
    /// SAs removed.
    pub removals: u64,
    /// Rekeys completed.
    pub rekeys: u64,
    /// Recoveries completed.
    pub recoveries: u64,
    /// Fail-closed replacements.
    pub failed_closed: u64,
}

/// A point-in-time copy of a [`Telemetry`] handle's registries —
/// plain data, safe to move across threads, serializable via
/// [`Snapshot::to_json`].
#[derive(Debug, Clone, PartialEq)]
pub struct Snapshot {
    /// Global event counts, in [`EventKind::ALL`] order.
    pub events: Vec<(&'static str, u64)>,
    /// Per-shard registries.
    pub shards: Vec<ShardSnapshot>,
    /// Recovery latency distribution (nanoseconds).
    pub recover_ns: HistogramSnapshot,
    /// Rekey latency distribution (nanoseconds).
    pub rekey_ns: HistogramSnapshot,
    /// WAL records appended.
    pub wal_appends: u64,
    /// WAL bytes appended.
    pub wal_append_bytes: u64,
    /// WAL compactions run.
    pub wal_compactions: u64,
    /// WAL compaction latency distribution (nanoseconds).
    pub wal_compact_ns: HistogramSnapshot,
    /// Per-SA-class lifecycle counters, sorted by label.
    pub classes: Vec<ClassSnapshot>,
    /// Retained lifecycle trace, chronological.
    pub trace: Vec<TraceEvent>,
    /// Trace events overwritten by ring wraparound.
    pub trace_dropped: u64,
}

impl Snapshot {
    /// The global count for the event named `name` (see
    /// [`EventKind::name`]); 0 for unknown names.
    pub fn event(&self, name: &str) -> u64 {
        self.events
            .iter()
            .find(|(n, _)| *n == name)
            .map(|(_, c)| *c)
            .unwrap_or(0)
    }

    /// Total frames drained across all shards — the numerator of the
    /// per-shard skew calculation.
    pub fn total_frames(&self) -> u64 {
        self.shards.iter().map(|s| s.frames).sum()
    }

    /// Per-shard frame counts (the skew profile item 2(iv)'s
    /// occupancy-aware rebalancing consumes).
    pub fn shard_frames(&self) -> Vec<u64> {
        self.shards.iter().map(|s| s.frames).collect()
    }

    /// Serializes the snapshot as a [`Json`] tree.
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("events", counts_json(&self.events)),
            (
                "shards",
                Json::Arr(
                    self.shards
                        .iter()
                        .map(|s| {
                            Json::obj(vec![
                                ("index", Json::U64(s.index as u64)),
                                ("batches", Json::U64(s.batches)),
                                ("frames", Json::U64(s.frames)),
                                ("events", counts_json(&s.events)),
                                ("drain_ns", hist_json(&s.drain_ns)),
                                ("queue_depth", hist_json(&s.queue_depth)),
                            ])
                        })
                        .collect(),
                ),
            ),
            ("recover_ns", hist_json(&self.recover_ns)),
            ("rekey_ns", hist_json(&self.rekey_ns)),
            (
                "wal",
                Json::obj(vec![
                    ("appends", Json::U64(self.wal_appends)),
                    ("append_bytes", Json::U64(self.wal_append_bytes)),
                    ("compactions", Json::U64(self.wal_compactions)),
                    ("compact_ns", hist_json(&self.wal_compact_ns)),
                ]),
            ),
            (
                "classes",
                Json::Arr(
                    self.classes
                        .iter()
                        .map(|c| {
                            Json::obj(vec![
                                ("label", Json::str(c.label.clone())),
                                ("installs", Json::U64(c.installs)),
                                ("removals", Json::U64(c.removals)),
                                ("rekeys", Json::U64(c.rekeys)),
                                ("recoveries", Json::U64(c.recoveries)),
                                ("failed_closed", Json::U64(c.failed_closed)),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "trace",
                Json::obj(vec![
                    ("dropped", Json::U64(self.trace_dropped)),
                    (
                        "events",
                        Json::Arr(
                            self.trace
                                .iter()
                                .map(|e| {
                                    Json::obj(vec![
                                        ("seq", Json::U64(e.seq)),
                                        ("at_ns", Json::U64(e.at_ns)),
                                        ("severity", Json::str(e.severity.name())),
                                        ("code", Json::str(e.code)),
                                        ("spi", Json::U64(e.spi as u64)),
                                        ("detail", Json::U64(e.detail)),
                                    ])
                                })
                                .collect(),
                        ),
                    ),
                ]),
            ),
        ])
    }
}

/// `[["delivered", 3], …]` rendered as an ordered JSON object.
fn counts_json(counts: &[(&'static str, u64)]) -> Json {
    Json::Obj(
        counts
            .iter()
            .map(|&(name, n)| (name.to_string(), Json::U64(n)))
            .collect(),
    )
}

/// Histogram snapshot as JSON: aggregates plus non-empty buckets.
fn hist_json(h: &HistogramSnapshot) -> Json {
    Json::obj(vec![
        ("count", Json::U64(h.count)),
        ("sum", Json::U64(h.sum)),
        ("min", Json::U64(h.min)),
        ("max", Json::U64(h.max)),
        ("mean", Json::F64(h.mean())),
        ("p50", Json::U64(h.quantile(0.5))),
        ("p99", Json::U64(h.quantile(0.99))),
        (
            "buckets",
            Json::Arr(
                h.buckets
                    .iter()
                    .map(|b| Json::Arr(vec![Json::U64(b.upper), Json::U64(b.count)]))
                    .collect(),
            ),
        ),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_route_to_global_and_shard_registries() {
        let t = Telemetry::with_shards(4);
        t.record_event(0, EventKind::Delivered);
        t.record_event(3, EventKind::Delivered);
        t.record_event(3, EventKind::ReplayDropped);
        // Out-of-range shard index clamps instead of panicking.
        t.record_event(99, EventKind::AuthFailed);
        let s = t.snapshot();
        assert_eq!(t.event_count(EventKind::Delivered), 2);
        assert_eq!(s.shards[0].events[0], ("delivered", 1));
        assert_eq!(s.shards[3].events[0], ("delivered", 1));
        assert_eq!(s.shards[3].events[1], ("replay_dropped", 1));
        assert_eq!(s.shards[3].events[2], ("auth_failed", 1));
    }

    #[test]
    fn drains_accumulate_per_shard_skew() {
        let t = Telemetry::with_shards(2);
        t.record_drain(0, 100, 5_000, 10);
        t.record_drain(0, 100, 6_000, 12);
        t.record_drain(1, 10, 700, 1);
        let s = t.snapshot();
        assert_eq!(s.shard_frames(), vec![200, 10]);
        assert_eq!(s.total_frames(), 210);
        assert_eq!(s.shards[0].batches, 2);
        assert_eq!(s.shards[0].drain_ns.count, 2);
        assert_eq!(s.shards[1].queue_depth.max, 1);
    }

    #[test]
    fn class_registry_is_shared_and_sorted() {
        let t = Telemetry::new();
        t.class("zeta").installs.incr();
        t.class("alpha").installs.incr();
        t.class("alpha").rekeys.incr();
        let s = t.snapshot();
        let labels: Vec<&str> = s.classes.iter().map(|c| c.label.as_str()).collect();
        assert_eq!(labels, vec!["alpha", "zeta"]);
        assert_eq!(s.classes[0].rekeys, 1);
    }

    #[test]
    fn snapshot_serializes_to_json() {
        let t = Telemetry::with_shards(2);
        t.record_event(1, EventKind::Delivered);
        t.record_recovery_ns(1_500);
        t.record_wal_append(64);
        t.record_wal_compaction(9_000);
        t.trace(42, Severity::Warn, "reset", 7, 1);
        let rendered = t.snapshot().to_json().render();
        for needle in [
            "\"events\":{\"delivered\":1",
            "\"shards\":[",
            "\"recover_ns\":{\"count\":1",
            "\"wal\":{\"appends\":1,\"append_bytes\":64,\"compactions\":1",
            "\"trace\":{\"dropped\":0",
            "\"code\":\"reset\"",
        ] {
            assert!(rendered.contains(needle), "missing {needle} in {rendered}");
        }
        // Deterministic rendering: same state, same bytes.
        assert_eq!(rendered, t.snapshot().to_json().render());
    }

    #[test]
    fn handles_share_state_across_clones() {
        let t = Telemetry::new();
        let t2 = t.clone();
        t2.record_event(0, EventKind::FailedClosed);
        assert_eq!(t.event_count(EventKind::FailedClosed), 1);
        assert_eq!(t.shard_count(), 1);
    }
}

//! A bounded ring-buffer event trace with severity levels.
//!
//! The trace records *lifecycle* events — resets, recoveries, rekeys,
//! fail-closed replacements — not per-packet traffic, so it sits off
//! the hot path and a mutex-guarded ring is the right tradeoff: the
//! counters and histograms stay lock-free, the trace stays bounded and
//! ordered.

use std::sync::Mutex;

/// How loud a trace event is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Fine-grained diagnostics.
    Debug,
    /// Normal lifecycle milestones (recovery completed, rekey done).
    Info,
    /// Degraded but working (reset observed, peer probe overdue).
    Warn,
    /// Protocol gave up on something (fail-closed SA replacement).
    Error,
}

impl Severity {
    /// Stable lowercase label, used in snapshots and JSON.
    pub fn name(self) -> &'static str {
        match self {
            Severity::Debug => "debug",
            Severity::Info => "info",
            Severity::Warn => "warn",
            Severity::Error => "error",
        }
    }
}

/// One recorded lifecycle event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    /// Position in the trace's total order (monotonic, never reused —
    /// gaps reveal overwritten events).
    pub seq: u64,
    /// Caller-supplied clock reading (the gateway's virtual `now_ns`).
    pub at_ns: u64,
    /// Severity level.
    pub severity: Severity,
    /// A short static code, e.g. `"recovered"` or `"failed_closed"`.
    pub code: &'static str,
    /// The SA the event concerns (0 when not SA-scoped).
    pub spi: u32,
    /// One event-specific number (latency, count, reason code…).
    pub detail: u64,
}

/// Fixed-capacity ring of [`TraceEvent`]s. When full, the oldest event
/// is overwritten and `dropped` counts the loss — the trace never
/// grows and never blocks progress on a slow reader.
#[derive(Debug)]
pub struct TraceRing {
    inner: Mutex<RingInner>,
    capacity: usize,
}

#[derive(Debug)]
struct RingInner {
    events: Vec<TraceEvent>,
    /// Index of the logical start of the ring within `events`.
    head: usize,
    next_seq: u64,
    dropped: u64,
}

impl TraceRing {
    /// A ring holding at most `capacity` events (minimum 1).
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        TraceRing {
            inner: Mutex::new(RingInner {
                events: Vec::with_capacity(capacity),
                head: 0,
                next_seq: 0,
                dropped: 0,
            }),
            capacity,
        }
    }

    /// Appends an event, overwriting the oldest if the ring is full.
    pub fn push(&self, at_ns: u64, severity: Severity, code: &'static str, spi: u32, detail: u64) {
        let mut inner = self.inner.lock().expect("trace ring poisoned");
        let seq = inner.next_seq;
        inner.next_seq += 1;
        let ev = TraceEvent {
            seq,
            at_ns,
            severity,
            code,
            spi,
            detail,
        };
        if inner.events.len() < self.capacity {
            inner.events.push(ev);
        } else {
            let head = inner.head;
            inner.events[head] = ev;
            inner.head = (head + 1) % self.capacity;
            inner.dropped += 1;
        }
    }

    /// The retained events in chronological order, plus how many older
    /// events were overwritten before them.
    pub fn drain_ordered(&self) -> (Vec<TraceEvent>, u64) {
        let inner = self.inner.lock().expect("trace ring poisoned");
        let mut out = Vec::with_capacity(inner.events.len());
        out.extend_from_slice(&inner.events[inner.head..]);
        out.extend_from_slice(&inner.events[..inner.head]);
        (out, inner.dropped)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_overwrites_oldest_and_counts_drops() {
        let ring = TraceRing::new(3);
        for i in 0..5u64 {
            ring.push(i * 10, Severity::Info, "tick", 7, i);
        }
        let (events, dropped) = ring.drain_ordered();
        assert_eq!(dropped, 2);
        let seqs: Vec<u64> = events.iter().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![2, 3, 4]);
        assert!(events.iter().all(|e| e.code == "tick" && e.spi == 7));
    }

    #[test]
    fn severity_ordering_and_names() {
        assert!(Severity::Debug < Severity::Info);
        assert!(Severity::Warn < Severity::Error);
        assert_eq!(Severity::Error.name(), "error");
    }
}

//! The atomic counter primitive every registry is built from.

use std::sync::atomic::{AtomicU64, Ordering};

/// A monotonically increasing event counter.
///
/// All operations are single atomic instructions with
/// [`Ordering::Relaxed`]: counters are statistics, not synchronization
/// — the only guarantee a reader needs is that every recorded
/// increment is eventually visible, and relaxed atomics provide that
/// without fencing the datapath.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// A fresh counter at zero.
    pub const fn new() -> Self {
        Counter(AtomicU64::new(0))
    }

    /// Adds one.
    #[inline]
    pub fn incr(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// The current value.
    #[inline]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_across_threads() {
        let c = std::sync::Arc::new(Counter::new());
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let c = c.clone();
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        c.incr();
                    }
                    c.add(5);
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(c.get(), 4 * 1005);
    }
}

//! Fixed-bucket log₂ histograms for latencies and sizes.

use std::sync::atomic::{AtomicU64, Ordering};

/// Number of buckets: bucket 0 holds exact zeros, bucket `i` (for
/// `i ≥ 1`) holds values in `[2^(i-1), 2^i)`, and the last bucket
/// absorbs everything at or above `2^(BUCKETS-2)` (≈ 1.6 days in
/// nanoseconds — far past any latency this workspace measures).
pub const BUCKETS: usize = 48;

/// A lock-free histogram over `u64` samples (nanoseconds, byte counts,
/// queue depths). Buckets are powers of two, fixed at compile time, so
/// recording is: one `leading_zeros`, four relaxed atomic RMWs, no
/// allocation, no lock. Precision is one bucket (a factor of two),
/// which is plenty for latency *distributions* — exact aggregates
/// (count, sum, min, max) are tracked separately.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// A fresh, empty histogram.
    pub fn new() -> Self {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }

    /// Bucket index for a sample.
    #[inline]
    fn index(value: u64) -> usize {
        // Bit length: 0 → 0, 1 → 1, 2..4 → 2..3, …; clamped into range.
        let bits = (64 - value.leading_zeros()) as usize;
        bits.min(BUCKETS - 1)
    }

    /// Records one sample.
    #[inline]
    pub fn record(&self, value: u64) {
        self.buckets[Self::index(value)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
        self.min.fetch_min(value, Ordering::Relaxed);
        self.max.fetch_max(value, Ordering::Relaxed);
    }

    /// Number of samples recorded so far.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// A point-in-time copy of the distribution. Concurrent recording
    /// is allowed; the copy is per-field consistent, not a global
    /// atomic snapshot (fine for statistics).
    pub fn snapshot(&self) -> HistogramSnapshot {
        let count = self.count.load(Ordering::Relaxed);
        let min = self.min.load(Ordering::Relaxed);
        HistogramSnapshot {
            count,
            sum: self.sum.load(Ordering::Relaxed),
            min: if count == 0 { 0 } else { min },
            max: self.max.load(Ordering::Relaxed),
            buckets: self
                .buckets
                .iter()
                .enumerate()
                .filter_map(|(i, b)| {
                    let n = b.load(Ordering::Relaxed);
                    (n > 0).then_some(Bucket {
                        upper: upper_bound(i),
                        count: n,
                    })
                })
                .collect(),
        }
    }
}

/// Inclusive-exclusive upper bound of bucket `i` (`u64::MAX` for the
/// final catch-all bucket).
fn upper_bound(i: usize) -> u64 {
    if i == 0 {
        1
    } else if i >= BUCKETS - 1 {
        u64::MAX
    } else {
        1u64 << i
    }
}

/// One non-empty bucket of a [`HistogramSnapshot`]: `count` samples
/// were strictly below `upper` (and at or above the previous bucket's
/// `upper`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Bucket {
    /// Exclusive upper bound of the bucket's value range.
    pub upper: u64,
    /// Samples that landed in the bucket.
    pub count: u64,
}

/// A plain-data copy of a [`Histogram`], safe to serialize or compare.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Total samples.
    pub count: u64,
    /// Sum of all samples (wrapping add under extreme concurrency is
    /// theoretically possible but needs > 2^64 total).
    pub sum: u64,
    /// Smallest sample (0 when empty).
    pub min: u64,
    /// Largest sample (0 when empty).
    pub max: u64,
    /// The non-empty buckets, ascending by `upper`.
    pub buckets: Vec<Bucket>,
}

impl HistogramSnapshot {
    /// Arithmetic mean of the samples (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Approximate quantile `q` in `[0, 1]`: the upper bound of the
    /// bucket containing the `⌈q·count⌉`-th sample (so within a factor
    /// of two of the true value). Returns 0 for an empty histogram.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for b in &self.buckets {
            seen += b.count;
            if seen >= rank {
                return b.upper.min(self.max);
            }
        }
        self.max
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_are_log2() {
        assert_eq!(Histogram::index(0), 0);
        assert_eq!(Histogram::index(1), 1);
        assert_eq!(Histogram::index(2), 2);
        assert_eq!(Histogram::index(3), 2);
        assert_eq!(Histogram::index(4), 3);
        assert_eq!(Histogram::index(u64::MAX), BUCKETS - 1);
    }

    #[test]
    fn aggregates_and_quantiles() {
        let h = Histogram::new();
        for v in [0u64, 1, 2, 3, 100, 1000, 1_000_000] {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 7);
        assert_eq!(s.sum, 1_001_106);
        assert_eq!(s.min, 0);
        assert_eq!(s.max, 1_000_000);
        assert!(s.mean() > 0.0);
        // p50 of 7 samples is the 4th (value 3) → bucket upper 4.
        assert_eq!(s.quantile(0.5), 4);
        // p100 caps at the observed max, not the bucket bound.
        assert_eq!(s.quantile(1.0), 1_000_000);
        let total: u64 = s.buckets.iter().map(|b| b.count).sum();
        assert_eq!(total, 7);
    }

    #[test]
    fn empty_histogram_is_quiet() {
        let s = Histogram::new().snapshot();
        assert_eq!((s.count, s.min, s.max), (0, 0, 0));
        assert_eq!(s.quantile(0.99), 0);
        assert_eq!(s.mean(), 0.0);
        assert!(s.buckets.is_empty());
    }
}

//! ASCII tables and series for experiment output.
//!
//! Every experiment renders its results as the same kind of table the
//! paper would print, plus an optional CSV dump for plotting. Rendering
//! is dependency-free; `serde` is used only for the CSV-ish export of
//! experiment records by the harness binary.

use std::fmt;

/// A titled table with a header row.
///
/// # Examples
///
/// ```
/// use reset_harness::Table;
///
/// let mut t = Table::new("fig1: sender gap", &["offset", "gap", "bound"]);
/// t.row(&["0", "20", "20"]);
/// let s = t.render();
/// assert!(s.contains("fig1"));
/// assert!(s.contains("offset"));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
    notes: Vec<String>,
}

impl Table {
    /// A table with the given title and column headers.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Table {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
            notes: Vec::new(),
        }
    }

    /// Appends a row (must match the header arity).
    ///
    /// # Panics
    ///
    /// Panics if the row length differs from the header length.
    pub fn row(&mut self, cells: &[&str]) -> &mut Self {
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row arity mismatch in table '{}'",
            self.title
        );
        self.rows
            .push(cells.iter().map(|s| s.to_string()).collect());
        self
    }

    /// Appends a row of already-owned strings.
    ///
    /// # Panics
    ///
    /// Panics if the row length differs from the header length.
    pub fn row_owned(&mut self, cells: Vec<String>) -> &mut Self {
        assert_eq!(cells.len(), self.headers.len(), "row arity mismatch");
        self.rows.push(cells);
        self
    }

    /// Appends a free-text footnote.
    pub fn note(&mut self, text: impl Into<String>) -> &mut Self {
        self.notes.push(text.into());
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True iff no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// The table title.
    pub fn title(&self) -> &str {
        &self.title
    }

    /// Cell accessor (row, col) for assertions in tests.
    pub fn cell(&self, row: usize, col: usize) -> Option<&str> {
        self.rows
            .get(row)
            .and_then(|r| r.get(col))
            .map(|s| s.as_str())
    }

    /// Renders the table with box-drawing alignment.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let sep = {
            let mut s = String::from("+");
            for w in &widths {
                s.push_str(&"-".repeat(w + 2));
                s.push('+');
            }
            s
        };
        let fmt_row = |cells: &[String]| {
            let mut s = String::from("|");
            for (i, cell) in cells.iter().enumerate() {
                s.push(' ');
                s.push_str(cell);
                s.push_str(&" ".repeat(widths[i] - cell.len() + 1));
                s.push('|');
            }
            s
        };
        let mut out = String::new();
        out.push_str(&format!("== {} ==\n", self.title));
        out.push_str(&sep);
        out.push('\n');
        out.push_str(&fmt_row(&self.headers));
        out.push('\n');
        out.push_str(&sep);
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row));
            out.push('\n');
        }
        out.push_str(&sep);
        out.push('\n');
        for n in &self.notes {
            out.push_str(&format!("  note: {n}\n"));
        }
        out
    }

    /// Renders as CSV (header + rows, comma-separated, no quoting —
    /// experiment cells never contain commas).
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        out.push_str(&self.headers.join(","));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.join(","));
            out.push('\n');
        }
        out
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Table {
        let mut t = Table::new("demo", &["a", "long-header", "c"]);
        t.row(&["1", "2", "3"]);
        t.row(&["100", "2", "3333"]);
        t.note("footnote");
        t
    }

    #[test]
    fn render_aligns_columns() {
        let s = sample().render();
        assert!(s.contains("== demo =="));
        // All separator lines equal length.
        let seps: Vec<&str> = s.lines().filter(|l| l.starts_with('+')).collect();
        assert_eq!(seps.len(), 3);
        assert!(seps.windows(2).all(|w| w[0] == w[1]));
        assert!(s.contains("note: footnote"));
    }

    #[test]
    fn csv_round_trip_shape() {
        let csv = sample().to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 3);
        assert_eq!(lines[0], "a,long-header,c");
        assert_eq!(lines[2], "100,2,3333");
    }

    #[test]
    fn cell_access() {
        let t = sample();
        assert_eq!(t.cell(1, 0), Some("100"));
        assert_eq!(t.cell(9, 0), None);
        assert_eq!(t.len(), 2);
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn arity_mismatch_panics() {
        let mut t = Table::new("t", &["a", "b"]);
        t.row(&["only-one"]);
    }
}

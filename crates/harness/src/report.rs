//! Experiment output: ASCII tables for humans, the unified
//! [`RunReport`] JSON schema for machines.
//!
//! Every experiment renders its results as the same kind of table the
//! paper would print, plus an optional CSV dump for plotting. Rendering
//! is dependency-free.
//!
//! Machine-readable output goes through [`RunReport`] — one schema
//! (see [`REPORT_SCHEMA`] and the crate docs) shared by campaign,
//! scenario, and churn runs, serialized with the zero-dep
//! [`reset_telemetry::Json`] writer.

use std::fmt;

use reset_telemetry::{Json, Snapshot};

/// A titled table with a header row.
///
/// # Examples
///
/// ```
/// use reset_harness::Table;
///
/// let mut t = Table::new("fig1: sender gap", &["offset", "gap", "bound"]);
/// t.row(&["0", "20", "20"]);
/// let s = t.render();
/// assert!(s.contains("fig1"));
/// assert!(s.contains("offset"));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
    notes: Vec<String>,
}

impl Table {
    /// A table with the given title and column headers.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Table {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
            notes: Vec::new(),
        }
    }

    /// Appends a row (must match the header arity).
    ///
    /// # Panics
    ///
    /// Panics if the row length differs from the header length.
    pub fn row(&mut self, cells: &[&str]) -> &mut Self {
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row arity mismatch in table '{}'",
            self.title
        );
        self.rows
            .push(cells.iter().map(|s| s.to_string()).collect());
        self
    }

    /// Appends a row of already-owned strings.
    ///
    /// # Panics
    ///
    /// Panics if the row length differs from the header length.
    pub fn row_owned(&mut self, cells: Vec<String>) -> &mut Self {
        assert_eq!(cells.len(), self.headers.len(), "row arity mismatch");
        self.rows.push(cells);
        self
    }

    /// Appends a free-text footnote.
    pub fn note(&mut self, text: impl Into<String>) -> &mut Self {
        self.notes.push(text.into());
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True iff no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// The table title.
    pub fn title(&self) -> &str {
        &self.title
    }

    /// Cell accessor (row, col) for assertions in tests.
    pub fn cell(&self, row: usize, col: usize) -> Option<&str> {
        self.rows
            .get(row)
            .and_then(|r| r.get(col))
            .map(|s| s.as_str())
    }

    /// Renders the table with box-drawing alignment.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let sep = {
            let mut s = String::from("+");
            for w in &widths {
                s.push_str(&"-".repeat(w + 2));
                s.push('+');
            }
            s
        };
        let fmt_row = |cells: &[String]| {
            let mut s = String::from("|");
            for (i, cell) in cells.iter().enumerate() {
                s.push(' ');
                s.push_str(cell);
                s.push_str(&" ".repeat(widths[i] - cell.len() + 1));
                s.push('|');
            }
            s
        };
        let mut out = String::new();
        out.push_str(&format!("== {} ==\n", self.title));
        out.push_str(&sep);
        out.push('\n');
        out.push_str(&fmt_row(&self.headers));
        out.push('\n');
        out.push_str(&sep);
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row));
            out.push('\n');
        }
        out.push_str(&sep);
        out.push('\n');
        for n in &self.notes {
            out.push_str(&format!("  note: {n}\n"));
        }
        out
    }

    /// Renders as CSV (header + rows, comma-separated, no quoting —
    /// experiment cells never contain commas).
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        out.push_str(&self.headers.join(","));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.join(","));
            out.push('\n');
        }
        out
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render())
    }
}

/// Version tag carried in every [`RunReport`]'s `schema` field.
pub const REPORT_SCHEMA: &str = "reset-report/v1";

/// Per-SA verdict row: did the paper's §3 guarantees hold for this SA?
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SaVerdict {
    /// The SA.
    pub spi: u32,
    /// Fresh frames sent to this SA.
    pub sent: u64,
    /// Fresh frames delivered.
    pub delivered: u64,
    /// Fresh frames sacrificed inside post-recovery leaps (bounded by
    /// `2K` per reset).
    pub sacrificed: u64,
    /// Replayed/duplicate frames the window or keys rejected.
    pub replays_rejected: u64,
    /// Key epochs this SA went through (initial install = 1).
    pub epochs: u32,
    /// Receiver resets this SA lived through.
    pub resets_survived: u64,
    /// True iff zero replays were accepted and the sacrifice bound held.
    pub ok: bool,
}

/// Fleet-wide totals of a run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RunTotals {
    /// Fresh frames delivered.
    pub delivered: u64,
    /// Replays rejected (window, keys, or unknown-SA).
    pub replays_rejected: u64,
    /// Replays accepted — must be 0 for the invariants to hold.
    pub replays_accepted: u64,
    /// Fresh frames sacrificed to recovery leaps.
    pub sacrificed: u64,
    /// SAs replaced fail-closed.
    pub failed_closed: u64,
    /// Receiver resets executed.
    pub resets: u64,
}

/// One throughput-timeline sample.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TimelinePoint {
    /// Virtual time of the sample.
    pub t_ns: u64,
    /// Fresh frames delivered in the interval ending here.
    pub delivered: u64,
    /// Replays rejected in the interval.
    pub rejected: u64,
}

/// The unified machine-readable run report — campaign, scenario, and
/// churn runs all emit this one schema (see the crate docs for the
/// field-by-field description). Serialize with [`RunReport::to_json`]
/// or [`RunReport::render_json`].
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RunReport {
    /// Which workload produced the report: `"campaign"`, `"scenario"`,
    /// or `"churn"`.
    pub kind: &'static str,
    /// The run's RNG seed (reproduces the run exactly).
    pub seed: u64,
    /// Fleet-wide totals.
    pub totals: RunTotals,
    /// Per-SA verdicts (empty when the workload only tracks totals).
    pub verdicts: Vec<SaVerdict>,
    /// Throughput timeline (empty when not sampled).
    pub timeline: Vec<TimelinePoint>,
    /// Telemetry snapshot of the observed gateway, when one was
    /// attached (per-shard skew, latency histograms, event counts).
    pub telemetry: Option<Snapshot>,
    /// Kind-specific extras, rendered verbatim into the `extra` object.
    pub extra: Vec<(String, Json)>,
}

impl RunReport {
    /// A report shell for `kind` and `seed` (fill the rest in).
    pub fn new(kind: &'static str, seed: u64) -> Self {
        RunReport {
            kind,
            seed,
            ..RunReport::default()
        }
    }

    /// True iff every per-SA verdict is ok and no replay was accepted.
    pub fn clean(&self) -> bool {
        self.totals.replays_accepted == 0 && self.verdicts.iter().all(|v| v.ok)
    }

    /// Serializes to the `reset-report/v1` [`Json`] tree.
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("schema", Json::str(REPORT_SCHEMA)),
            ("kind", Json::str(self.kind)),
            ("seed", Json::U64(self.seed)),
            (
                "totals",
                Json::obj(vec![
                    ("delivered", Json::U64(self.totals.delivered)),
                    ("replays_rejected", Json::U64(self.totals.replays_rejected)),
                    ("replays_accepted", Json::U64(self.totals.replays_accepted)),
                    ("sacrificed", Json::U64(self.totals.sacrificed)),
                    ("failed_closed", Json::U64(self.totals.failed_closed)),
                    ("resets", Json::U64(self.totals.resets)),
                ]),
            ),
            (
                "verdicts",
                Json::Arr(
                    self.verdicts
                        .iter()
                        .map(|v| {
                            Json::obj(vec![
                                ("spi", Json::U64(v.spi as u64)),
                                ("sent", Json::U64(v.sent)),
                                ("delivered", Json::U64(v.delivered)),
                                ("sacrificed", Json::U64(v.sacrificed)),
                                ("replays_rejected", Json::U64(v.replays_rejected)),
                                ("epochs", Json::U64(v.epochs as u64)),
                                ("resets_survived", Json::U64(v.resets_survived)),
                                ("ok", Json::Bool(v.ok)),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "timeline",
                Json::Arr(
                    self.timeline
                        .iter()
                        .map(|p| {
                            Json::obj(vec![
                                ("t_ns", Json::U64(p.t_ns)),
                                ("delivered", Json::U64(p.delivered)),
                                ("rejected", Json::U64(p.rejected)),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "telemetry",
                match &self.telemetry {
                    Some(s) => s.to_json(),
                    None => Json::Null,
                },
            ),
            ("extra", Json::Obj(self.extra.to_vec())),
        ])
    }

    /// Renders the report as a compact JSON document.
    pub fn render_json(&self) -> String {
        self.to_json().render()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Table {
        let mut t = Table::new("demo", &["a", "long-header", "c"]);
        t.row(&["1", "2", "3"]);
        t.row(&["100", "2", "3333"]);
        t.note("footnote");
        t
    }

    #[test]
    fn render_aligns_columns() {
        let s = sample().render();
        assert!(s.contains("== demo =="));
        // All separator lines equal length.
        let seps: Vec<&str> = s.lines().filter(|l| l.starts_with('+')).collect();
        assert_eq!(seps.len(), 3);
        assert!(seps.windows(2).all(|w| w[0] == w[1]));
        assert!(s.contains("note: footnote"));
    }

    #[test]
    fn csv_round_trip_shape() {
        let csv = sample().to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 3);
        assert_eq!(lines[0], "a,long-header,c");
        assert_eq!(lines[2], "100,2,3333");
    }

    #[test]
    fn cell_access() {
        let t = sample();
        assert_eq!(t.cell(1, 0), Some("100"));
        assert_eq!(t.cell(9, 0), None);
        assert_eq!(t.len(), 2);
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn arity_mismatch_panics() {
        let mut t = Table::new("t", &["a", "b"]);
        t.row(&["only-one"]);
    }
}

//! Long-haul churn soak: a live fleet under continuous lifecycle churn
//! and an adversary zoo.
//!
//! The scenario runner proves the §3 invariants for a *fixed* fleet and
//! the fault campaign proves them against a hostile disk. This module
//! attacks the remaining axis: **time and churn**. One sender gateway
//! and one sharded receiver run for a compressed virtual span (the soak
//! preset covers ten simulated hours) while:
//!
//! * SAs join and leave continuously (SPIs are never reused — key
//!   derivation depends only on `(master, spi, direction)`, so reusing
//!   an SPI would let old recorded ciphertext authenticate under the
//!   "new" SA, a genuine deployment error rather than a protocol flaw);
//! * staggered reboots and full reset storms strike, with replay
//!   injection mid-outage, fresh traffic mid-wake-up, and the adversary
//!   zoo unleashed the moment recovery completes;
//! * mid-flight lockstep rekeys roll keys under live traffic;
//! * the link misbehaves: partitions eat whole batches, bounded
//!   reordering shuffles them (displacement < the window, so no false
//!   sacrifices), and duplicate trains re-deliver what just arrived.
//!
//! The adversary zoo ([`AdversaryZoo`]) mirrors §3's attack surface:
//! delay-then-replay across a reset (defeated by the `2K` leap),
//! highest-sequence replay per SA (the blackhole probe), single-shard
//! replay floods (load skew aimed at one worker), and cross-SA
//! reflection (defeated by direction-separated keys — restricted to
//! epoch-1 SAs because [`reset_ipsec::Gateway::rekey_now`] derives
//! symmetric replacement keys).
//!
//! The adversary taps the wire: its library holds only frames whose
//! delivery was *confirmed*, so any adversary injection is a true
//! replay and **zero adversary deliveries** is an exact invariant, not
//! a statistical one. Every accepted duplicate `(SA, epoch, seq)` is
//! counted as a replay acceptance and fails the run.
//!
//! Everything derives from one seed; per-SA verdicts are
//! **shard-count-invariant** (the schedule never reads shard-dependent
//! state, and per-SPI event subsequences are identical at any shard
//! count), which `tests/it_churn.rs` asserts at shards {1, 4}.

use std::collections::{BTreeMap, HashSet};

use bytes::Bytes;
use reset_ipsec::{CryptoSuite, Gateway, GatewayBuilder, GatewayEvent, ShardedGateway};
use reset_stable::MemStable;
use reset_telemetry::{Json, Snapshot, Telemetry};
use reset_wire::spi_shard;

use crate::report::{RunReport, RunTotals, SaVerdict, TimelinePoint};

/// SplitMix64 — the soak's only randomness source.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Which adversary strategies run (all on by default). Per-strategy
/// unit tests switch on exactly one and assert its counter moved while
/// zero replays were accepted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AdversaryZoo {
    /// Stash delivered frames before a reset, replay them after
    /// recovery (the §3 attack the `2K` leap defeats).
    pub delayed_replay: bool,
    /// Replay each active SA's highest delivered sequence number after
    /// recovery (the blackhole probe).
    pub highest_seq: bool,
    /// Flood replays at the SAs of one canonical partition
    /// ([`ChurnConfig::flood_partitions`]) — load skew aimed at a
    /// single worker shard.
    pub shard_flood: bool,
    /// Reflect a delivered frame back into its own sender, and rewrite
    /// its SPI onto a sibling SA — both die at authentication.
    pub reflection: bool,
    /// Duplicate trains: re-push copies of frames the link just
    /// delivered.
    pub duplicates: bool,
}

impl AdversaryZoo {
    /// Every strategy enabled.
    pub const ALL: AdversaryZoo = AdversaryZoo {
        delayed_replay: true,
        highest_seq: true,
        shard_flood: true,
        reflection: true,
        duplicates: true,
    };

    /// Every strategy disabled (the base churn workload only).
    pub const NONE: AdversaryZoo = AdversaryZoo {
        delayed_replay: false,
        highest_seq: false,
        shard_flood: false,
        reflection: false,
        duplicates: false,
    };
}

/// Churn soak shape. Use [`ChurnConfig::quick`] for CI-speed runs and
/// [`ChurnConfig::soak`] for the long-haul lane.
#[derive(Debug, Clone)]
pub struct ChurnConfig {
    /// Master seed; the whole run (churn, faults, storms, adversary
    /// schedules) reproduces from it.
    pub seed: u64,
    /// Cipher suite for every SA of the fleet.
    pub suite: CryptoSuite,
    /// Receiver worker shards.
    pub shards: usize,
    /// SAVE interval `K` (the sacrifice bound is `2K` per reset).
    pub save_interval: u64,
    /// Anti-replay window `w` (reorder displacement stays below it).
    pub window: u64,
    /// SAs installed before the first round.
    pub initial_sas: u32,
    /// Cap on simultaneously active SAs (joins stop here).
    pub max_sas: u32,
    /// Traffic rounds.
    pub rounds: u32,
    /// Fresh frames per round, round-robined across active SAs.
    pub packets_per_round: u32,
    /// Virtual span the rounds compress (drives the report timeline).
    pub sim_hours: f64,
    /// Full receiver reset storms, evenly spaced (every other storm
    /// also reboots the sender — the staggered-reboot case).
    pub reset_storms: u32,
    /// Lockstep-rekey one SA every this many rounds (0 disables).
    pub rekey_every_rounds: u32,
    /// Canonical partition count for the shard-flood strategy. Fixed
    /// independently of [`ChurnConfig::shards`] so the flood schedule —
    /// and with it every per-SA verdict — is shard-count-invariant
    /// while still generating per-shard skew evidence.
    pub flood_partitions: usize,
    /// Which adversary strategies run.
    pub adversaries: AdversaryZoo,
}

impl ChurnConfig {
    /// A CI-speed churn run: every mechanism exercised, ~a second of
    /// wall clock.
    pub fn quick(seed: u64) -> Self {
        ChurnConfig {
            seed,
            suite: CryptoSuite::default(),
            shards: 4,
            save_interval: 25,
            window: 64,
            initial_sas: 8,
            max_sas: 24,
            rounds: 60,
            packets_per_round: 48,
            sim_hours: 0.5,
            reset_storms: 3,
            rekey_every_rounds: 12,
            flood_partitions: 4,
            adversaries: AdversaryZoo::ALL,
        }
    }

    /// The long-haul soak: ten simulated hours of churn, six reset
    /// storms, a bigger fleet. Still seconds of wall clock — virtual
    /// time is compressed, not slept.
    pub fn soak(seed: u64) -> Self {
        ChurnConfig {
            initial_sas: 16,
            max_sas: 64,
            rounds: 400,
            packets_per_round: 120,
            sim_hours: 10.0,
            reset_storms: 6,
            rekey_every_rounds: 20,
            ..ChurnConfig::quick(seed)
        }
    }
}

/// Per-SA ledger (kept for retired SAs too — their verdicts still
/// count).
#[derive(Debug, Clone, Default)]
struct SaLedger {
    epoch: u32,
    sent: u64,
    delivered: u64,
    sacrificed: u64,
    replays_rejected: u64,
    replays_accepted: u64,
    resets_survived: u64,
    dropped_down: u64,
    active: bool,
    /// Last sequence number protect() issued in the current epoch — the
    /// monotonic-counter invariant is checked on every send.
    last_seq: u64,
}

/// Everything a finished churn run reports.
#[derive(Debug, Clone)]
pub struct ChurnReport {
    /// The run's seed.
    pub seed: u64,
    /// Receiver shard count the run used.
    pub shards: usize,
    /// Per-SA verdicts, including retired SAs, in SPI order.
    pub verdicts: Vec<SaVerdict>,
    /// Fleet-wide totals.
    pub totals: RunTotals,
    /// Throughput timeline (one point per sampled round).
    pub timeline: Vec<TimelinePoint>,
    /// The receiver gateway's telemetry at the end of the run
    /// (per-shard skew, recovery-latency histogram, event counts).
    pub telemetry: Snapshot,
    /// Delay-then-replay injections performed.
    pub delayed_replays: u64,
    /// Highest-sequence replay injections performed.
    pub highest_seq_replays: u64,
    /// Shard-flood replay injections performed.
    pub shard_flood_replays: u64,
    /// Reflection/SPI-rewrite injections performed.
    pub reflections: u64,
    /// Duplicate-train injections performed.
    pub duplicate_injections: u64,
    /// SAs that joined after the initial install.
    pub joins: u64,
    /// SAs retired mid-run.
    pub leaves: u64,
    /// Lockstep rekeys performed.
    pub rekeys: u64,
    /// Reset storms executed.
    pub storms: u64,
    /// Sender reboots (the staggered half of the storms).
    pub sender_resets: u64,
    /// Virtual span covered.
    pub sim_ns: u64,
}

impl ChurnReport {
    /// True iff zero replays were accepted and every SA's sacrifice
    /// stayed within the paper's `2K · resets` bound.
    pub fn clean(&self) -> bool {
        self.totals.replays_accepted == 0 && self.verdicts.iter().all(|v| v.ok)
    }

    /// Converts into the unified `reset-report/v1` schema
    /// (`kind = "churn"`); strategy counters and churn statistics ride
    /// in `extra`.
    pub fn to_run_report(&self) -> RunReport {
        let mut report = RunReport::new("churn", self.seed);
        report.totals = self.totals.clone();
        report.verdicts = self.verdicts.clone();
        report.timeline = self.timeline.clone();
        report.telemetry = Some(self.telemetry.clone());
        report.extra = vec![
            ("shards".into(), Json::U64(self.shards as u64)),
            ("sim_ns".into(), Json::U64(self.sim_ns)),
            ("delayed_replays".into(), Json::U64(self.delayed_replays)),
            (
                "highest_seq_replays".into(),
                Json::U64(self.highest_seq_replays),
            ),
            (
                "shard_flood_replays".into(),
                Json::U64(self.shard_flood_replays),
            ),
            ("reflections".into(), Json::U64(self.reflections)),
            (
                "duplicate_injections".into(),
                Json::U64(self.duplicate_injections),
            ),
            ("joins".into(), Json::U64(self.joins)),
            ("leaves".into(), Json::U64(self.leaves)),
            ("rekeys".into(), Json::U64(self.rekeys)),
            ("storms".into(), Json::U64(self.storms)),
            ("sender_resets".into(), Json::U64(self.sender_resets)),
        ];
        report
    }
}

/// Shared keying material the fleet derives from.
const CHURN_MASTER: &[u8] = b"churn-soak-master";
/// Fixed application payload.
const CHURN_PAYLOAD: &[u8] = b"churn payload";
/// Frames per storm taken from the pre-reset library for the
/// delay-then-replay strategy.
const DELAYED_REPLAY_BATCH: usize = 96;
/// Copies per flooded frame in the shard-flood strategy.
const FLOOD_TRAIN: usize = 8;
/// Fresh frames pushed mid-wake-up per storm (buffered, resolved by
/// `finish_recover`; far below the wake-up buffer cap so none are
/// silently shed).
const MID_WAKE_FRESH: usize = 12;
/// Maximum reorder displacement — must stay below the window so a
/// reordered fresh batch never produces false sacrifices.
const REORDER_SPAN: usize = 8;

/// Runs one churn soak to completion.
///
/// # Panics
///
/// Panics (with the seed in the message) if the harness itself loses
/// track of a frame — invariant *violations* (accepted replays, blown
/// sacrifice bounds) are reported via [`ChurnReport`], not panics, so
/// tests can assert on them.
///
/// # Examples
///
/// ```
/// use reset_harness::{run_churn, ChurnConfig};
///
/// let report = run_churn(ChurnConfig::quick(7));
/// assert!(report.clean());
/// assert_eq!(report.totals.replays_accepted, 0);
/// ```
pub fn run_churn(cfg: ChurnConfig) -> ChurnReport {
    ChurnRunner::new(cfg).run()
}

struct ChurnRunner {
    cfg: ChurnConfig,
    rng: u64,
    tx: Gateway<MemStable>,
    rx: ShardedGateway<MemStable>,
    telemetry: Telemetry,
    /// Every SA ever installed, by SPI (retired SAs keep their ledger).
    sas: BTreeMap<u32, SaLedger>,
    /// Next SPI to hand out — never reused (see the module docs).
    next_spi: u32,
    /// Every `(spi, epoch, seq)` delivered so far; a second delivery of
    /// any key is an accepted replay.
    delivered: HashSet<(u32, u32, u64)>,
    /// The adversary's tap: wire bytes of *confirmed-delivered* frames,
    /// keyed `(spi, epoch, seq)` (BTreeMap so injection order is
    /// deterministic).
    library: BTreeMap<(u32, u32, u64), Bytes>,
    /// Fresh frames pushed but not yet resolved (buffered during a
    /// wake-up, or awaiting this drain's events).
    pending: BTreeMap<(u32, u32, u64), Bytes>,
    now_ns: u64,
    report: ChurnReportAcc,
}

/// Mutable accumulator for the scalar report fields.
#[derive(Debug, Default)]
struct ChurnReportAcc {
    delayed_replays: u64,
    highest_seq_replays: u64,
    shard_flood_replays: u64,
    reflections: u64,
    duplicate_injections: u64,
    joins: u64,
    leaves: u64,
    rekeys: u64,
    storms: u64,
    sender_resets: u64,
    receiver_resets: u64,
    replays_accepted: u64,
    replays_rejected: u64,
    timeline: Vec<TimelinePoint>,
    interval_delivered: u64,
    interval_rejected: u64,
}

impl ChurnRunner {
    fn new(cfg: ChurnConfig) -> Self {
        let telemetry = Telemetry::with_shards(cfg.shards);
        let tx = GatewayBuilder::in_memory()
            .suite(cfg.suite)
            .save_interval(cfg.save_interval)
            .window(cfg.window)
            .build();
        let rx = GatewayBuilder::in_memory_sharded(cfg.shards)
            .suite(cfg.suite)
            .save_interval(cfg.save_interval)
            .window(cfg.window)
            .telemetry(telemetry.clone())
            .build_sharded();
        let rng = cfg.seed ^ 0xC0FF_EE00_5EED_5EED;
        let mut runner = ChurnRunner {
            cfg,
            rng,
            tx,
            rx,
            telemetry,
            sas: BTreeMap::new(),
            next_spi: 1,
            delivered: HashSet::new(),
            library: BTreeMap::new(),
            pending: BTreeMap::new(),
            now_ns: 0,
            report: ChurnReportAcc::default(),
        };
        for _ in 0..runner.cfg.initial_sas.max(1) {
            runner.join_sa();
        }
        runner
    }

    fn rand(&mut self) -> u64 {
        splitmix64(&mut self.rng)
    }

    /// Installs a fresh SA on both ends with direction-separated keys
    /// (tx is "tx"→"rx"; rx installs the mirror).
    fn join_sa(&mut self) {
        let spi = self.next_spi;
        self.next_spi += 1;
        self.tx.add_peer_between(spi, CHURN_MASTER, b"tx", b"rx");
        self.rx.add_peer_between(spi, CHURN_MASTER, b"rx", b"tx");
        self.sas.insert(
            spi,
            SaLedger {
                epoch: 1,
                active: true,
                ..SaLedger::default()
            },
        );
    }

    /// Retires `spi` on both ends (its ledger — and verdict — remain).
    fn leave_sa(&mut self, spi: u32) {
        self.tx.remove_peer(spi);
        self.rx.remove_peer(spi);
        if let Some(sa) = self.sas.get_mut(&spi) {
            sa.active = false;
        }
        self.report.leaves += 1;
    }

    fn active_spis(&self) -> Vec<u32> {
        self.sas
            .iter()
            .filter(|(_, s)| s.active)
            .map(|(&spi, _)| spi)
            .collect()
    }

    fn run(mut self) -> ChurnReport {
        let cfg = self.cfg.clone();
        let round_ns = ((cfg.sim_hours * 3_600e9) / cfg.rounds.max(1) as f64) as u64;
        // Evenly spaced storm rounds (never round 0 — the fleet sends
        // first, so every storm has history to replay).
        let storm_rounds: HashSet<u32> = (1..=cfg.reset_storms)
            .map(|i| i * cfg.rounds / (cfg.reset_storms + 1))
            .collect();
        // Sample the timeline at most ~64 times regardless of length.
        let sample_every = (cfg.rounds / 64).max(1);
        for round in 0..cfg.rounds {
            self.now_ns += round_ns;
            self.churn_step();
            self.maybe_rekey(round);
            self.fresh_round(round);
            self.complete_saves();
            if storm_rounds.contains(&round) {
                self.storm(round);
                self.complete_saves();
            }
            assert!(
                self.pending.is_empty(),
                "seed {}: round {round} left {} fresh frames unresolved",
                cfg.seed,
                self.pending.len()
            );
            if round % sample_every == sample_every - 1 {
                let acc = &mut self.report;
                acc.timeline.push(TimelinePoint {
                    t_ns: self.now_ns,
                    delivered: acc.interval_delivered,
                    rejected: acc.interval_rejected,
                });
                acc.interval_delivered = 0;
                acc.interval_rejected = 0;
            }
        }
        self.finish(round_ns * cfg.rounds as u64)
    }

    /// SA lifecycle churn: joins push toward `max_sas`, leaves keep at
    /// least half the initial fleet alive.
    fn churn_step(&mut self) {
        let active = self.active_spis();
        if (active.len() as u32) < self.cfg.max_sas && self.rand().is_multiple_of(4) {
            self.join_sa();
            self.report.joins += 1;
        }
        let floor = (self.cfg.initial_sas / 2).max(2) as usize;
        if active.len() > floor && self.rand().is_multiple_of(8) {
            let victim = active[(self.rand() % active.len() as u64) as usize];
            self.leave_sa(victim);
        }
    }

    /// Lockstep rekey of one active SA: both ends derive the same
    /// replacement generation from the shared skeyid, the epoch bumps,
    /// and the adversary's library for the old epoch dies with the old
    /// keys.
    fn maybe_rekey(&mut self, round: u32) {
        let every = self.cfg.rekey_every_rounds;
        if every == 0 || round % every != every - 1 {
            return;
        }
        let active = self.active_spis();
        if active.is_empty() {
            return;
        }
        let spi = active[(round / every) as usize % active.len()];
        self.tx.rekey_now(spi);
        self.rx.rekey_now(spi);
        self.tx.poll_events();
        let events = self.rx.poll_events();
        self.account(&events, Drain::Lifecycle);
        let sa = self.sas.get_mut(&spi).expect("active SA has a ledger");
        sa.epoch += 1;
        sa.last_seq = 0;
        self.report.rekeys += 1;
    }

    /// The SAVE device finishes every in-flight background save. The
    /// soak completes saves at round boundaries — within one round of
    /// issue — so the durable counters trail the live ones by at most
    /// `K` plus a round of traffic, which the `2K` leap absorbs.
    /// (Skipping this is exactly the §3 failure: recovery would leap
    /// from an ancient save and resurrect replayable state.)
    fn complete_saves(&mut self) {
        self.tx.save_completed().expect("mem store");
        self.rx.save_completed().expect("mem store");
    }

    /// One round of fresh traffic: protect `packets_per_round` frames
    /// round-robin across the active fleet, run them through the faulty
    /// link, push, drain, account.
    fn fresh_round(&mut self, _round: u32) {
        let active = self.active_spis();
        if active.is_empty() {
            return;
        }
        let mut wires = Vec::with_capacity(self.cfg.packets_per_round as usize);
        for i in 0..self.cfg.packets_per_round {
            let spi = active[i as usize % active.len()];
            if let Some(frame) = self.protect_fresh(spi) {
                wires.push(frame);
            }
        }
        // Link faults. Partition: the whole batch evaporates before the
        // receiver — and before the adversary's tap, which only records
        // confirmed deliveries anyway.
        if self.rand().is_multiple_of(16) {
            for key in wires {
                self.pending.remove(&key);
            }
            return;
        }
        // Bounded reorder: swap within REORDER_SPAN (< window), so
        // nothing falls off the left edge.
        if self.rand().is_multiple_of(4) {
            for i in 0..wires.len() {
                let j = i + (self.rand() as usize % REORDER_SPAN).min(wires.len() - 1 - i);
                wires.swap(i, j);
            }
        }
        let batch: Vec<Bytes> = wires
            .iter()
            .map(|k| self.pending.get(k).expect("just inserted").clone())
            .collect();
        self.rx.push_wire_batch(&batch).expect("mem store");
        let events = self.rx.poll_events();
        self.account(&events, Drain::Fresh);
        // Duplicate train: the link re-delivers a slice of what it just
        // carried. Copies of delivered frames — true replays.
        if self.cfg.adversaries.duplicates && self.rand().is_multiple_of(4) {
            let dups: Vec<Bytes> = wires
                .iter()
                .filter_map(|k| self.library.get(k).cloned())
                .take(6)
                .collect();
            self.report.duplicate_injections += dups.len() as u64;
            self.inject(&dups);
        }
    }

    /// Protects one fresh frame for `spi`, checks the monotonic-counter
    /// invariant, and parks it in `pending` until its verdict arrives.
    /// Returns the pending key.
    fn protect_fresh(&mut self, spi: u32) -> Option<(u32, u32, u64)> {
        let frame = self.tx.protect(spi, CHURN_PAYLOAD).expect("mem store")?;
        let sa = self.sas.get_mut(&spi).expect("active SA has a ledger");
        assert!(
            frame.seq.value() > sa.last_seq,
            "seed {}: sender counter for SA {spi} not monotonic ({} after {})",
            self.cfg.seed,
            frame.seq.value(),
            sa.last_seq
        );
        sa.last_seq = frame.seq.value();
        sa.sent += 1;
        let key = (spi, sa.epoch, frame.seq.value());
        self.pending.insert(key, frame.wire);
        Some(key)
    }

    /// Pushes adversary frames and accounts the resulting events.
    fn inject(&mut self, wires: &[Bytes]) {
        if wires.is_empty() {
            return;
        }
        self.rx.push_wire_batch(wires).expect("mem store");
        let events = self.rx.poll_events();
        self.account(&events, Drain::Adversary);
    }

    /// One reset storm: receiver down, replays hammer the outage,
    /// (every other storm) the sender reboots too, fresh traffic lands
    /// mid-wake-up, and the zoo strikes the instant recovery completes.
    fn storm(&mut self, round: u32) {
        self.report.storms += 1;
        let staggered = self.report.storms.is_multiple_of(2);
        // The delay-then-replay stash is taken *before* the reset: what
        // the adversary recorded in the old life.
        let stash: Vec<Bytes> = self
            .library
            .values()
            .take(DELAYED_REPLAY_BATCH)
            .cloned()
            .collect();
        self.rx.reset();
        self.report.receiver_resets += 1;
        for sa in self.sas.values_mut().filter(|s| s.active) {
            sa.resets_survived += 1;
        }
        // Mid-outage replays evaporate (DroppedDown) — the receiver is
        // a brick, not a window.
        let mid_outage: Vec<Bytes> = self.library.values().rev().take(16).cloned().collect();
        self.inject(&mid_outage);
        if staggered {
            // Staggered reboot: the sender crashes too and recovers
            // first — its counters leap 2K forward, never backward.
            self.tx.reset();
            self.tx.begin_recover().expect("mem store");
            self.tx.finish_recover().expect("mem store");
            self.tx.poll_events();
            self.report.sender_resets += 1;
            for sa in self.sas.values_mut().filter(|s| s.active) {
                // The leap voids the last-seq floor upward only; the
                // monotonicity assert still holds across it.
                sa.resets_survived += 1;
            }
        }
        self.rx.begin_recover().expect("mem store");
        // Fresh traffic mid-wake-up buffers and resolves after
        // finish_recover (kept far below the wake-up buffer cap).
        let active = self.active_spis();
        let mut awaited = 0;
        for i in 0..MID_WAKE_FRESH {
            let spi = active[i % active.len()];
            if let Some(key) = self.protect_fresh(spi) {
                let wire = self.pending.get(&key).expect("just inserted").clone();
                self.rx.push_wire_batch(&[wire]).expect("mem store");
                awaited += 1;
            }
        }
        let buffered = self.rx.poll_events();
        self.account(&buffered, Drain::Fresh);
        self.rx.finish_recover().expect("mem store");
        let events = self.rx.poll_events();
        self.account(&events, Drain::Fresh);
        let _ = (awaited, round);
        // Recovery done — release the zoo.
        if self.cfg.adversaries.delayed_replay {
            self.report.delayed_replays += stash.len() as u64;
            self.inject(&stash);
        }
        if self.cfg.adversaries.highest_seq {
            let probes: Vec<Bytes> = self
                .active_spis()
                .into_iter()
                .filter_map(|spi| {
                    let epoch = self.sas[&spi].epoch;
                    self.library
                        .range((spi, epoch, 0)..=(spi, epoch, u64::MAX))
                        .next_back()
                        .map(|(_, w)| w.clone())
                })
                .collect();
            self.report.highest_seq_replays += probes.len() as u64;
            self.inject(&probes);
        }
        if self.cfg.adversaries.shard_flood {
            // Canonical partition 0 under the *fixed* flood_partitions
            // count — the same SAs are flooded at any real shard count.
            let flood: Vec<Bytes> = self
                .active_spis()
                .into_iter()
                .filter(|&spi| spi_shard(spi, self.cfg.flood_partitions) == 0)
                .filter_map(|spi| {
                    let epoch = self.sas[&spi].epoch;
                    self.library
                        .range((spi, epoch, 0)..=(spi, epoch, u64::MAX))
                        .next_back()
                        .map(|(_, w)| w.clone())
                })
                .flat_map(|w| std::iter::repeat_n(w, FLOOD_TRAIN))
                .collect();
            self.report.shard_flood_replays += flood.len() as u64;
            self.inject(&flood);
        }
        if self.cfg.adversaries.reflection {
            self.reflect();
        }
    }

    /// Cross-SA reflection: a frame the sender sealed is played back
    /// *into the sender*, and its SPI is rewritten onto a sibling SA.
    /// Both must die at authentication. Direct reflection only targets
    /// epoch-1 SAs: `rekey_now` derives symmetric replacement keys, so
    /// only `add_peer_between`'s original direction-separated epoch
    /// still proves the directional-key property.
    fn reflect(&mut self) {
        let actives = self.active_spis();
        let mut reflected = Vec::new();
        for &spi in &actives {
            let sa = &self.sas[&spi];
            if sa.epoch != 1 {
                continue;
            }
            if let Some((_, wire)) = self
                .library
                .range((spi, 1, 0)..=(spi, 1, u64::MAX))
                .next_back()
            {
                reflected.push(wire.clone());
            }
        }
        if !reflected.is_empty() {
            self.report.reflections += reflected.len() as u64;
            self.tx.push_wire_batch(&reflected).expect("mem store");
            for ev in self.tx.poll_events() {
                match ev {
                    GatewayEvent::AuthFailed { .. } | GatewayEvent::UnknownSa { .. } => {}
                    GatewayEvent::Delivered { spi, .. }
                    | GatewayEvent::ReplayDropped { spi, .. } => {
                        // A reflected frame passing authentication on
                        // its own sender breaks the directional-key
                        // property — count it as an accepted replay.
                        self.report.replays_accepted += 1;
                        if let Some(sa) = self.sas.get_mut(&spi) {
                            sa.replays_accepted += 1;
                        }
                    }
                    _ => {}
                }
            }
        }
        // SPI rewrite onto a sibling: the SPI is inside the ICV, so the
        // rewritten frame cannot authenticate under any SA.
        if actives.len() >= 2 {
            if let Some((&(_, _, _), wire)) = self.library.iter().next_back() {
                let mut mangled = wire.to_vec();
                let target = actives[0];
                mangled[0..4].copy_from_slice(&target.to_be_bytes());
                self.report.reflections += 1;
                self.inject(&[Bytes::from(mangled)]);
            }
        }
    }

    /// Maps one drain's events onto the ledgers. `Drain::Fresh` may
    /// contain sacrifices (fresh frames inside the post-recovery leap);
    /// in adversary drains *any* delivery is an accepted replay.
    fn account(&mut self, events: &[GatewayEvent], drain: Drain) {
        for ev in events {
            match ev {
                GatewayEvent::Delivered { spi, seq, .. } => {
                    let epoch = self.sas.get(spi).map(|s| s.epoch).unwrap_or(0);
                    let key = (*spi, epoch, seq.value());
                    if !self.delivered.insert(key) || drain == Drain::Adversary {
                        self.report.replays_accepted += 1;
                        if let Some(sa) = self.sas.get_mut(spi) {
                            sa.replays_accepted += 1;
                        }
                        continue;
                    }
                    if let Some(wire) = self.pending.remove(&key) {
                        // Confirmed delivery: the adversary's tap may
                        // record it now.
                        self.library.insert(key, wire);
                    }
                    if let Some(sa) = self.sas.get_mut(spi) {
                        sa.delivered += 1;
                    }
                    self.report.interval_delivered += 1;
                }
                GatewayEvent::ReplayDropped { spi, seq, .. } => {
                    let epoch = self.sas.get(spi).map(|s| s.epoch).unwrap_or(0);
                    let key = (*spi, epoch, seq.value());
                    if self.pending.remove(&key).is_some() {
                        // A fresh frame rejected by the window: a
                        // sacrifice inside the post-recovery leap,
                        // bounded by 2K per reset.
                        if let Some(sa) = self.sas.get_mut(spi) {
                            sa.sacrificed += 1;
                        }
                    } else {
                        if let Some(sa) = self.sas.get_mut(spi) {
                            sa.replays_rejected += 1;
                        }
                        self.report.replays_rejected += 1;
                        self.report.interval_rejected += 1;
                    }
                }
                GatewayEvent::AuthFailed { spi } | GatewayEvent::UnknownSa { spi } => {
                    if let Some(sa) = self.sas.get_mut(spi) {
                        sa.replays_rejected += 1;
                    }
                    self.report.replays_rejected += 1;
                    self.report.interval_rejected += 1;
                }
                GatewayEvent::DroppedDown { spi } => {
                    let epoch = self.sas.get(spi).map(|s| s.epoch).unwrap_or(0);
                    // A fresh frame that hit the outage is lost, not
                    // sacrificed; adversary frames that evaporate count
                    // as rejected.
                    let mut was_fresh = false;
                    if let Some(sa) = self.sas.get_mut(spi) {
                        let keys: Vec<_> = self
                            .pending
                            .range((*spi, epoch, 0)..=(*spi, epoch, u64::MAX))
                            .map(|(k, _)| *k)
                            .collect();
                        // DroppedDown carries no sequence number, so
                        // fresh pushes while down are matched FIFO.
                        if let Some(k) = keys.first() {
                            self.pending.remove(k);
                            sa.dropped_down += 1;
                            was_fresh = true;
                        }
                    }
                    if !was_fresh {
                        self.report.replays_rejected += 1;
                        self.report.interval_rejected += 1;
                    }
                }
                GatewayEvent::Buffered { .. }
                | GatewayEvent::Recovered { .. }
                | GatewayEvent::RekeyStarted { .. }
                | GatewayEvent::RekeyCompleted { .. } => {}
                GatewayEvent::ProbeDue { .. }
                | GatewayEvent::PeerDead { .. }
                | GatewayEvent::FailedClosed { .. } => {
                    unreachable!("churn configures neither DPD nor faulty stores: {ev:?}")
                }
            }
        }
        let _ = drain;
    }

    fn finish(self, sim_ns: u64) -> ChurnReport {
        let k = self.cfg.save_interval;
        let verdicts: Vec<SaVerdict> = self
            .sas
            .iter()
            .map(|(&spi, sa)| SaVerdict {
                spi,
                sent: sa.sent,
                delivered: sa.delivered,
                sacrificed: sa.sacrificed,
                replays_rejected: sa.replays_rejected,
                epochs: sa.epoch,
                resets_survived: sa.resets_survived,
                ok: sa.replays_accepted == 0 && sa.sacrificed <= 2 * k * sa.resets_survived,
            })
            .collect();
        let acc = self.report;
        let totals = RunTotals {
            delivered: verdicts.iter().map(|v| v.delivered).sum(),
            replays_rejected: acc.replays_rejected,
            replays_accepted: acc.replays_accepted,
            sacrificed: verdicts.iter().map(|v| v.sacrificed).sum(),
            failed_closed: 0,
            resets: acc.receiver_resets + acc.sender_resets,
        };
        ChurnReport {
            seed: self.cfg.seed,
            shards: self.cfg.shards,
            verdicts,
            totals,
            timeline: acc.timeline,
            telemetry: self.telemetry.snapshot(),
            delayed_replays: acc.delayed_replays,
            highest_seq_replays: acc.highest_seq_replays,
            shard_flood_replays: acc.shard_flood_replays,
            reflections: acc.reflections,
            duplicate_injections: acc.duplicate_injections,
            joins: acc.joins,
            leaves: acc.leaves,
            rekeys: acc.rekeys,
            storms: acc.storms,
            sender_resets: acc.sender_resets,
            sim_ns,
        }
    }
}

/// Which side of the tap a drain's frames came from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Drain {
    /// The sender's original frames (may contain leap sacrifices).
    Fresh,
    /// Adversary injections — any delivery is an accepted replay.
    Adversary,
    /// Rekey/lifecycle events only.
    Lifecycle,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_churn_is_clean_and_exercises_everything() {
        let r = run_churn(ChurnConfig::quick(42));
        assert!(r.clean(), "verdicts: {:?}", r.verdicts);
        assert_eq!(r.totals.replays_accepted, 0);
        assert!(r.totals.delivered > 1000, "{}", r.totals.delivered);
        assert!(r.totals.replays_rejected > 0);
        assert_eq!(r.storms, 3);
        assert!(r.rekeys > 0);
        assert!(r.joins > 0);
        assert!(r.leaves > 0);
        assert!(!r.timeline.is_empty());
    }

    #[test]
    fn churn_is_reproducible_for_seed() {
        let fingerprint = |seed| {
            let r = run_churn(ChurnConfig::quick(seed));
            (r.totals.clone(), r.verdicts.len(), r.delayed_replays)
        };
        assert_eq!(fingerprint(3), fingerprint(3));
        assert_ne!(fingerprint(3), fingerprint(4));
    }

    #[test]
    fn telemetry_snapshot_reflects_the_run() {
        let r = run_churn(ChurnConfig::quick(9));
        // Gateway event counts and harness ground truth must agree.
        assert_eq!(
            r.telemetry.event("delivered"),
            r.totals.delivered + r.totals.replays_accepted
        );
        assert_eq!(r.telemetry.shards.len(), r.shards);
        assert!(r.telemetry.recover_ns.count >= r.storms);
        assert!(r.telemetry.total_frames() > 0);
    }

    #[test]
    fn run_report_renders_the_unified_schema() {
        let r = run_churn(ChurnConfig::quick(5));
        let run = r.to_run_report();
        assert!(run.clean());
        let json = run.render_json();
        assert!(json.starts_with("{\"schema\":\"reset-report/v1\",\"kind\":\"churn\""));
        assert!(json.contains("\"telemetry\":{"));
        assert!(json.contains("\"delayed_replays\""));
    }
}

//! # reset-harness — experiments regenerating every figure and table
//!
//! This crate turns the reproduction into numbers: a deterministic timed
//! [scenario runner](run_scenario) that wires the SAVE/FETCH protocol (or
//! the vulnerable baseline) to a faulty channel, a replay adversary, a
//! latency-modelled persistent store and an online convergence
//! [`Monitor`](anti_replay::Monitor) — plus one module per figure/table
//! of the paper under [`experiments`].
//!
//! Run everything:
//!
//! ```text
//! cargo run -p reset-harness --bin experiments -- all
//! cargo run -p reset-harness --bin experiments -- fig1 --seed 7
//! ```
//!
//! # Examples
//!
//! ```
//! use reset_harness::{run_scenario, AdversaryPlan, ScenarioConfig};
//! use reset_sim::SimTime;
//!
//! // The §3 attack against the SAVE/FETCH protocol: reset the receiver
//! // mid-run and replay the whole history. Nothing gets through.
//! let cfg = ScenarioConfig {
//!     receiver_resets: vec![SimTime::from_millis(4)],
//!     adversary: AdversaryPlan::ReplayAllOnReceiverRestart,
//!     ..ScenarioConfig::default()
//! };
//! let out = run_scenario(cfg);
//! assert_eq!(out.monitor.replays_accepted, 0);
//! assert!(out.monitor.fresh_discarded <= 2 * 25); // condition (ii)
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod campaign;
pub mod experiments;
mod report;
mod scenario;
mod workload;

pub use campaign::{run_campaign, CampaignConfig, CampaignReport};
pub use report::Table;
pub use scenario::{
    run_scenario, AdversaryPlan, Protocol, ScenarioConfig, ScenarioOutcome, Transport,
};
pub use workload::Workload;

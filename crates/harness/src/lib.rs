//! # reset-harness — experiments regenerating every figure and table
//!
//! This crate turns the reproduction into numbers: a deterministic timed
//! [scenario runner](run_scenario) that wires the SAVE/FETCH protocol (or
//! the vulnerable baseline) to a faulty channel, a replay adversary, a
//! latency-modelled persistent store and an online convergence
//! [`Monitor`](anti_replay::Monitor) — plus one module per figure/table
//! of the paper under [`experiments`].
//!
//! Run everything:
//!
//! ```text
//! cargo run -p reset-harness --bin experiments -- all
//! cargo run -p reset-harness --bin experiments -- fig1 --seed 7
//! ```
//!
//! # The unified report schema (`reset-report/v1`)
//!
//! Every machine-readable result — fault campaigns
//! ([`CampaignReport::to_run_report`]), timed scenarios
//! ([`ScenarioOutcome::to_run_report`]), and churn soaks
//! ([`ChurnReport::to_run_report`]) — serializes through one
//! [`RunReport`] structure rendered by the zero-dependency
//! [`reset_telemetry::Json`] writer. The document is a single object:
//!
//! * `schema` — the literal [`REPORT_SCHEMA`] version tag;
//! * `kind` — `"campaign"`, `"scenario"`, or `"churn"`;
//! * `seed` — reproduces the run exactly;
//! * `totals` — fleet-wide counters (`delivered`, `replays_rejected`,
//!   `replays_accepted` — must be 0 — `sacrificed`, `failed_closed`,
//!   `resets`);
//! * `verdicts` — one row per SA (`spi`, `sent`, `delivered`,
//!   `sacrificed`, `replays_rejected`, `epochs`, `resets_survived`,
//!   `ok`), empty when the workload only tracks totals;
//! * `timeline` — throughput samples (`t_ns`, `delivered`, `rejected`),
//!   empty when not sampled;
//! * `telemetry` — the observed gateway's
//!   [`reset_telemetry::Snapshot`] (per-shard skew, latency
//!   histograms, event counts), or `null` when none was attached;
//! * `extra` — kind-specific counters (e.g. the churn soak's
//!   per-adversary-strategy injection counts).
//!
//! Keys render in insertion order, so the same run produces
//! byte-identical JSON.
//!
//! # Examples
//!
//! ```
//! use reset_harness::{run_scenario, AdversaryPlan, ScenarioConfig};
//! use reset_sim::SimTime;
//!
//! // The §3 attack against the SAVE/FETCH protocol: reset the receiver
//! // mid-run and replay the whole history. Nothing gets through.
//! let cfg = ScenarioConfig {
//!     receiver_resets: vec![SimTime::from_millis(4)],
//!     adversary: AdversaryPlan::ReplayAllOnReceiverRestart,
//!     ..ScenarioConfig::default()
//! };
//! let out = run_scenario(cfg);
//! assert_eq!(out.monitor.replays_accepted, 0);
//! assert!(out.monitor.fresh_discarded <= 2 * 25); // condition (ii)
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod campaign;
pub mod churn;
pub mod experiments;
mod report;
mod scenario;
mod workload;

pub use campaign::{run_campaign, CampaignConfig, CampaignReport};
pub use churn::{run_churn, AdversaryZoo, ChurnConfig, ChurnReport};
pub use report::{RunReport, RunTotals, SaVerdict, Table, TimelinePoint, REPORT_SCHEMA};
pub use scenario::{
    run_scenario, AdversaryPlan, Protocol, ScenarioConfig, ScenarioOutcome, Transport,
};
pub use workload::Workload;

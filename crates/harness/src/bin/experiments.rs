//! CLI entry point: regenerates the paper's figures and tables.
//!
//! ```text
//! experiments all            # every experiment
//! experiments fig1 t2 t5     # a subset
//! experiments --list         # what exists
//! experiments t6 --csv       # additionally dump CSV after each table
//! ```

use std::process::ExitCode;

use reset_harness::experiments::{run_by_id, ALL_IDS};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut ids: Vec<String> = Vec::new();
    let mut csv = false;
    for a in &args {
        match a.as_str() {
            "--csv" => csv = true,
            "--list" => {
                println!("available experiments: {}", ALL_IDS.join(", "));
                return ExitCode::SUCCESS;
            }
            "all" => ids.extend(ALL_IDS.iter().map(|s| s.to_string())),
            other if other.starts_with("--") => {
                eprintln!("unknown flag: {other}");
                return ExitCode::FAILURE;
            }
            other => ids.push(other.to_string()),
        }
    }
    if ids.is_empty() {
        println!("available experiments: {}", ALL_IDS.join(", "));
        println!("usage: experiments <id>... | all [--csv] [--list]");
        return ExitCode::SUCCESS;
    }
    for id in &ids {
        let Some(tables) = run_by_id(id) else {
            eprintln!("unknown experiment id: {id} (try --list)");
            return ExitCode::FAILURE;
        };
        for table in tables {
            println!("{table}");
            if csv {
                println!("--- csv ---\n{}", table.to_csv());
            }
        }
    }
    ExitCode::SUCCESS
}

//! t5 — the cost argument: rescuing an SA vs re-establishing it.
//!
//! §3: "reestablishing the entire IPsec SA is very expensive. It takes
//! the recomputation of most attributes of this SA, especially the keys
//! and shared secrets, and the renegotiation of all these attributes
//! using a secured connection. Moreover, a host may have multiple SAs
//! … Requiring \[it\] to drop and reestablish all the existing SAs because
//! of a reset stands for a huge amount of overhead."
//!
//! Two measurements per row:
//!
//! * a **ledger estimate** using the handshake's exact operation counts
//!   under the paper-era cost model (modexp 10 ms, RTT 40 ms) — what the
//!   authors' hardware would have paid;
//! * a **real wall-clock measurement** on this host: an actual OAKLEY
//!   group-1 handshake (four 768-bit modexps + PRF) vs an actual
//!   SAVE/FETCH recovery against the file-backed store.
//!
//! The shape to reproduce: recovery is orders of magnitude cheaper, and
//! the gap scales linearly with the number of SAs on the host.

use std::time::Instant;

use reset_crypto::oakley_group1;
use reset_ipsec::{run_handshake, CostModel, HandshakeCost};
use reset_stable::{Durability, FileStable, SlotId};

use anti_replay::SfSender;

use crate::report::Table;

/// Ledger for one SAVE/FETCH recovery (per SA direction): one FETCH read
/// + one synchronous SAVE write, no network, no modexp.
pub fn recovery_cost_ns(t_save_ns: u64) -> u64 {
    // FETCH (read) is bounded by a write; model both as t_save.
    2 * t_save_ns
}

/// Measures one real handshake on this host (wall time, ns).
pub fn measure_handshake_ns() -> (HandshakeCost, u64) {
    let t0 = Instant::now();
    let pair = run_handshake(
        oakley_group1(),
        b"benchmark-psk",
        b"initiator-dh-secret-material",
        b"responder-dh-secret-material",
        0x1000,
        0x2000,
    )
    .expect("handshake succeeds");
    (pair.cost, t0.elapsed().as_nanos() as u64)
}

/// Measures one real SAVE/FETCH recovery against the file store.
pub fn measure_recovery_ns() -> u64 {
    let dir = std::env::temp_dir().join(format!(
        "ipsec-reset-t5-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let store = FileStable::open(&dir, Durability::ProcessCrash).expect("temp dir");
    let mut sender = SfSender::new(store, SlotId::sender(1), 25);
    for _ in 0..30 {
        sender.send_next().expect("store");
    }
    sender.save_completed().expect("store");
    sender.reset();
    let t0 = Instant::now();
    sender.wake_up().expect("store");
    let ns = t0.elapsed().as_nanos() as u64;
    let _ = std::fs::remove_dir_all(&dir);
    ns
}

/// Renders the t5 table for host SA counts `ns_sas`.
///
/// # Panics
///
/// Panics if recovery is not decisively cheaper than re-establishment —
/// the paper's claim must reproduce.
pub fn table(ns_sas: &[u64]) -> Table {
    let (cost, hs_real_ns) = measure_handshake_ns();
    let rec_real_ns = measure_recovery_ns();
    let model = CostModel::paper_era();
    let hs_model_ns = cost.estimate_ns(&model);
    let rec_model_ns = recovery_cost_ns(100_000); // the paper's disk

    let mut t = Table::new(
        "t5: reset recovery cost — IKE re-establishment vs SAVE/FETCH",
        &[
            "SAs on host",
            "IKE est. (paper-era)",
            "SAVE/FETCH est. (paper-era)",
            "est. ratio",
            "IKE measured (this host)",
            "SAVE/FETCH measured",
            "measured ratio",
        ],
    );
    for &n in ns_sas {
        let hs_model = hs_model_ns * n;
        let rec_model = rec_model_ns * n;
        let hs_real = hs_real_ns * n;
        let rec_real = rec_real_ns.max(1) * n;
        let model_ratio = hs_model as f64 / rec_model.max(1) as f64;
        let real_ratio = hs_real as f64 / rec_real as f64;
        assert!(
            model_ratio > 50.0,
            "paper-era ratio should be large: {model_ratio}"
        );
        assert!(
            real_ratio > 2.0,
            "even on this host recovery must win clearly: {real_ratio}"
        );
        t.row_owned(vec![
            n.to_string(),
            format!("{:.1}ms", hs_model as f64 / 1e6),
            format!("{:.2}ms", rec_model as f64 / 1e6),
            format!("{model_ratio:.0}x"),
            format!("{:.2}ms", hs_real as f64 / 1e6),
            format!("{:.3}ms", rec_real as f64 / 1e6),
            format!("{real_ratio:.0}x"),
        ]);
    }
    t.note(format!(
        "handshake ledger: {} messages, {} round trips, {} modexps, {} PRF calls, {} bytes",
        cost.messages, cost.round_trips, cost.modexps, cost.prf_calls, cost.bytes
    ));
    t.note("SAVE/FETCH per SA: 1 FETCH + 1 synchronous SAVE, zero network round trips");
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recovery_ledger_is_two_device_ops() {
        assert_eq!(recovery_cost_ns(100_000), 200_000);
    }

    #[test]
    fn paper_era_gap_is_huge() {
        let (cost, _) = measure_handshake_ns();
        let hs = cost.estimate_ns(&CostModel::paper_era());
        let rec = recovery_cost_ns(100_000);
        // ≥ 3 RTTs (120 ms) + 4 modexps (40 ms) vs 200 µs: > 500×.
        assert!(hs / rec > 500, "hs={hs} rec={rec}");
    }

    #[test]
    fn real_measurements_favor_recovery() {
        let (_, hs_real) = measure_handshake_ns();
        let rec_real = measure_recovery_ns();
        assert!(
            hs_real > rec_real,
            "handshake {hs_real}ns should exceed recovery {rec_real}ns"
        );
    }

    #[test]
    fn table_scales_with_sa_count() {
        let t = table(&[1, 10]);
        assert_eq!(t.len(), 2);
    }
}

//! t2 — §5 condition (ii) under the full timed scenario.
//!
//! Sweep the receiver save interval `Kq`; in every run the receiver is
//! reset mid-stream and, the moment it finishes waking up, the adversary
//! replays the **entire** recorded history (the §3 attack). Report the
//! worst case over seeds of fresh discards (bound `2Kq` per reset) and
//! replays accepted (zero, always).

use reset_sim::{SimDuration, SimTime};
use reset_stable::SaveLatencyModel;

use crate::report::Table;
use crate::scenario::{run_scenario, AdversaryPlan, Protocol, ScenarioConfig};

/// Aggregated worst-case results for one `Kq`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct T2Row {
    /// Save interval swept.
    pub kq: u64,
    /// Seeds run.
    pub seeds: u64,
    /// max over seeds of fresh messages discarded by the leap.
    pub max_fresh_discarded: u64,
    /// Bound: resets × `2Kq` (+ downtime drops are counted separately).
    pub bound: u64,
    /// max over seeds of replays accepted (must be 0).
    pub max_replays_accepted: u64,
    /// min over seeds of replays *rejected* (sanity: attack actually ran).
    pub min_replays_rejected: u64,
    /// All runs violation-free?
    pub all_clean: bool,
}

/// Runs the sweep. One receiver reset per run.
pub fn sweep(kqs: &[u64], seeds: u64) -> Vec<T2Row> {
    kqs.iter()
        .map(|&kq| {
            let mut max_fresh = 0u64;
            let mut max_acc = 0u64;
            let mut min_rej = u64::MAX;
            let mut all_clean = true;
            for seed in 0..seeds {
                let cfg = ScenarioConfig {
                    seed,
                    protocol: Protocol::SaveFetch,
                    kp: kq,
                    kq,
                    // Device calibrated to K (see t1/t4): K must cover
                    // one SAVE's worth of messages.
                    save_latency: SaveLatencyModel::fixed_ns((kq * 4_000 / 2).min(100_000)),
                    receiver_resets: vec![SimTime::from_micros(4_000 + seed * 41)],
                    downtime: SimDuration::from_micros(200),
                    adversary: AdversaryPlan::ReplayAllOnReceiverRestart,
                    ..ScenarioConfig::default()
                };
                let out = run_scenario(cfg);
                max_fresh = max_fresh.max(out.monitor.fresh_discarded);
                max_acc = max_acc.max(out.monitor.replays_accepted);
                min_rej = min_rej.min(out.monitor.replays_rejected);
                all_clean &= out.monitor.clean();
            }
            T2Row {
                kq,
                seeds,
                max_fresh_discarded: max_fresh,
                bound: 2 * kq,
                max_replays_accepted: max_acc,
                min_replays_rejected: min_rej,
                all_clean,
            }
        })
        .collect()
}

/// Renders the t2 table.
///
/// # Panics
///
/// Panics if any bound is violated or the attack never ran.
pub fn table(kqs: &[u64], seeds: u64) -> Table {
    let mut t = Table::new(
        "t2: receiver reset + full-history replay — condition (ii)",
        &[
            "Kq",
            "seeds",
            "max_fresh_discarded",
            "bound(2Kq)",
            "max_replays_accepted",
            "min_replays_rejected",
            "clean",
        ],
    );
    for row in sweep(kqs, seeds) {
        assert!(
            row.max_fresh_discarded <= row.bound,
            "condition (ii) violated: {row:?}"
        );
        assert_eq!(row.max_replays_accepted, 0, "{row:?}");
        assert!(row.min_replays_rejected > 0, "attack never ran: {row:?}");
        assert!(row.all_clean, "{row:?}");
        t.row_owned(vec![
            row.kq.to_string(),
            row.seeds.to_string(),
            row.max_fresh_discarded.to_string(),
            row.bound.to_string(),
            row.max_replays_accepted.to_string(),
            row.min_replays_rejected.to_string(),
            row.all_clean.to_string(),
        ]);
    }
    t.note("whole-history replay after wake-up: 0 accepted; fresh loss ≤ 2Kq");
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_sweep_holds_bounds() {
        for r in sweep(&[8, 32], 3) {
            assert!(r.max_fresh_discarded <= r.bound, "{r:?}");
            assert_eq!(r.max_replays_accepted, 0);
            assert!(r.min_replays_rejected > 100, "{r:?}");
            assert!(r.all_clean);
        }
    }

    #[test]
    fn bigger_k_bigger_allowed_sacrifice() {
        let rows = sweep(&[8, 64], 2);
        assert!(rows[1].bound > rows[0].bound);
    }
}

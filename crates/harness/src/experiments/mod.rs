//! The experiment suite — one module per figure/table of the paper.
//!
//! | id | paper source | module |
//! |----|--------------|--------|
//! | `fig1` | Fig 1 (reset at sender) | [`fig1`] |
//! | `fig2` | Fig 2 (reset at receiver) | [`fig2`] |
//! | `t1` | §5 condition (i) | [`t1`] |
//! | `t2` | §5 condition (ii) | [`t2`] |
//! | `t3` | §3 baseline failures | [`t3`] |
//! | `t4` | §4 calibration example | [`t4`] |
//! | `t5` | §3/§6 cost argument | [`t5`] |
//! | `t6` | §2 w-Delivery & Discrimination | [`t6`] |
//! | `t7` | §6 prolonged resets | [`t7`] |
//! | `ablation` | §4 design choices | [`ablation`] |
//! | `suites` | cipher-suite sweep (beyond the paper) | [`suites`] |
//!
//! Each module exposes raw `run`/`sweep` functions returning typed
//! records (used by the integration tests) and a `table` function that
//! renders — and *asserts* — the paper's claims.

pub mod ablation;
pub mod fig1;
pub mod fig2;
pub mod suites;
pub mod t1;
pub mod t2;
pub mod t3;
pub mod t4;
pub mod t5;
pub mod t6;
pub mod t7;

use crate::report::Table;

/// Standard (full-size) parameterizations used by the `experiments`
/// binary. Each returns the rendered tables for one experiment id.
pub fn run_by_id(id: &str) -> Option<Vec<Table>> {
    match id {
        "fig1" => Some(vec![fig1::table(25)]),
        "fig2" => Some(vec![fig2::table(25)]),
        "t1" => Some(vec![t1::table(&[8, 16, 32, 64, 128, 256], 10)]),
        "t2" => Some(vec![t2::table(&[8, 16, 32, 64, 128, 256], 10)]),
        "t3" => Some(vec![
            t3::table_a(&[100, 500, 1000, 2000], 1),
            t3::table_b(&[100, 500, 1000, 2000], 1),
            t3::table_c(&[200, 500, 1000], 1),
        ]),
        "t4" => Some(vec![t4::table()]),
        "t5" => Some(vec![t5::table(&[1, 10, 100])]),
        "t6" => Some(vec![t6::table(64, 2000, 42)]),
        "t7" => Some(vec![t7::table(&[5, 10, 25, 100])]),
        "ablation" => Some(vec![
            ablation::k_sweep_table(&[1, 5, 25, 100, 500], 5),
            ablation::policy_table(5_000, 25, 42),
            ablation::window_impl_table(25),
        ]),
        "suites" => Some(vec![suites::table(20_000, 64)]),
        _ => None,
    }
}

/// All experiment ids, in run order.
pub const ALL_IDS: &[&str] = &[
    "fig1", "fig2", "t1", "t2", "t3", "t4", "t5", "t6", "t7", "ablation", "suites",
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unknown_id_is_none() {
        assert!(run_by_id("nope").is_none());
    }

    #[test]
    fn all_ids_resolve() {
        // Cheap smoke check on id wiring only: fig1 is fast to run.
        assert!(ALL_IDS.contains(&"fig1"));
        assert!(run_by_id("fig1").is_some());
    }
}

//! Ablations of the §4 design choices.
//!
//! Two knobs the paper argues about:
//!
//! * **Save interval K** — "we do not want to execute SAVE too
//!   frequently because this can generate too much overhead … \[nor\] too
//!   infrequently so that the saved sequence number is not recent
//!   enough." Sweep K and show the overhead/exposure trade-off.
//! * **Message-count vs time-triggered SAVE** — "we measure the interval
//!   between two SAVEs in terms of the number of messages, rather than in
//!   terms of time, because the rate of message generation may change
//!   over time… measuring the interval in terms of time leads to
//!   wasteful SAVEs." Run both policies over bursty and idle-heavy
//!   workloads and count the wasteful SAVEs.

use reset_sim::{DetRng, SimDuration, SimTime};
use reset_stable::SaveLatencyModel;

use crate::report::Table;
use crate::scenario::{run_scenario, AdversaryPlan, Protocol, ScenarioConfig};
use crate::workload::Workload;

/// One row of the K sweep: overhead vs exposure.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KSweepRow {
    /// Save interval.
    pub k: u64,
    /// SAVEs issued per 1000 messages (overhead).
    pub saves_per_1k: f64,
    /// Worst-case sequence numbers lost across resets (exposure).
    pub max_lost: u64,
    /// The theoretical exposure bound `2K` per reset.
    pub bound_per_reset: u64,
}

/// Sweeps the save interval: overhead falls with K, exposure grows.
pub fn k_sweep(ks: &[u64], seeds: u64) -> Vec<KSweepRow> {
    ks.iter()
        .map(|&k| {
            let mut max_lost = 0u64;
            let mut total_sent = 0u64;
            let mut total_saves = 0u64;
            for seed in 0..seeds {
                let cfg = ScenarioConfig {
                    seed,
                    protocol: Protocol::SaveFetch,
                    kp: k,
                    kq: k,
                    save_latency: SaveLatencyModel::fixed_ns((k * 4_000 / 2).min(100_000)),
                    sender_resets: vec![SimTime::from_micros(5_000 + seed * 29)],
                    downtime: SimDuration::from_micros(100),
                    adversary: AdversaryPlan::None,
                    ..ScenarioConfig::default()
                };
                let out = run_scenario(cfg);
                max_lost = max_lost.max(out.monitor.seqs_lost_to_leaps);
                total_sent += out.monitor.sent;
                // Sender saves ≈ sent / k (amortized); recompute exactly
                // from the counters by re-deriving: sent messages trigger
                // one issue per k.
                total_saves += out.monitor.sent / k;
            }
            KSweepRow {
                k,
                saves_per_1k: 1000.0 * total_saves as f64 / total_sent.max(1) as f64,
                max_lost,
                bound_per_reset: 2 * k,
            }
        })
        .collect()
}

/// Renders the K-sweep ablation table.
///
/// # Panics
///
/// Panics if exposure exceeds its bound.
pub fn k_sweep_table(ks: &[u64], seeds: u64) -> Table {
    let mut t = Table::new(
        "ablation A: save interval K — overhead vs exposure",
        &[
            "K",
            "saves_per_1k_msgs",
            "max_lost_seqs",
            "bound_per_reset(2K)",
        ],
    );
    for row in k_sweep(ks, seeds) {
        assert!(row.max_lost <= row.bound_per_reset, "{row:?}");
        t.row_owned(vec![
            row.k.to_string(),
            format!("{:.1}", row.saves_per_1k),
            row.max_lost.to_string(),
            row.bound_per_reset.to_string(),
        ]);
    }
    t.note("small K: many SAVEs, tiny loss; large K: rare SAVEs, loss up to 2K — pick K = ceil(t_save/t_msg)");
    t
}

/// Result of simulating one save-trigger policy over a workload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PolicyRow {
    /// Total SAVEs issued.
    pub saves: u64,
    /// SAVEs that stored a counter that had advanced by zero messages
    /// since the previous SAVE — pure waste.
    pub wasteful_saves: u64,
    /// Worst-case messages un-saved at any instant (exposure).
    pub max_exposure: u64,
}

/// Simulates the two §4 trigger policies over `n` messages of `workload`.
///
/// * Count policy: SAVE after every `k` messages.
/// * Time policy: SAVE every `k × t_msg` of wall time regardless of
///   traffic — the strawman the paper rejects.
pub fn run_policies(workload: Workload, n: u64, k: u64, seed: u64) -> (PolicyRow, PolicyRow) {
    let t_msg = SimDuration::from_micros(4);
    let mut rng = DetRng::new(seed);
    // Generate the send times once.
    let mut w = workload;
    let mut times = Vec::with_capacity(n as usize);
    let mut now = SimTime::ZERO;
    for _ in 0..n {
        now += w.next_gap(&mut rng);
        times.push(now);
    }

    // Count-triggered.
    let count = {
        let mut saves = 0;
        let mut since_save = 0u64;
        let mut max_exposure = 0u64;
        for _ in &times {
            since_save += 1;
            max_exposure = max_exposure.max(since_save);
            if since_save >= k {
                saves += 1;
                since_save = 0;
            }
        }
        PolicyRow {
            saves,
            wasteful_saves: 0, // a count trigger fires only on progress
            max_exposure,
        }
    };

    // Time-triggered (period = k × t_msg).
    let time = {
        let period = SimDuration::from_nanos(t_msg.as_nanos() * k);
        let end = *times.last().expect("non-empty workload");
        let mut saves = 0u64;
        let mut wasteful = 0u64;
        let mut max_exposure = 0u64;
        let mut msg_idx = 0usize;
        let mut since_save = 0u64;
        let mut tick = SimTime::ZERO + period;
        while tick <= end {
            // Messages sent before this tick.
            while msg_idx < times.len() && times[msg_idx] <= tick {
                msg_idx += 1;
                since_save += 1;
                max_exposure = max_exposure.max(since_save);
            }
            saves += 1;
            if since_save == 0 {
                wasteful += 1;
            }
            since_save = 0;
            tick += period;
        }
        PolicyRow {
            saves,
            wasteful_saves: wasteful,
            max_exposure,
        }
    };
    (count, time)
}

/// Renders the trigger-policy ablation.
///
/// # Panics
///
/// Panics if the count policy ever fires a wasteful SAVE.
pub fn policy_table(n: u64, k: u64, seed: u64) -> Table {
    let workloads: Vec<(&str, Workload)> = vec![
        (
            "constant 4us",
            Workload::constant(SimDuration::from_micros(4)),
        ),
        (
            "bursty (200 on / 10ms off)",
            Workload::bursty(
                SimDuration::from_micros(4),
                200,
                SimDuration::from_millis(10),
            ),
        ),
        (
            "idle-heavy (20 on / 100ms off)",
            Workload::bursty(
                SimDuration::from_micros(4),
                20,
                SimDuration::from_millis(100),
            ),
        ),
        (
            "poisson mean 40us",
            Workload::poisson(SimDuration::from_micros(40)),
        ),
    ];
    let mut t = Table::new(
        format!("ablation B: count- vs time-triggered SAVE (K = {k}, {n} msgs)"),
        &[
            "workload",
            "policy",
            "saves",
            "wasteful_saves",
            "max_exposure_msgs",
        ],
    );
    for (label, w) in workloads {
        let (count, time) = run_policies(w, n, k, seed);
        assert_eq!(count.wasteful_saves, 0);
        t.row_owned(vec![
            label.to_string(),
            "count (paper)".to_string(),
            count.saves.to_string(),
            count.wasteful_saves.to_string(),
            count.max_exposure.to_string(),
        ]);
        t.row_owned(vec![
            label.to_string(),
            "time (strawman)".to_string(),
            time.saves.to_string(),
            time.wasteful_saves.to_string(),
            time.max_exposure.to_string(),
        ]);
    }
    t.note("idle-heavy traffic: the time policy burns SAVEs during silence and still has worse exposure during bursts");
    t
}

/// Ablation C: window implementation — reference bitmap vs the RFC 6479
/// block window behind the same SAVE/FETCH receiver.
///
/// Safety (0 replays accepted) must be identical; the block window may
/// sacrifice up to one extra 64-bit block of fresh traffic after a
/// wake-up (its documented conservativeness), in exchange for
/// O(blocks) slides.
pub fn window_impl_table(k: u64) -> Table {
    use anti_replay::{BlockWindow, ReplayWindow, SeqNum, SfReceiver};
    use reset_stable::{MemStable, SlotId};

    fn drive<W: ReplayWindow>(mut q: SfReceiver<MemStable, W>, k: u64) -> (u64, u64) {
        // fig2-style worst case: SAVE(2k) completed, reset immediately.
        for s in 1..=2 * k {
            q.receive(SeqNum::new(s)).expect("mem store");
            if s == k || s == 2 * k {
                q.save_completed().expect("mem store");
            }
        }
        q.reset();
        q.wake_up().expect("mem store");
        let mut replays_accepted = 0;
        for s in 1..=2 * k {
            if q.receive(SeqNum::new(s)).expect("mem store").is_delivered() {
                replays_accepted += 1;
            }
        }
        let mut sacrificed = 0;
        let mut s = 2 * k + 1;
        loop {
            if q.receive(SeqNum::new(s)).expect("mem store").is_delivered() {
                break;
            }
            sacrificed += 1;
            s += 1;
            assert!(sacrificed <= 2 * k + 64 + 1, "never converged");
        }
        (replays_accepted, sacrificed)
    }

    let w_bits = 4 * k + 16;
    let (ref_acc, ref_sac) = drive(
        SfReceiver::new(MemStable::new(), SlotId::receiver(1), k, w_bits),
        k,
    );
    let (blk_acc, blk_sac) = drive(
        SfReceiver::with_window(
            MemStable::new(),
            SlotId::receiver(1),
            k,
            BlockWindow::new(w_bits),
        ),
        k,
    );

    let mut t = Table::new(
        format!("ablation C: window implementation under SAVE/FETCH (K = {k})"),
        &[
            "window impl",
            "replays_accepted",
            "fresh_sacrificed",
            "bound",
        ],
    );
    assert_eq!(ref_acc, 0);
    assert_eq!(blk_acc, 0, "block window must be no less safe");
    assert!(ref_sac <= 2 * k);
    assert!(blk_sac <= 2 * k + 64, "block conservativeness bound");
    t.row_owned(vec![
        "reference bitmap".into(),
        ref_acc.to_string(),
        ref_sac.to_string(),
        format!("2K = {}", 2 * k),
    ]);
    t.row_owned(vec![
        "RFC 6479 block".into(),
        blk_acc.to_string(),
        blk_sac.to_string(),
        format!("2K + 64 = {}", 2 * k + 64),
    ]);
    t.note("identical safety; the block variant may discard up to one extra 64-bit block after wake-up");
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn k_sweep_tradeoff_direction() {
        let rows = k_sweep(&[5, 100], 2);
        assert!(
            rows[0].saves_per_1k > rows[1].saves_per_1k,
            "smaller K saves more often"
        );
        assert!(rows[0].bound_per_reset < rows[1].bound_per_reset);
        for r in &rows {
            assert!(r.max_lost <= r.bound_per_reset);
        }
    }

    #[test]
    fn count_policy_never_wasteful() {
        let (count, _) = run_policies(
            Workload::bursty(
                SimDuration::from_micros(4),
                10,
                SimDuration::from_millis(50),
            ),
            2_000,
            25,
            1,
        );
        assert_eq!(count.wasteful_saves, 0);
        assert!(count.max_exposure <= 25);
    }

    #[test]
    fn time_policy_wasteful_on_idle_workloads() {
        let (count, time) = run_policies(
            Workload::bursty(
                SimDuration::from_micros(4),
                20,
                SimDuration::from_millis(100),
            ),
            2_000,
            25,
            1,
        );
        assert!(
            time.wasteful_saves > 10,
            "idle periods should waste SAVEs: {time:?}"
        );
        assert!(
            time.saves > 10 * count.saves,
            "time policy burns far more SAVEs: {time:?} vs {count:?}"
        );
    }

    #[test]
    fn constant_rate_policies_equivalent_exposure() {
        let (count, time) = run_policies(
            Workload::constant(SimDuration::from_micros(4)),
            2_000,
            25,
            1,
        );
        // At constant rate the two policies behave almost identically.
        assert!(count.max_exposure <= 25);
        assert!(time.max_exposure <= 26);
        assert_eq!(time.wasteful_saves, 0);
    }

    #[test]
    fn tables_build() {
        assert!(k_sweep_table(&[25], 1).len() == 1);
        assert!(policy_table(1_000, 25, 1).len() == 8);
        assert!(window_impl_table(25).len() == 2);
    }

    #[test]
    fn window_impls_equally_safe() {
        let t = window_impl_table(10);
        assert_eq!(t.cell(0, 1), Some("0"));
        assert_eq!(t.cell(1, 1), Some("0"));
    }
}

//! t1 — §5 condition (i) under the full timed scenario.
//!
//! Sweep the sender save interval `Kp` and many seeds; in every run the
//! sender is reset mid-stream while traffic flows at the paper's rate
//! over an in-order channel. Report the worst case over seeds of:
//! sequence numbers wasted (bound `2Kp`), fresh messages discarded
//! (bound: **zero** without reorder), and replays accepted (zero).

use reset_sim::{SimDuration, SimTime};
use reset_stable::SaveLatencyModel;

use crate::report::Table;
use crate::scenario::{run_scenario, AdversaryPlan, Protocol, ScenarioConfig};

/// Aggregated worst-case results for one `Kp`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct T1Row {
    /// Save interval swept.
    pub kp: u64,
    /// Seeds run.
    pub seeds: u64,
    /// max over seeds of wasted sequence numbers.
    pub max_lost: u64,
    /// The paper bound `2Kp`.
    pub bound: u64,
    /// max over seeds of fresh messages discarded.
    pub max_fresh_discarded: u64,
    /// max over seeds of replays accepted.
    pub max_replays_accepted: u64,
    /// Were all runs violation-free?
    pub all_clean: bool,
}

/// Runs the sweep.
pub fn sweep(kps: &[u64], seeds: u64) -> Vec<T1Row> {
    kps.iter()
        .map(|&kp| {
            let mut max_lost = 0;
            let mut max_fresh = 0;
            let mut max_replays = 0;
            let mut all_clean = true;
            for seed in 0..seeds {
                let cfg = ScenarioConfig {
                    seed,
                    protocol: Protocol::SaveFetch,
                    kp,
                    kq: kp,
                    // §4's premise: K must cover the messages that can
                    // flow during one SAVE. Small K therefore implies a
                    // faster device (the calibration of t4), capped at
                    // the paper's 100 µs disk.
                    save_latency: SaveLatencyModel::fixed_ns((kp * 4_000 / 2).min(100_000)),
                    // Two resets at varying points in the save cycle (seed
                    // offsets shift the alignment).
                    sender_resets: vec![
                        SimTime::from_micros(3_000 + seed * 37),
                        SimTime::from_micros(7_000 + seed * 53),
                    ],
                    downtime: SimDuration::from_micros(200),
                    adversary: AdversaryPlan::PeriodicRandom {
                        every: SimDuration::from_micros(500),
                        count: 2,
                    },
                    ..ScenarioConfig::default()
                };
                let out = run_scenario(cfg);
                max_lost = max_lost.max(out.monitor.seqs_lost_to_leaps);
                max_fresh = max_fresh.max(out.monitor.fresh_discarded);
                max_replays = max_replays.max(out.monitor.replays_accepted);
                all_clean &= out.monitor.clean();
            }
            T1Row {
                kp,
                seeds,
                // Two resets per run: bound is per-reset; report per-reset
                // worst by halving is wrong (one reset may dominate), so
                // compare against resets × 2Kp.
                max_lost,
                bound: 2 * kp * 2,
                max_fresh_discarded: max_fresh,
                max_replays_accepted: max_replays,
                all_clean,
            }
        })
        .collect()
}

/// Renders the t1 table.
///
/// # Panics
///
/// Panics if any bound is violated.
pub fn table(kps: &[u64], seeds: u64) -> Table {
    let mut t = Table::new(
        "t1: sender reset — condition (i), timed scenario",
        &[
            "Kp",
            "seeds",
            "max_lost_seqs",
            "bound(2 resets x 2Kp)",
            "max_fresh_discarded",
            "max_replays_accepted",
            "clean",
        ],
    );
    for row in sweep(kps, seeds) {
        assert!(row.max_lost <= row.bound, "{row:?}");
        assert_eq!(row.max_fresh_discarded, 0, "{row:?}");
        assert_eq!(row.max_replays_accepted, 0, "{row:?}");
        assert!(row.all_clean, "{row:?}");
        t.row_owned(vec![
            row.kp.to_string(),
            row.seeds.to_string(),
            row.max_lost.to_string(),
            row.bound.to_string(),
            row.max_fresh_discarded.to_string(),
            row.max_replays_accepted.to_string(),
            row.all_clean.to_string(),
        ]);
    }
    t.note("in-order channel: zero fresh discards after sender resets, loss ≤ 2Kp per reset");
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_sweep_holds_bounds() {
        let rows = sweep(&[8, 32], 3);
        for r in rows {
            assert!(r.max_lost <= r.bound);
            assert_eq!(r.max_fresh_discarded, 0);
            assert_eq!(r.max_replays_accepted, 0);
            assert!(r.all_clean);
            assert!(r.max_lost > 0, "resets really happened");
        }
    }

    #[test]
    fn table_builds() {
        let t = table(&[16], 2);
        assert_eq!(t.len(), 1);
    }
}

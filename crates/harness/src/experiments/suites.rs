//! suites — sweep every negotiable cipher suite through the real ESP
//! datapath.
//!
//! The paper treats the cipher as a black box (its argument needs only
//! unforgeability), but the reproduction's per-message budget is
//! dominated by exactly that box. This experiment opens the suite axis:
//! for each [`CryptoSuite`] it measures seal and verify+window+decrypt
//! wall time per packet — packet-at-a-time and through the batched
//! drain whose ICV verification is amortized per SA
//! ([`reset_crypto::CipherSuite::verify_batch`]) — plus the wire
//! overhead the suite's ICV size costs.

use std::time::Instant;

use reset_ipsec::{CryptoSuite, Inbound, Outbound, SaKeys, SecurityAssociation};
use reset_stable::MemStable;

use crate::report::Table;

/// Measurements for one suite.
#[derive(Debug, Clone)]
pub struct SuiteRecord {
    /// The measured suite.
    pub suite: CryptoSuite,
    /// Suite name as reported by its transform.
    pub name: &'static str,
    /// Header + IV + ICV bytes added to every packet.
    pub overhead_bytes: usize,
    /// Seal cost per packet (ns).
    pub protect_ns: f64,
    /// Packet-at-a-time receive cost per packet (ns).
    pub process_ns: f64,
    /// Batched-drain receive cost per packet (ns).
    pub batch_ns: f64,
}

/// Runs one suite over `packets` packets of `payload_len` bytes.
///
/// # Panics
///
/// Panics if any packet fails to deliver — the sweep measures the happy
/// path and every suite must sustain it.
pub fn run(suite: CryptoSuite, packets: usize, payload_len: usize) -> SuiteRecord {
    assert!(packets > 0);
    let keys = SaKeys::derive(b"suite-sweep", b"d");
    let sa = SecurityAssociation::new(0x5EED, keys).with_suite(suite);
    let name = sa.cipher().name();
    let payload = vec![0xAB; payload_len];

    let mut tx = Outbound::new(sa.clone(), MemStable::new(), 1 << 40);
    let t0 = Instant::now();
    let wires: Vec<_> = (0..packets)
        .map(|_| tx.protect(&payload).unwrap().expect("endpoint up"))
        .collect();
    let protect_ns = t0.elapsed().as_nanos() as f64 / packets as f64;
    let overhead_bytes = wires[0].len() - payload_len;

    let mut rx = Inbound::new(sa.clone(), MemStable::new(), 1 << 40, 1024);
    let t0 = Instant::now();
    for w in &wires {
        assert!(rx.process_bytes(w).unwrap().is_delivered());
    }
    let process_ns = t0.elapsed().as_nanos() as f64 / packets as f64;

    let mut rx_batch = Inbound::new(sa, MemStable::new(), 1 << 40, 1024);
    let t0 = Instant::now();
    let results = rx_batch.process_batch(&wires).unwrap();
    let batch_ns = t0.elapsed().as_nanos() as f64 / packets as f64;
    assert!(results.iter().all(|r| r.is_delivered()));

    SuiteRecord {
        suite,
        name,
        overhead_bytes,
        protect_ns,
        process_ns,
        batch_ns,
    }
}

/// Renders the suite sweep for all negotiable suites.
pub fn table(packets: usize, payload_len: usize) -> Table {
    let mut t = Table::new(
        format!("suites: cipher-suite sweep over the ESP datapath ({payload_len}B payloads)"),
        &[
            "suite",
            "wire overhead",
            "protect",
            "process",
            "process_batch",
        ],
    );
    for &suite in CryptoSuite::ALL {
        let r = run(suite, packets, payload_len);
        t.row_owned(vec![
            r.name.to_string(),
            format!("{}B", r.overhead_bytes),
            format!("{:.0}ns", r.protect_ns),
            format!("{:.0}ns", r.process_ns),
            format!("{:.0}ns", r.batch_ns),
        ]);
    }
    t.note(format!(
        "{packets} packets per cell, single SA, window 1024, ESN on"
    ));
    t.note("process_batch verifies ICVs through CipherSuite::verify_batch (amortized per SA run)");
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_suite_sustains_traffic() {
        for &suite in CryptoSuite::ALL {
            let r = run(suite, 200, 64);
            assert!(r.protect_ns > 0.0, "{:?}", suite);
            assert!(r.process_ns > 0.0, "{:?}", suite);
        }
    }

    #[test]
    fn overheads_reflect_icv_sizes() {
        let legacy = run(CryptoSuite::HmacSha256WithKeystream, 50, 64);
        let aead = run(CryptoSuite::ChaCha20Poly1305, 50, 64);
        // 16-byte Poly1305 tag vs 12-byte truncated HMAC.
        assert_eq!(aead.overhead_bytes, legacy.overhead_bytes + 4);
    }

    #[test]
    fn table_has_one_row_per_suite() {
        let t = table(100, 64);
        assert_eq!(t.len(), CryptoSuite::ALL.len());
        // Default preference order: the AEAD leads with its 16-byte tag.
        assert_eq!(t.cell(0, 0), Some("chacha20-poly1305"));
        assert_eq!(t.cell(0, 1), Some("28B"));
        assert_eq!(t.cell(1, 0), Some("hmac-sha256-keystream"));
        assert_eq!(t.cell(1, 1), Some("24B"));
    }
}

//! Fig 2 — analysis of a reset occurring at process `q` (the receiver).
//!
//! Mirror of Fig 1: sweeping the reset offset across the receiver's save
//! cycle, measure the FETCH staleness gap, verify the leaped right edge
//! rejects **every** replay of pre-reset traffic, and count the fresh
//! messages sacrificed by the leap (condition (ii): ≤ `2Kq`).

use anti_replay::{RxOutcome, SeqNum, SfReceiver};
use reset_stable::{MemStable, SlotId};

use crate::report::Table;

/// One measured point of the receiver sweep.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Fig2Point {
    /// Right-edge advances after the last SAVE was issued, at reset time.
    pub offset: u64,
    /// Whether the in-flight SAVE completed before the reset.
    pub save_completed: bool,
    /// Window right edge when the reset struck.
    pub last_received: u64,
    /// Value FETCH recovered.
    pub fetched: u64,
    /// Right edge after the `2Kq` leap.
    pub resumed: u64,
    /// `last_received − fetched`.
    pub gap: u64,
    /// Replayed pre-reset messages that were *accepted* (must be 0).
    pub replays_accepted: u64,
    /// Fresh messages sacrificed before traffic resumed (≤ `2Kq`).
    pub fresh_sacrificed: u64,
}

/// Runs one receiver reset at offset `t` into the save cycle.
pub fn run_one(k: u64, t: u64, completed: bool) -> Fig2Point {
    assert!(t < k, "offset must fall inside one save cycle");
    let w = 4 * k + 16; // wide enough that staleness, not w, dominates
    let mut q = SfReceiver::new(MemStable::new(), SlotId::receiver(1), k, w);
    // Cycle 1: receive 1..=k in order; SAVE(k) issues and completes.
    for s in 1..=k {
        q.receive(SeqNum::new(s)).expect("mem store");
    }
    q.save_completed().expect("mem store");
    // Cycle 2: receive up to 2k; SAVE(2k) issues.
    for s in k + 1..=2 * k {
        q.receive(SeqNum::new(s)).expect("mem store");
    }
    if completed {
        q.save_completed().expect("mem store");
    }
    // `t` further advances, then the reset.
    for s in 2 * k + 1..=2 * k + t {
        q.receive(SeqNum::new(s)).expect("mem store");
    }
    let last_received = q.right_edge().value();
    q.reset();
    let fetched = q.store().iter().next().map(|(_, v)| v).unwrap_or(0);
    let resumed = q.wake_up().expect("mem store").value();

    // The §3 adversary: replay the entire pre-reset history in order.
    let mut replays_accepted = 0;
    for s in 1..=last_received {
        if q.receive(SeqNum::new(s)).expect("mem store").is_delivered() {
            replays_accepted += 1;
        }
    }
    // The sender (which did not reset) continues from last_received + 1;
    // count sacrificed fresh messages until delivery resumes.
    let mut fresh_sacrificed = 0;
    for s in last_received + 1..=resumed + 1 {
        match q.receive(SeqNum::new(s)).expect("mem store") {
            RxOutcome::Delivered => break,
            _ => fresh_sacrificed += 1,
        }
    }
    Fig2Point {
        offset: t,
        save_completed: completed,
        last_received,
        fetched,
        resumed,
        gap: last_received.saturating_sub(fetched),
        replays_accepted,
        fresh_sacrificed,
    }
}

/// Sweeps reset offsets for both Fig 2 cases.
pub fn sweep(k: u64, samples: u64) -> Vec<Fig2Point> {
    let mut points = Vec::new();
    for completed in [false, true] {
        for i in 0..samples {
            let t = i * k.max(1) / samples.max(1);
            points.push(run_one(k, t, completed));
        }
        points.push(run_one(k, k - 1, completed));
    }
    points
}

/// Renders the Fig 2 table, asserting the paper's bounds along the way.
///
/// # Panics
///
/// Panics if any point accepts a replay, exceeds the gap bound, or
/// sacrifices more than `2Kq` fresh messages.
pub fn table(k: u64) -> Table {
    let mut t = Table::new(
        format!("fig2: reset at receiver q (Kq = {k})"),
        &[
            "case",
            "offset",
            "last_recv",
            "fetched",
            "resumed",
            "gap",
            "gap_bound",
            "replays_accepted",
            "fresh_sacrificed",
            "sacrifice_bound",
        ],
    );
    for pt in sweep(k, 8) {
        let case = if pt.save_completed {
            "after-SAVE"
        } else {
            "during-SAVE"
        };
        let gap_bound = if pt.save_completed { k } else { 2 * k };
        assert!(pt.gap <= gap_bound, "gap {} > {gap_bound}", pt.gap);
        assert_eq!(pt.replays_accepted, 0, "replay accepted at {pt:?}");
        assert!(
            pt.fresh_sacrificed <= 2 * k,
            "sacrificed {} > 2K",
            pt.fresh_sacrificed
        );
        t.row_owned(vec![
            case.to_string(),
            pt.offset.to_string(),
            pt.last_received.to_string(),
            pt.fetched.to_string(),
            pt.resumed.to_string(),
            pt.gap.to_string(),
            gap_bound.to_string(),
            pt.replays_accepted.to_string(),
            pt.fresh_sacrificed.to_string(),
            (2 * k).to_string(),
        ]);
    }
    t.note("paper: gap ≤ 2Kq during SAVE, ≤ Kq after; 0 replays accepted; ≤ 2Kq fresh discarded");
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_replay_ever_accepted() {
        for k in [5u64, 10, 25] {
            for t in [0, k / 2, k - 1] {
                for completed in [false, true] {
                    let pt = run_one(k, t, completed);
                    assert_eq!(pt.replays_accepted, 0, "{pt:?}");
                }
            }
        }
    }

    #[test]
    fn during_save_gap_matches_paper() {
        // Fetched = r − K where r = 2k was being saved; reset at r + t.
        for k in [5u64, 10, 25] {
            for t in [0, k - 1] {
                let pt = run_one(k, t, false);
                assert_eq!(pt.gap, k + t);
                assert!(pt.gap <= 2 * k);
            }
        }
    }

    #[test]
    fn after_save_gap_matches_paper() {
        for k in [5u64, 10, 25] {
            for u in [0, k - 1] {
                let pt = run_one(k, u, true);
                assert_eq!(pt.gap, u);
                assert!(pt.gap <= k);
            }
        }
    }

    #[test]
    fn sacrifice_bounded_and_worst_case_reached() {
        let k = 25;
        let pts = sweep(k, 25);
        let max = pts.iter().map(|p| p.fresh_sacrificed).max().unwrap();
        assert!(max <= 2 * k, "condition (ii)");
        assert_eq!(max, 2 * k, "worst case (reset right after SAVE done, t=0)");
    }

    #[test]
    fn table_renders() {
        let t = table(10);
        assert!(t.render().contains("fig2"));
        assert!(t.len() >= 18);
    }
}

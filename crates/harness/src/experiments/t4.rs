//! t4 — §4's SAVE-interval calibration.
//!
//! The paper: *"on a Pentium III 730-MHz machine running Linux 2.4.18, a
//! write-to-file operation takes 100 µs and sending a 1000-byte message
//! takes 4 µs on average. In this case, we can set the interval between
//! two SAVEs to be at least 25."* The rule: `K ≥ ⌈t_save / t_msg⌉`, the
//! maximum number of messages that can be sent during one SAVE.
//!
//! The table reproduces that arithmetic for a range of storage devices
//! and also *measures* a real write-to-file SAVE on the current host via
//! [`FileStable`], deriving the K this machine would need.

use std::time::Instant;

use reset_stable::{Durability, FileStable, SlotId, StableStore};

use crate::report::Table;

/// Minimum save interval for a device: `⌈t_save / t_msg⌉`, at least 1.
pub fn k_min(t_save_ns: u64, t_msg_ns: u64) -> u64 {
    assert!(t_msg_ns > 0, "message time must be positive");
    t_save_ns.div_ceil(t_msg_ns).max(1)
}

/// Measures the median latency of `n` real file-backed SAVEs in a temp
/// directory. Returns nanoseconds.
pub fn measure_file_save_ns(n: usize) -> u64 {
    let dir = std::env::temp_dir().join(format!(
        "ipsec-reset-calibrate-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let mut store = FileStable::open(&dir, Durability::ProcessCrash).expect("temp dir writable");
    let slot = SlotId::sender(0xCAFE);
    let mut samples: Vec<u64> = Vec::with_capacity(n);
    // Warm-up write to create the file and fault in paths.
    store.store(slot, 0).expect("store");
    for i in 0..n {
        let t0 = Instant::now();
        store.store(slot, i as u64).expect("store");
        samples.push(t0.elapsed().as_nanos() as u64);
    }
    let _ = std::fs::remove_dir_all(&dir);
    samples.sort_unstable();
    samples[samples.len() / 2]
}

/// Renders the calibration table.
pub fn table() -> Table {
    let t_msg_ns = 4_000; // the paper's 4 µs per 1000-byte message
    let mut t = Table::new(
        "t4: SAVE interval calibration (K >= ceil(t_save / t_msg), t_msg = 4us)",
        &["device", "t_save", "K_min", "matches_paper"],
    );
    let devices: &[(&str, u64)] = &[
        ("ramdisk", 10_000),
        ("paper's disk (PIII/Linux 2.4)", 100_000),
        ("modern NVMe", 20_000),
        ("SATA SSD", 60_000),
        ("spinning HDD", 5_000_000),
        ("NFS mount", 20_000_000),
    ];
    for &(name, t_save) in devices {
        let k = k_min(t_save, t_msg_ns);
        let is_paper = t_save == 100_000;
        if is_paper {
            assert_eq!(k, 25, "the paper's example must yield K = 25");
        }
        t.row_owned(vec![
            name.to_string(),
            format!("{}us", t_save / 1_000),
            k.to_string(),
            if is_paper {
                "K=25 ✓".to_string()
            } else {
                "-".to_string()
            },
        ]);
    }
    // Measured on this host.
    let measured = measure_file_save_ns(200);
    let k_here = k_min(measured, t_msg_ns);
    t.row_owned(vec![
        "THIS HOST (measured, 200 writes)".to_string(),
        format!("{:.1}us", measured as f64 / 1_000.0),
        k_here.to_string(),
        "-".to_string(),
    ]);
    t.note("paper: 100us write / 4us msg => save every >= 25 messages");
    t.note("interval counted in messages, not time: idle periods must not trigger wasteful SAVEs");
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_example_is_25() {
        assert_eq!(k_min(100_000, 4_000), 25);
    }

    #[test]
    fn rounding_up() {
        assert_eq!(k_min(100_001, 4_000), 26);
        assert_eq!(k_min(3_999, 4_000), 1);
        assert_eq!(k_min(0, 4_000), 1, "K is at least 1");
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_msg_time_panics() {
        let _ = k_min(1, 0);
    }

    #[test]
    fn real_measurement_is_positive() {
        let ns = measure_file_save_ns(20);
        assert!(ns > 0);
        assert!(ns < 1_000_000_000, "a file write should not take 1s: {ns}");
    }

    #[test]
    fn table_contains_paper_row() {
        let t = table();
        let s = t.render();
        assert!(s.contains("paper's disk"));
        assert!(s.contains("THIS HOST"));
    }
}

//! t7 — §6's prolonged-reset recovery, end to end.
//!
//! Timeline reproduced: bidirectional traffic → B is reset and stays
//! down → A's dead-peer detection probes, then presumes B down and keeps
//! the SA pair alive (grace) → B wakes up, FETCHes, leaps, and sends the
//! secured "I am up, my counter is now X" notify → A validates it
//! against the right edge of its anti-replay window and resumes → the
//! adversary replays the notify and every pre-reset packet: all rejected.

use reset_ipsec::{DpdAction, DpdConfig, IpsecPeer, PeerEvent, SaKeys, SecurityAssociation};
use reset_stable::MemStable;

use crate::report::Table;

/// Metrics from one full §6 run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct T7Outcome {
    /// Probes A sent before presuming B down.
    pub probes_sent: u32,
    /// Virtual time (ns) at which A presumed B down.
    pub presumed_down_at: u64,
    /// The leaped counter B announced.
    pub announced_seq: u64,
    /// Did A accept the recovery notify?
    pub notify_accepted: bool,
    /// Was the replayed notify rejected?
    pub replayed_notify_rejected: bool,
    /// Pre-reset packets replayed and rejected.
    pub replayed_data_rejected: u64,
    /// Fresh A→B messages sacrificed after recovery (≤ 2K).
    pub fresh_sacrificed: u64,
    /// Save interval used.
    pub k: u64,
}

/// Runs the §6 scenario with save interval `k`.
pub fn run(k: u64) -> T7Outcome {
    let keys_ab = SaKeys::derive(b"ikm", b"a->b");
    let keys_ba = SaKeys::derive(b"ikm", b"b->a");
    let dpd = DpdConfig {
        idle_timeout_ns: 1_000_000,
        probe_interval_ns: 500_000,
        max_probes: 3,
        grace_period_ns: 60_000_000,
    };
    let mut a = IpsecPeer::new(
        "A",
        SecurityAssociation::new(0xA2B, keys_ab.clone()),
        SecurityAssociation::new(0xB2A, keys_ba.clone()),
        MemStable::new(),
        MemStable::new(),
        k,
        64,
        dpd,
    );
    let mut b = IpsecPeer::new(
        "B",
        SecurityAssociation::new(0xB2A, keys_ba),
        SecurityAssociation::new(0xA2B, keys_ab),
        MemStable::new(),
        MemStable::new(),
        k,
        64,
        dpd,
    );

    // Phase 1: bidirectional traffic; record B→A for the replay attack.
    let mut recorded_b2a = Vec::new();
    let mut now = 0u64;
    for i in 0..40u64 {
        now = i * 10_000;
        let w = a
            .send_data(format!("a{i}").as_bytes())
            .expect("up")
            .expect("wire");
        b.handle_wire(&w, now).expect("deliver");
        let w = b
            .send_data(format!("b{i}").as_bytes())
            .expect("up")
            .expect("wire");
        recorded_b2a.push(w.clone());
        a.handle_wire(&w, now).expect("deliver");
    }
    // Make B's counters durable, then crash B.
    b.save_completed_out().expect("store");
    b.save_completed_in().expect("store");
    b.reset();

    // Phase 2: A's DPD notices the silence.
    let mut probes_sent = 0u32;
    let presumed_down_at;
    loop {
        now += 250_000;
        match a.dpd_mut().poll(now) {
            DpdAction::SendProbe => {
                probes_sent += 1;
                if let Some(probe) = a.make_probe().expect("up") {
                    // B is down; the probe evaporates.
                    let _ = b.handle_wire(&probe, now);
                }
            }
            DpdAction::PeerPresumedDown => {
                presumed_down_at = now;
                break;
            }
            DpdAction::Idle => {}
            DpdAction::TearDown => panic!("grace must not expire yet"),
        }
    }
    assert!(a.dpd().in_grace(), "SA pair kept alive");

    // Phase 3: B wakes up within the grace period and announces itself.
    now += 5_000_000;
    let notify = b.recover().expect("wake");
    let announced_seq;
    let notify_accepted = match a.handle_wire(&notify, now).expect("authenticated") {
        PeerEvent::PeerRecovered { seq } => {
            announced_seq = seq.value();
            true
        }
        _ => {
            announced_seq = 0;
            false
        }
    };
    assert!(!a.dpd().in_grace(), "recovery revives the peer");

    // Phase 4: the adversary replays the notify and the old traffic.
    let replayed_notify_rejected =
        a.handle_wire(&notify, now + 1_000).expect("authenticated") == PeerEvent::Rejected;
    let mut replayed_data_rejected = 0u64;
    for w in &recorded_b2a {
        if a.handle_wire(w, now + 2_000).expect("authenticated") == PeerEvent::Rejected {
            replayed_data_rejected += 1;
        }
    }

    // Phase 5: A→B traffic resumes, sacrificing at most 2K messages
    // (B's inbound window leaped ahead of A's live counter).
    let mut fresh_sacrificed = 0u64;
    loop {
        let w = a.send_data(b"resume").expect("up").expect("wire");
        match b.handle_wire(&w, now + 3_000).expect("authenticated") {
            PeerEvent::Data(_) => break,
            PeerEvent::Rejected => fresh_sacrificed += 1,
            other => panic!("{other:?}"),
        }
        assert!(fresh_sacrificed <= 2 * k + 1, "sacrifice exceeded bound");
    }

    T7Outcome {
        probes_sent,
        presumed_down_at,
        announced_seq,
        notify_accepted,
        replayed_notify_rejected,
        replayed_data_rejected,
        fresh_sacrificed,
        k,
    }
}

/// Renders the t7 table over several save intervals.
///
/// # Panics
///
/// Panics if any §6 property fails.
pub fn table(ks: &[u64]) -> Table {
    let mut t = Table::new(
        "t7: prolonged reset — DPD grace + secured recovery notify (§6)",
        &[
            "K",
            "probes",
            "announced_seq",
            "notify_accepted",
            "replayed_notify_rejected",
            "old_replays_rejected",
            "fresh_sacrificed",
            "bound(2K)",
        ],
    );
    for &k in ks {
        let o = run(k);
        assert!(o.notify_accepted, "recovery notify must be accepted");
        assert!(o.replayed_notify_rejected, "replayed notify must bounce");
        assert_eq!(o.replayed_data_rejected, 40, "all old traffic rejected");
        assert!(o.fresh_sacrificed <= 2 * k);
        t.row_owned(vec![
            k.to_string(),
            o.probes_sent.to_string(),
            o.announced_seq.to_string(),
            o.notify_accepted.to_string(),
            o.replayed_notify_rejected.to_string(),
            o.replayed_data_rejected.to_string(),
            o.fresh_sacrificed.to_string(),
            (2 * k).to_string(),
        ]);
    }
    t.note("the notify is validated against the window right edge, exactly as §6 prescribes");
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_scenario_properties() {
        let o = run(10);
        assert_eq!(o.probes_sent, 3);
        assert!(o.notify_accepted);
        assert!(o.replayed_notify_rejected);
        assert_eq!(o.replayed_data_rejected, 40);
        assert!(o.fresh_sacrificed <= 20);
        assert!(o.announced_seq > 40, "leaped beyond pre-reset counter");
    }

    #[test]
    fn table_over_ks() {
        let t = table(&[5, 25]);
        assert_eq!(t.len(), 2);
    }
}

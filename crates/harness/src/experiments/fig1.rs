//! Fig 1 — analysis of a reset occurring at process `p` (the sender).
//!
//! The paper's figure analyses two cases: the reset lands while `SAVE(s)`
//! is still executing (FETCH then returns `s − Kp`), or after it finished
//! (FETCH returns `s`). Sweeping the reset offset across the save cycle,
//! we measure for each offset:
//!
//! * the gap between the last-used sequence number and the fetched one
//!   (the paper bounds it by `2Kp` in case 1 and `Kp` in case 2),
//! * the number of sequence numbers wasted by the `2Kp` leap
//!   (condition (i): ≤ `2Kp`),
//! * that the resumed counter is strictly fresh.
//!
//! Instead of re-deriving the paper's arithmetic, the experiment runs the
//! real [`SfSender`] against a real store and *measures*.

use anti_replay::SfSender;
use reset_stable::{MemStable, SlotId};

use crate::report::Table;

/// One measured point of the sweep.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Fig1Point {
    /// Messages sent after the last SAVE was issued, when the reset hit.
    pub offset: u64,
    /// Whether the in-flight SAVE had completed before the reset.
    pub save_completed: bool,
    /// Last sequence number actually used before the reset.
    pub last_used: u64,
    /// Value FETCH recovered.
    pub fetched: u64,
    /// Counter after the `2Kp` leap.
    pub resumed: u64,
    /// `last_used − fetched` (the paper's "gap").
    pub gap: u64,
    /// Sequence numbers wasted (`resumed − (last_used + 1)`).
    pub lost: u64,
}

/// Runs the sweep for save interval `k`, sampling `samples` offsets per
/// case.
pub fn sweep(k: u64, samples: u64) -> Vec<Fig1Point> {
    let mut points = Vec::new();
    for case_completed in [false, true] {
        for i in 0..samples {
            let t = i * k.max(1) / samples.max(1); // offsets spread over [0, k)
            points.push(run_one(k, t, case_completed));
        }
        // Always include the worst offset.
        points.push(run_one(k, k - 1, case_completed));
    }
    points
}

/// Runs one reset at offset `t` into the save cycle.
///
/// The sender first completes a full save cycle (so a durable value
/// exists), then issues its next SAVE; `completed` selects the Fig 1
/// case. It then sends `t` further messages and is reset.
pub fn run_one(k: u64, t: u64, completed: bool) -> Fig1Point {
    assert!(t < k, "offset must fall inside one save cycle");
    let mut p = SfSender::new(MemStable::new(), SlotId::sender(1), k);
    // Cycle 1: reach the first SAVE (issued after sending seq k, value
    // k+1) and let it complete — the durable baseline.
    for _ in 0..k {
        p.send_next().expect("mem store");
    }
    p.save_completed().expect("mem store");
    // Cycle 2: reach the second SAVE (value 2k+1).
    for _ in 0..k {
        p.send_next().expect("mem store");
    }
    if completed {
        p.save_completed().expect("mem store");
    }
    // `t` more sends, then the reset.
    for _ in 0..t {
        p.send_next().expect("mem store");
    }
    let last_used = p.next_seq().value() - 1;
    p.reset();
    let fetched = p.store().iter().next().map(|(_, v)| v).unwrap_or(0);
    let resumed = p.wake_up().expect("mem store").value();
    Fig1Point {
        offset: t,
        save_completed: completed,
        last_used,
        fetched,
        resumed,
        // Saturating: right after a completed SAVE the stored value is the
        // *next-to-send* counter, one ahead of the last used number.
        gap: last_used.saturating_sub(fetched),
        lost: resumed - (last_used + 1),
    }
}

/// Renders the sweep as the Fig 1 table and checks the paper's bounds.
///
/// # Panics
///
/// Panics if any measured point violates the paper's analysis — the
/// experiment doubles as an assertion.
pub fn table(k: u64) -> Table {
    let mut t = Table::new(
        format!("fig1: reset at sender p (Kp = {k})"),
        &[
            "case",
            "offset",
            "last_used",
            "fetched",
            "resumed",
            "gap",
            "gap_bound",
            "lost_seqs",
            "lost_bound",
            "fresh",
        ],
    );
    for pt in sweep(k, 8) {
        let case = if pt.save_completed {
            "after-SAVE"
        } else {
            "during-SAVE"
        };
        let gap_bound = if pt.save_completed { k } else { 2 * k };
        let fresh = pt.resumed > pt.last_used;
        assert!(pt.gap <= gap_bound, "gap {} > bound {gap_bound}", pt.gap);
        assert!(pt.lost <= 2 * k, "lost {} > 2K", pt.lost);
        assert!(
            fresh,
            "resumed {} not fresh vs {}",
            pt.resumed, pt.last_used
        );
        t.row_owned(vec![
            case.to_string(),
            pt.offset.to_string(),
            pt.last_used.to_string(),
            pt.fetched.to_string(),
            pt.resumed.to_string(),
            pt.gap.to_string(),
            gap_bound.to_string(),
            pt.lost.to_string(),
            (2 * k).to_string(),
            fresh.to_string(),
        ]);
    }
    t.note("paper: gap ≤ 2Kp during SAVE, ≤ Kp after; lost ≤ 2Kp; resumed always fresh");
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn during_save_gap_is_k_plus_t_minus_1() {
        // Paper: reset at s+t with SAVE(s) in flight → fetched = s − K,
        // gap = K + t. The stored value is the next-to-send counter, so
        // the last *used* number at offset t is s − 1 + t, giving a
        // measured gap of K + t − 1 — one inside the paper's bound.
        for k in [5u64, 10, 25] {
            for t in [0, k / 2, k - 1] {
                let pt = run_one(k, t, false);
                assert_eq!(pt.gap, (k + t).saturating_sub(1), "k={k} t={t}");
                assert!(pt.gap <= 2 * k);
            }
        }
    }

    #[test]
    fn after_save_gap_is_t_minus_1() {
        // Paper: reset at s+u with SAVE(s) durable → gap = u (measured:
        // u − 1 for the same next-to-send reason).
        for k in [5u64, 10, 25] {
            for u in [0, k / 2, k - 1] {
                let pt = run_one(k, u, true);
                assert_eq!(pt.gap, u.saturating_sub(1), "k={k} u={u}");
                assert!(pt.gap <= k);
            }
        }
    }

    #[test]
    fn worst_case_loss_is_exactly_2k() {
        // Reset immediately after a SAVE is issued (t = 0, in flight):
        // lost = resumed − next_unused = (fetched+2K) − (last+1) = 2K−1−...
        // measure the maximum over the sweep instead of re-deriving.
        let k = 25;
        let max_lost = sweep(k, 25).iter().map(|p| p.lost).max().unwrap();
        assert!(max_lost <= 2 * k);
        assert!(max_lost >= 2 * k - 1, "sweep should reach the worst case");
    }

    #[test]
    fn freshness_always_holds() {
        for pt in sweep(10, 10) {
            assert!(pt.resumed > pt.last_used, "{pt:?}");
        }
    }

    #[test]
    fn table_renders_and_asserts() {
        let t = table(25);
        assert!(t.len() >= 18);
        assert!(t.render().contains("during-SAVE"));
    }
}

//! t3 — the §3 problems: the baseline's failures are *unbounded*.
//!
//! Three sub-experiments, each run for both protocols so the contrast is
//! in the table:
//!
//! * **(a) receiver reset** — accepted replays grow linearly with the
//!   pre-reset traffic volume `x` under the baseline; stay 0 under
//!   SAVE/FETCH.
//! * **(b) sender reset** — discarded fresh messages grow without bound
//!   under the baseline; stay 0 under SAVE/FETCH.
//! * **(c) both reset + high-sequence replay** — the adversary replays
//!   `msg(z)` and blackholes the baseline; SAVE/FETCH rejects the replay.

use reset_sim::{SimDuration, SimTime};

use crate::report::Table;
use crate::scenario::{run_scenario, AdversaryPlan, Protocol, ScenarioConfig};

/// Message rate used to convert "x messages" into a reset instant.
const MSG_US: u64 = 4;

fn cfg_base(seed: u64, protocol: Protocol, total_msgs: u64) -> ScenarioConfig {
    ScenarioConfig {
        seed,
        protocol,
        duration: SimDuration::from_micros(total_msgs * MSG_US),
        downtime: SimDuration::from_micros(100),
        ..ScenarioConfig::default()
    }
}

/// (a) replayed-messages-accepted vs pre-reset traffic `x`.
pub fn table_a(xs: &[u64], seed: u64) -> Table {
    let mut t = Table::new(
        "t3a: receiver reset, whole-history replay — accepted replays vs x",
        &[
            "x (pre-reset msgs)",
            "baseline accepted",
            "savefetch accepted",
        ],
    );
    for &x in xs {
        let reset_at = SimTime::from_micros(x * MSG_US);
        let run = |protocol| {
            let cfg = ScenarioConfig {
                receiver_resets: vec![reset_at],
                adversary: AdversaryPlan::ReplayAllOnReceiverRestart,
                ..cfg_base(seed, protocol, 2 * x)
            };
            run_scenario(cfg).monitor.replays_accepted
        };
        let base = run(Protocol::Baseline);
        let sf = run(Protocol::SaveFetch);
        assert_eq!(sf, 0, "SAVE/FETCH accepted a replay at x={x}");
        assert!(
            base as f64 >= 0.8 * x as f64,
            "baseline should accept ~x replays: {base} vs x={x}"
        );
        t.row_owned(vec![x.to_string(), base.to_string(), sf.to_string()]);
    }
    t.note("baseline acceptance grows linearly with x (unbounded); SAVE/FETCH stays 0");
    t
}

/// (b) discarded-fresh vs post-reset traffic under a sender reset.
pub fn table_b(ys: &[u64], seed: u64) -> Table {
    let mut t = Table::new(
        "t3b: sender reset — discarded fresh messages vs y",
        &[
            "y (post-reset msgs)",
            "baseline discarded",
            "savefetch discarded",
        ],
    );
    for &y in ys {
        // Pre-reset traffic: y messages too, so the window edge is high.
        let reset_at = SimTime::from_micros(y * MSG_US);
        let run = |protocol| {
            let cfg = ScenarioConfig {
                sender_resets: vec![reset_at],
                ..cfg_base(seed, protocol, 2 * y)
            };
            run_scenario(cfg).monitor.fresh_discarded
        };
        let base = run(Protocol::Baseline);
        let sf = run(Protocol::SaveFetch);
        assert_eq!(sf, 0, "SAVE/FETCH discarded fresh traffic at y={y}");
        assert!(
            base as f64 >= 0.8 * y as f64,
            "baseline should discard ~y fresh: {base} vs y={y}"
        );
        t.row_owned(vec![y.to_string(), base.to_string(), sf.to_string()]);
    }
    t.note("baseline discards every restarted-counter message (unbounded); SAVE/FETCH loses none");
    t
}

/// (c) the both-reset blackhole: replay of the highest recorded sequence
/// number `z` after both peers restart.
pub fn table_c(zs: &[u64], seed: u64) -> Table {
    let mut t = Table::new(
        "t3c: both reset + replay of msg(z) — blackholed fresh messages",
        &[
            "z (highest recorded)",
            "baseline blackholed",
            "savefetch blackholed",
        ],
    );
    for &z in zs {
        let reset_at = SimTime::from_micros(z * MSG_US);
        let run = |protocol| {
            let cfg = ScenarioConfig {
                sender_resets: vec![reset_at],
                receiver_resets: vec![reset_at],
                adversary: AdversaryPlan::ReplayLatestOnRestart,
                ..cfg_base(seed, protocol, 2 * z)
            };
            let out = run_scenario(cfg);
            out.monitor.fresh_discarded
        };
        let base = run(Protocol::Baseline);
        let sf = run(Protocol::SaveFetch);
        // The blackhole swallows every restarted sequence number left of
        // the shifted window: ~ z − w messages (the last w land inside
        // the window and are even accepted as in-window "fresh", which is
        // itself a replay-acceptance violation counted elsewhere).
        let expected = z.saturating_sub(64);
        assert!(
            base as f64 >= 0.8 * expected as f64,
            "baseline blackhole should swallow ~z-w: {base} vs z={z}"
        );
        assert!(
            sf <= 4 * 25, // ≤ 2Kp + 2Kq with the default K = 25
            "SAVE/FETCH fresh loss must stay bounded: {sf}"
        );
        t.row_owned(vec![z.to_string(), base.to_string(), sf.to_string()]);
    }
    t.note("baseline: window jumps to z, every fresh msg < z discarded; SAVE/FETCH: bounded by 2Kp+2Kq");
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn t3a_baseline_unbounded_savefetch_zero() {
        let t = table_a(&[200, 800], 1);
        assert_eq!(t.len(), 2);
        // Acceptance grows with x.
        let a0: u64 = t.cell(0, 1).unwrap().parse().unwrap();
        let a1: u64 = t.cell(1, 1).unwrap().parse().unwrap();
        assert!(a1 > 2 * a0, "growth should be ~linear: {a0} -> {a1}");
    }

    #[test]
    fn t3b_baseline_discards_growing() {
        let t = table_b(&[200, 800], 1);
        let d0: u64 = t.cell(0, 1).unwrap().parse().unwrap();
        let d1: u64 = t.cell(1, 1).unwrap().parse().unwrap();
        assert!(d1 > 2 * d0);
    }

    #[test]
    fn t3c_blackhole_contrast() {
        let t = table_c(&[300], 1);
        let base: u64 = t.cell(0, 1).unwrap().parse().unwrap();
        let sf: u64 = t.cell(0, 2).unwrap().parse().unwrap();
        assert!(base > sf, "baseline {base} must dwarf savefetch {sf}");
    }
}

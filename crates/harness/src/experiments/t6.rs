//! t6 — the §2 conditions: w-Delivery and Discrimination.
//!
//! Without resets, the anti-replay window promises:
//!
//! * **w-Delivery** — every message neither lost nor reordered by degree
//!   ≥ w is delivered (at least once);
//! * **Discrimination** — at most one copy of every message is delivered.
//!
//! The experiment drives the window through channels with loss,
//! duplication and jitter, measures the actual reorder degree
//! (per the §2 definition), and checks both conditions exactly — also
//! demonstrating the caveat the paper cites from \[2\]: severe reorder
//! (degree ≥ w) may discard good messages.

use std::collections::HashSet;

use anti_replay::{BaselineReceiver, SeqNum};
use reset_channel::{max_reorder_degree, Link, LinkConfig};
use reset_sim::{DetRng, SimDuration, SimTime};

use crate::report::Table;

/// Result of one channel configuration run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct T6Row {
    /// Configuration label.
    pub label: String,
    /// Window size.
    pub w: u64,
    /// Messages sent.
    pub sent: u64,
    /// Messages the channel delivered at least one copy of.
    pub arrived: u64,
    /// Distinct messages delivered by the window.
    pub delivered: u64,
    /// Copies rejected as duplicates.
    pub dup_rejected: u64,
    /// Copies rejected as stale (reorder ≥ w casualties).
    pub stale_rejected: u64,
    /// Maximum reorder degree observed.
    pub max_reorder: u64,
    /// Messages entitled to delivery (arrived with reorder < w) that were
    /// delivered — must equal `entitled`.
    pub entitled: u64,
    /// Of the entitled, how many were delivered.
    pub entitled_delivered: u64,
    /// Double deliveries (must be 0 — Discrimination).
    pub double_delivered: u64,
}

/// Runs one configuration: `n` messages through `link_cfg` into a window
/// of size `w`.
pub fn run_one(label: &str, link_cfg: LinkConfig, w: u64, n: u64, seed: u64) -> T6Row {
    let mut rng = DetRng::new(seed);
    let mut link = Link::new(link_cfg, rng.fork());
    // Collect all deliveries as (time, event-id, seq) and sort by time to
    // obtain the receive order.
    let mut deliveries: Vec<(SimTime, u64, u64)> = Vec::new();
    let mut eid = 0u64;
    for s in 1..=n {
        let now = SimTime::from_micros(s * 4);
        for (at, msg) in link.transmit(now, s) {
            deliveries.push((at, eid, msg));
            eid += 1;
        }
    }
    deliveries.sort();
    let receive_order: Vec<u64> = deliveries.iter().map(|&(_, _, s)| s).collect();

    // Per-message reorder degree (paper §2 definition), computed on the
    // first arrival of each message.
    let degrees = reset_channel::reorder_degrees(&receive_order);
    let mut first_degree: std::collections::HashMap<u64, u64> = std::collections::HashMap::new();
    for (i, &s) in receive_order.iter().enumerate() {
        first_degree.entry(s).or_insert(degrees[i]);
    }

    let mut q = BaselineReceiver::new(w);
    let mut delivered_set: HashSet<u64> = HashSet::new();
    let mut double_delivered = 0;
    let mut dup_rejected = 0;
    let mut stale_rejected = 0;
    for &s in &receive_order {
        use anti_replay::Verdict;
        match q.receive(SeqNum::new(s)) {
            Verdict::Fresh => {
                if !delivered_set.insert(s) {
                    double_delivered += 1;
                }
            }
            Verdict::Duplicate => dup_rejected += 1,
            Verdict::Stale => stale_rejected += 1,
        }
    }

    let arrived: HashSet<u64> = receive_order.iter().copied().collect();
    // Entitled: arrived and first arrival reordered by less than w.
    let entitled: Vec<u64> = arrived
        .iter()
        .copied()
        .filter(|s| first_degree.get(s).copied().unwrap_or(0) < w)
        .collect();
    let entitled_delivered = entitled
        .iter()
        .filter(|s| delivered_set.contains(s))
        .count() as u64;

    T6Row {
        label: label.to_string(),
        w,
        sent: n,
        arrived: arrived.len() as u64,
        delivered: delivered_set.len() as u64,
        dup_rejected,
        stale_rejected,
        max_reorder: max_reorder_degree(&receive_order),
        entitled: entitled.len() as u64,
        entitled_delivered,
        double_delivered,
    }
}

/// Renders the t6 table across channel configurations.
///
/// # Panics
///
/// Panics if Discrimination or w-Delivery is violated in any run.
pub fn table(w: u64, n: u64, seed: u64) -> Table {
    let configs: Vec<(&str, LinkConfig)> = vec![
        ("perfect FIFO", LinkConfig::perfect()),
        ("10% loss, FIFO", LinkConfig::lossy(0.10)),
        (
            "10% duplication",
            LinkConfig {
                duplicate_prob: 0.10,
                ..LinkConfig::perfect()
            },
        ),
        (
            "mild jitter (reorder < w)",
            LinkConfig::jittery(SimDuration::from_micros(40)),
        ),
        (
            "severe jitter (reorder may reach w)",
            LinkConfig::jittery(SimDuration::from_micros(4_000)),
        ),
        (
            "loss+dup+jitter",
            LinkConfig {
                drop_prob: 0.05,
                duplicate_prob: 0.05,
                jitter: SimDuration::from_micros(100),
                fifo: false,
                ..LinkConfig::perfect()
            },
        ),
    ];
    let mut t = Table::new(
        format!("t6: w-Delivery & Discrimination (w = {w}, {n} messages)"),
        &[
            "channel",
            "sent",
            "arrived",
            "delivered",
            "dup_rej",
            "stale_rej",
            "max_reorder",
            "entitled",
            "entitled_delivered",
            "double",
        ],
    );
    for (label, cfg) in configs {
        let r = run_one(label, cfg, w, n, seed);
        assert_eq!(r.double_delivered, 0, "Discrimination violated: {label}");
        assert_eq!(
            r.entitled, r.entitled_delivered,
            "w-Delivery violated: {label}"
        );
        t.row_owned(vec![
            r.label.clone(),
            r.sent.to_string(),
            r.arrived.to_string(),
            r.delivered.to_string(),
            r.dup_rejected.to_string(),
            r.stale_rejected.to_string(),
            r.max_reorder.to_string(),
            r.entitled.to_string(),
            r.entitled_delivered.to_string(),
            r.double_delivered.to_string(),
        ]);
    }
    t.note("entitled = arrived with first-arrival reorder degree < w; all must be delivered");
    t.note(
        "severe jitter shows the [2] caveat: reorder >= w may discard good messages (stale_rej)",
    );
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_channel_delivers_all_exactly_once() {
        let r = run_one("perfect", LinkConfig::perfect(), 32, 500, 1);
        assert_eq!(r.delivered, 500);
        assert_eq!(r.dup_rejected + r.stale_rejected, 0);
        assert_eq!(r.double_delivered, 0);
        assert_eq!(r.max_reorder, 0);
    }

    #[test]
    fn duplication_rejected_not_double_delivered() {
        let cfg = LinkConfig {
            duplicate_prob: 0.5,
            ..LinkConfig::perfect()
        };
        let r = run_one("dup", cfg, 32, 500, 2);
        assert!(r.dup_rejected > 100);
        assert_eq!(r.double_delivered, 0);
        assert_eq!(r.delivered, 500);
    }

    #[test]
    fn mild_reorder_loses_nothing() {
        let cfg = LinkConfig::jittery(SimDuration::from_micros(40));
        let r = run_one("jitter", cfg, 64, 500, 3);
        assert!(r.max_reorder > 0, "jitter should reorder something");
        assert!(r.max_reorder < 64);
        assert_eq!(r.delivered, 500, "reorder < w loses nothing");
    }

    #[test]
    fn severe_reorder_discards_only_unentitled() {
        let cfg = LinkConfig::jittery(SimDuration::from_micros(4_000));
        let r = run_one("severe", cfg, 16, 800, 4);
        assert!(r.max_reorder >= 16, "jitter should exceed w");
        assert!(r.stale_rejected > 0, "the [2] caveat shows up");
        assert_eq!(r.entitled, r.entitled_delivered, "w-Delivery still holds");
        assert_eq!(r.double_delivered, 0);
    }

    #[test]
    fn table_builds_all_rows() {
        let t = table(32, 300, 5);
        assert_eq!(t.len(), 6);
    }
}

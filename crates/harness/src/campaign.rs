//! Seeded fault-injection campaign: §3 invariants under a hostile disk.
//!
//! The scenario runner ([`crate::run_scenario`]) proves the paper's
//! claims when persistent memory behaves. This module attacks the other
//! assumption: every store behind the receiving gateway is wrapped in a
//! [`FaultyStable`] armed with a seeded probabilistic fault — clean SAVE
//! failures, torn writes that persist garbage behind a successful
//! return, corrupt FETCHes, stale-generation rollbacks — while a replay
//! adversary records everything and resets strike between rounds.
//!
//! Swept across cipher suites and shard counts, every run asserts the
//! §3 invariants, now *including* the fail-closed extension:
//!
//! * **0 replays accepted** — no `(SA, rekey-epoch, sequence)` is ever
//!   delivered twice, and the recorded library never lands post-FETCH;
//! * **sacrifice ≤ 2K · resets** per SA — condition (ii) survives the
//!   fault schedule;
//! * **no counter rollback** — the sender's sequence numbers stay
//!   strictly increasing within an epoch, and a store that *does* roll
//!   back is caught by the generation witness and surfaces as
//!   [`GatewayEvent::FailedClosed`] (SA replaced), never as replayable
//!   state.
//!
//! Every assertion message carries the campaign seed, so a CI failure
//! is reproducible with `CampaignConfig { seed, ..Default::default() }`.

use std::collections::{BTreeMap, HashSet};

use bytes::Bytes;
use reset_ipsec::{CryptoSuite, GatewayBuilder, GatewayEvent, SaDirection};
use reset_stable::{Fault, FaultyStable, MemStable};
use reset_telemetry::Json;

use crate::report::{RunReport, RunTotals};

/// SplitMix64 — the campaign's only randomness source.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Campaign shape: the sweep axes and per-run intensity.
#[derive(Debug, Clone)]
pub struct CampaignConfig {
    /// Master seed; every run seed, fault schedule, reset schedule and
    /// traffic pattern derives from it.
    pub seed: u64,
    /// Cipher suites swept.
    pub suites: Vec<CryptoSuite>,
    /// Shard counts swept (1 = the plain-gateway-equivalent pool).
    pub shard_counts: Vec<usize>,
    /// SAs in the fleet.
    pub sas: u32,
    /// Traffic rounds per run.
    pub rounds: usize,
    /// Fresh frames per round.
    pub packets_per_round: usize,
    /// The paper's save interval `K`.
    pub save_interval: u64,
    /// Per-operation fault probability, in thousandths.
    pub fault_per_mille: u16,
}

impl Default for CampaignConfig {
    fn default() -> Self {
        CampaignConfig {
            seed: 0x0001_cdc5_2003,
            suites: vec![
                CryptoSuite::HmacSha256WithKeystream,
                CryptoSuite::ChaCha20Poly1305,
            ],
            shard_counts: vec![1, 4],
            sas: 8,
            rounds: 12,
            packets_per_round: 48,
            save_interval: 10,
            fault_per_mille: 60,
        }
    }
}

impl CampaignConfig {
    /// A small single-suite configuration for unit tests.
    pub fn quick(seed: u64) -> Self {
        CampaignConfig {
            seed,
            suites: vec![CryptoSuite::HmacSha256WithKeystream],
            shard_counts: vec![1],
            sas: 3,
            rounds: 6,
            packets_per_round: 24,
            ..CampaignConfig::default()
        }
    }
}

/// Aggregate counts across the whole sweep (one entry per invariant-
/// relevant outcome; the invariants themselves are asserted inline).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CampaignReport {
    /// Runs executed (suites × shard counts).
    pub runs: usize,
    /// Resets injected across all runs.
    pub resets: u64,
    /// Fresh frames delivered.
    pub delivered: u64,
    /// Adversary replays rejected (window or authentication).
    pub replays_rejected: u64,
    /// Fresh frames sacrificed inside post-recovery leap windows.
    pub sacrificed: u64,
    /// SAs replaced because recovery failed closed on untrusted state.
    pub failed_closed: u64,
}

impl CampaignReport {
    /// Converts into the unified `reset-report/v1` schema (the
    /// campaign tracks aggregate counters only, so `verdicts` and
    /// `timeline` stay empty and `runs` rides in `extra`).
    pub fn to_run_report(&self, seed: u64) -> RunReport {
        let mut report = RunReport::new("campaign", seed);
        report.totals = RunTotals {
            delivered: self.delivered,
            replays_rejected: self.replays_rejected,
            replays_accepted: 0, // any acceptance panics inside the run
            sacrificed: self.sacrificed,
            failed_closed: self.failed_closed,
            resets: self.resets,
        };
        report
            .extra
            .push(("runs".to_string(), Json::U64(self.runs as u64)));
        report
    }
}

/// Runs the full sweep, panicking (with the seed in the message) on any
/// §3 invariant violation.
pub fn run_campaign(cfg: &CampaignConfig) -> CampaignReport {
    let mut report = CampaignReport::default();
    let mut seed_stream = cfg.seed;
    for &suite in &cfg.suites {
        for &shards in &cfg.shard_counts {
            let run_seed = splitmix64(&mut seed_stream);
            run_one(suite, shards, run_seed, cfg, &mut report);
            report.runs += 1;
        }
    }
    report
}

fn run_one(
    suite: CryptoSuite,
    shards: usize,
    run_seed: u64,
    cfg: &CampaignConfig,
    report: &mut CampaignReport,
) {
    let ctx = format!(
        "campaign seed={:#x} run_seed={run_seed:#x} suite={suite:?} shards={shards}",
        cfg.seed
    );
    let k = cfg.save_interval;
    let mut rng = run_seed;

    // The receiving fleet persists through fault-armed stores: each store
    // (including the fresh ones a fail-closed rekey creates) draws its
    // own fault kind and schedule from the run seed.
    let per_mille = cfg.fault_per_mille;
    let mut store_counter: u64 = 0;
    let mut factory_rng = run_seed ^ 0x0FA0_17ED;
    let make_store = move |spi: u32, dir: SaDirection| {
        store_counter += 1;
        let mut s = factory_rng
            ^ (u64::from(spi) << 20)
            ^ ((matches!(dir, SaDirection::Inbound) as u64) << 19)
            ^ store_counter;
        factory_rng = factory_rng.wrapping_add(0x9E37_79B9);
        let fault = match splitmix64(&mut s) % 5 {
            0 => Fault::FailStore,
            1 => Fault::TornStore,
            2 => Fault::CorruptLoad,
            3 => Fault::RollbackLoad,
            _ => Fault::FailErase,
        };
        let mut store = FaultyStable::new(MemStable::new());
        store.auto_probabilistic(splitmix64(&mut s), per_mille, fault);
        store
    };

    const SKEYID: &[u8] = b"fault-campaign-skeyid";
    let mut tx = GatewayBuilder::in_memory()
        .suite(suite)
        .save_interval(k)
        .window(64)
        .skeyid(SKEYID)
        .build();
    let mut rx = GatewayBuilder::with_stores(make_store)
        .suite(suite)
        .save_interval(k)
        .window(64)
        .skeyid(SKEYID)
        .shards(shards)
        .build_sharded();
    for spi in 1..=cfg.sas {
        tx.add_peer(spi, b"campaign-master");
        rx.add_peer(spi, b"campaign-master");
    }

    // Invariant state.
    let mut epoch: BTreeMap<u32, u32> = (1..=cfg.sas).map(|spi| (spi, 0)).collect();
    let mut delivered_keys: HashSet<(u32, u32, u64)> = HashSet::new();
    let mut last_sent: BTreeMap<(u32, u32), u64> = BTreeMap::new();
    let mut sacrificed: BTreeMap<u32, u64> = BTreeMap::new();
    let mut library: Vec<Bytes> = Vec::new();
    let mut resets: u64 = 0;

    // Processes one drained event stream. `fresh` marks drains whose
    // Delivered/ReplayDropped verdicts belong to frames we just sent
    // (adversary drains must deliver nothing at all).
    macro_rules! account {
        ($events:expr, $fresh:expr) => {
            for ev in $events {
                match ev {
                    GatewayEvent::Delivered { spi, seq, .. } => {
                        assert!(
                            $fresh,
                            "[{ctx}] adversary replay delivered: spi={spi} seq={seq}"
                        );
                        let key = (spi, epoch[&spi], seq.value());
                        assert!(
                            delivered_keys.insert(key),
                            "[{ctx}] replay accepted: {key:?} delivered twice"
                        );
                        report.delivered += 1;
                    }
                    GatewayEvent::ReplayDropped { spi, .. } => {
                        if $fresh {
                            let n = sacrificed.entry(spi).or_insert(0);
                            *n += 1;
                            assert!(
                                *n <= 2 * k * resets,
                                "[{ctx}] condition (ii) violated: spi={spi} sacrificed {n} \
                                 > 2K·resets = {}",
                                2 * k * resets
                            );
                            report.sacrificed += 1;
                        } else {
                            report.replays_rejected += 1;
                        }
                    }
                    GatewayEvent::AuthFailed { .. } | GatewayEvent::UnknownSa { .. } => {
                        assert!(!$fresh, "[{ctx}] fresh frame failed auth: {ev:?}");
                        report.replays_rejected += 1;
                    }
                    GatewayEvent::FailedClosed { spi, .. } => {
                        // Untrusted state was refused; the gateway already
                        // replaced its SA. Keep the sender in lockstep by
                        // performing the same rekey generation.
                        report.failed_closed += 1;
                        tx.rekey_now(spi);
                        tx.poll_events();
                        *epoch.get_mut(&spi).expect("known spi") += 1;
                    }
                    GatewayEvent::Buffered { .. }
                    | GatewayEvent::DroppedDown { .. }
                    | GatewayEvent::Recovered { .. }
                    | GatewayEvent::RekeyStarted { .. }
                    | GatewayEvent::RekeyCompleted { .. }
                    | GatewayEvent::ProbeDue { .. }
                    | GatewayEvent::PeerDead { .. } => {}
                }
            }
        };
    }

    for _round in 0..cfg.rounds {
        // Fresh traffic, randomly spread over the fleet. The sender's
        // counters must be strictly monotonic within an epoch (a tx-side
        // rollback would be a SAVE/FETCH bug).
        let mut batch = Vec::with_capacity(cfg.packets_per_round);
        for _ in 0..cfg.packets_per_round {
            let spi = 1 + (splitmix64(&mut rng) % u64::from(cfg.sas)) as u32;
            let frame = tx
                .protect(spi, b"campaign payload")
                .expect("tx datapath")
                .expect("tx is never down");
            let key = (spi, epoch[&spi]);
            let prev = last_sent.get(&key).copied().unwrap_or(0);
            assert!(
                frame.seq.value() > prev,
                "[{ctx}] sender counter rollback: spi={spi} {} after {prev}",
                frame.seq.value()
            );
            last_sent.insert(key, frame.seq.value());
            library.push(frame.wire.clone());
            batch.push(frame.wire);
        }
        rx.push_wire_batch(&batch)
            .unwrap_or_else(|e| panic!("[{ctx}] push_wire_batch: {e}"));
        account!(rx.poll_events(), true);

        // Background saves reach the (faulty) disk; failures are
        // retryable and simply leave the save pending.
        if !splitmix64(&mut rng).is_multiple_of(4) {
            let _ = rx.save_completed();
            tx.save_completed().expect("mem store");
        }

        // The adversary replays a random slice of its library.
        for _ in 0..16 {
            let w = &library[(splitmix64(&mut rng) as usize) % library.len()];
            rx.push_wire(w)
                .unwrap_or_else(|e| panic!("[{ctx}] replay push: {e}"));
        }
        account!(rx.poll_events(), false);

        // Roughly every third round a reset strikes — possibly with
        // SAVEs still in flight (the Fig 1 race) and always with the
        // adversary pumping replays straight through the outage.
        if splitmix64(&mut rng).is_multiple_of(3) {
            resets += 1;
            report.resets += 1;
            rx.reset();
            for _ in 0..8 {
                let w = &library[(splitmix64(&mut rng) as usize) % library.len()];
                rx.push_wire(w)
                    .unwrap_or_else(|e| panic!("[{ctx}] down push: {e}"));
            }
            account!(rx.poll_events(), false);

            rx.begin_recover()
                .unwrap_or_else(|e| panic!("[{ctx}] begin_recover: {e}"));
            // Fresh frames land mid-wake-up: buffered, verdicts at finish.
            let mut waking = Vec::new();
            for _ in 0..8 {
                let spi = 1 + (splitmix64(&mut rng) % u64::from(cfg.sas)) as u32;
                let frame = tx
                    .protect(spi, b"mid-wakeup")
                    .expect("tx datapath")
                    .expect("tx is never down");
                last_sent.insert((spi, epoch[&spi]), frame.seq.value());
                library.push(frame.wire.clone());
                waking.push(frame.wire);
            }
            rx.push_wire_batch(&waking)
                .unwrap_or_else(|e| panic!("[{ctx}] waking push: {e}"));
            account!(rx.poll_events(), true);

            // The wake-up SAVE itself runs on the faulty disk: retry
            // until the schedule lets it through.
            let mut attempts = 0;
            loop {
                match rx.finish_recover() {
                    Ok(_) => break,
                    Err(e) => {
                        attempts += 1;
                        assert!(
                            attempts < 1000,
                            "[{ctx}] finish_recover never converged: {e}"
                        );
                    }
                }
            }
            account!(rx.poll_events(), true);
        }
    }

    // Endgame: the adversary unloads its entire recording. Nothing — not
    // one frame from any round, any epoch, any outage — may deliver.
    rx.push_wire_batch(&library)
        .unwrap_or_else(|e| panic!("[{ctx}] endgame push: {e}"));
    account!(rx.poll_events(), false);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_campaign_holds_invariants_and_delivers() {
        let report = run_campaign(&CampaignConfig::quick(7));
        assert_eq!(report.runs, 1);
        assert!(report.delivered > 0, "{report:?}");
        assert!(report.replays_rejected > 0, "{report:?}");
    }

    #[test]
    fn campaign_is_deterministic_per_seed() {
        let a = run_campaign(&CampaignConfig::quick(42));
        let b = run_campaign(&CampaignConfig::quick(42));
        assert_eq!(a, b, "same seed must reproduce the same campaign");
        let c = run_campaign(&CampaignConfig::quick(43));
        assert_ne!(a, c, "different seed, different schedule");
    }

    #[test]
    fn campaign_report_renders_the_unified_schema() {
        let report = run_campaign(&CampaignConfig::quick(7));
        let json = report.to_run_report(7).render_json();
        assert!(
            json.starts_with("{\"schema\":\"reset-report/v1\",\"kind\":\"campaign\""),
            "{json}"
        );
        assert!(json.contains("\"telemetry\":null"), "{json}");
        assert!(json.contains("\"runs\":1"), "{json}");
    }

    #[test]
    fn faults_actually_fire_and_fail_closed() {
        // Crank the fault rate until fail-closed recoveries are certain;
        // the invariants must survive even then.
        let mut cfg = CampaignConfig::quick(11);
        cfg.fault_per_mille = 400;
        cfg.rounds = 10;
        let report = run_campaign(&cfg);
        assert!(
            report.failed_closed > 0,
            "a 40% fault rate must trip fail-closed recovery: {report:?}"
        );
        assert!(report.delivered > 0, "{report:?}");
    }
}

//! Traffic generators.
//!
//! §4 argues for measuring the SAVE interval in *messages*, not time,
//! "because the rate of message generation may change over time". The
//! ablation experiment drives both save policies with these workloads —
//! constant-rate, bursty on/off, and Poisson-ish — to reproduce that
//! argument quantitatively.

use reset_sim::{DetRng, SimDuration};

/// A message arrival process: yields the gap to the next send.
#[derive(Debug, Clone)]
pub enum Workload {
    /// Fixed inter-message gap (the paper's 4 µs per message).
    ConstantRate {
        /// Gap between consecutive sends.
        interval: SimDuration,
    },
    /// Alternating on/off phases: sends every `interval` during a burst
    /// of `burst_len` messages, then stays idle for `idle`.
    Bursty {
        /// Gap between sends inside a burst.
        interval: SimDuration,
        /// Messages per burst.
        burst_len: u64,
        /// Idle gap between bursts.
        idle: SimDuration,
        /// Progress within the current burst (internal).
        sent_in_burst: u64,
    },
    /// Exponential-ish gaps with the given mean (geometric approximation
    /// sampled from the deterministic RNG).
    Poisson {
        /// Mean gap.
        mean: SimDuration,
    },
}

impl Workload {
    /// Constant-rate workload.
    pub fn constant(interval: SimDuration) -> Workload {
        Workload::ConstantRate { interval }
    }

    /// Bursty on/off workload.
    pub fn bursty(interval: SimDuration, burst_len: u64, idle: SimDuration) -> Workload {
        Workload::Bursty {
            interval,
            burst_len,
            idle,
            sent_in_burst: 0,
        }
    }

    /// Poisson-ish workload with the given mean gap.
    pub fn poisson(mean: SimDuration) -> Workload {
        Workload::Poisson { mean }
    }

    /// The paper's datapath: one 1000-byte message every 4 µs.
    pub fn paper_rate() -> Workload {
        Workload::constant(SimDuration::from_micros(4))
    }

    /// Gap until the next send.
    pub fn next_gap(&mut self, rng: &mut DetRng) -> SimDuration {
        match self {
            Workload::ConstantRate { interval } => *interval,
            Workload::Bursty {
                interval,
                burst_len,
                idle,
                sent_in_burst,
            } => {
                *sent_in_burst += 1;
                if *sent_in_burst >= *burst_len {
                    *sent_in_burst = 0;
                    *idle
                } else {
                    *interval
                }
            }
            Workload::Poisson { mean } => {
                // Inverse-CDF exponential sample, clamped to ≥ 1 ns so
                // simulated time always advances.
                let u = rng.unit_f64().max(1e-12);
                let gap = -(u.ln()) * mean.as_nanos() as f64;
                SimDuration::from_nanos((gap as u64).max(1))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_rate_is_constant() {
        let mut w = Workload::constant(SimDuration::from_micros(4));
        let mut rng = DetRng::new(1);
        for _ in 0..10 {
            assert_eq!(w.next_gap(&mut rng), SimDuration::from_micros(4));
        }
    }

    #[test]
    fn paper_rate_matches_paper() {
        let mut w = Workload::paper_rate();
        let mut rng = DetRng::new(1);
        assert_eq!(w.next_gap(&mut rng).as_micros(), 4);
    }

    #[test]
    fn bursty_inserts_idle_gaps() {
        let mut w = Workload::bursty(SimDuration::from_micros(1), 3, SimDuration::from_millis(1));
        let mut rng = DetRng::new(1);
        let gaps: Vec<u64> = (0..6).map(|_| w.next_gap(&mut rng).as_micros()).collect();
        assert_eq!(gaps, vec![1, 1, 1000, 1, 1, 1000]);
    }

    #[test]
    fn poisson_mean_roughly_matches() {
        let mut w = Workload::poisson(SimDuration::from_micros(10));
        let mut rng = DetRng::new(7);
        let n = 10_000;
        let total: u64 = (0..n).map(|_| w.next_gap(&mut rng).as_nanos()).sum();
        let mean_ns = total / n;
        assert!(
            (8_000..12_000).contains(&mean_ns),
            "mean {mean_ns} ns, want ~10000"
        );
    }

    #[test]
    fn poisson_gaps_always_positive() {
        let mut w = Workload::poisson(SimDuration::from_nanos(5));
        let mut rng = DetRng::new(3);
        for _ in 0..1000 {
            assert!(w.next_gap(&mut rng).as_nanos() >= 1);
        }
    }
}

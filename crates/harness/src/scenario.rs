//! The timed scenario runner: one unidirectional SA under faults.
//!
//! A scenario wires together the paper's whole cast: sender `p` and
//! receiver `q` (SAVE/FETCH or the §2/§3 baseline), the faulty channel,
//! the replay adversary, the background-save latency of the persistent
//! store, reset/wake-up schedules, and an online [`Monitor`] checking the
//! §5 guarantees. All randomness forks from one seed; runs are exactly
//! reproducible.
//!
//! Two [`Transport`]s drive the same experiment matrix: the abstract
//! sequence-number model (fast, crypto-free) and the real ESP datapath —
//! a [`reset_ipsec::ShardedGateway`] pair exchanging suite-framed wire
//! bytes over the faulty link, so every fault/adversary/reset scenario
//! can sweep cipher suites too. Fleet transports
//! ([`Transport::esp_fleet`] with `shards > 1`) run on the engine's
//! persistent worker-pool runtime: the pool's threads are spawned once
//! when the scenario builds its gateways, every `protect`/`push_wire`
//! routes as a job to the owning shard's long-lived worker, and the
//! timed wake-up hooks (`Ev::Wake` → `begin_recover`,
//! `Ev::FinishWake` → `finish_recover`) submit the recovery halves
//! shard-parallel while the simulator models the SAVE device latency
//! between them. With `shards == 1` (the default) the pool is
//! degenerate — zero threads, jobs run inline — so single-tunnel
//! scenarios cost exactly what a plain [`reset_ipsec::Gateway`] would.

use std::collections::{BTreeMap, VecDeque};

use anti_replay::{
    BaselineReceiver, BaselineSender, Monitor, MsgId, Origin, Phase, Report, RxOutcome, SeqNum,
    SfReceiver, SfSender,
};
use bytes::Bytes;
use reset_channel::{Link, LinkConfig, LinkStats, Tap};
use reset_ipsec::{
    CryptoSuite, GatewayBuilder, GatewayEvent, SaKeys, SecurityAssociation, ShardedGateway,
};
use reset_sim::{DetRng, SimDuration, SimTime, Simulator};
use reset_stable::{MemStable, SaveLatencyModel, SlotId};
use reset_telemetry::Json;

use crate::report::{RunReport, RunTotals, SaVerdict};
use crate::workload::Workload;

/// Which protocol variant runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Protocol {
    /// §4: SAVE/FETCH with the `2K` leap.
    SaveFetch,
    /// §2 protocol with the §3 naive restart (the vulnerable baseline).
    Baseline,
}

/// What actually crosses the link.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Transport {
    /// Abstract sequence numbers (the paper's model): no bytes, no
    /// crypto — fastest, and the default.
    Model,
    /// Real ESP frames sealed under `suite` by a
    /// [`reset_ipsec::ShardedGateway`] pair on the persistent
    /// worker-pool runtime: the adversary replays recorded
    /// *ciphertext*, resets strike whole gateways, and recovery runs
    /// the engine's shard-parallel SAVE/FETCH path on the pool's
    /// long-lived workers. Under [`Protocol::Baseline`] a reset
    /// rebuilds the struck gateway from scratch (the §3 naive restart:
    /// counters at 1, window empty — tearing down and respawning the
    /// whole pool, which is exactly what a naive restart costs).
    ///
    /// Prefer the [`Transport::esp`] / [`Transport::esp_fleet`]
    /// constructors over writing the variant out.
    Esp {
        /// Cipher suite every SA of the fleet negotiates.
        suite: CryptoSuite,
        /// How many SAs (SPIs `1..=sa_count`) the gateway pair serves;
        /// the workload round-robins sends across them. `1` reproduces
        /// the paper's single-tunnel experiments.
        sa_count: u32,
        /// Worker shards per gateway (see
        /// [`reset_ipsec::GatewayBuilder::shards`]). `1` is the
        /// single-threaded engine, bit-identical to
        /// [`reset_ipsec::Gateway`].
        shards: usize,
    },
}

impl Transport {
    /// Single-SA, single-shard ESP transport — the paper's one-tunnel
    /// experiments over real frames.
    pub fn esp(suite: CryptoSuite) -> Transport {
        Transport::Esp {
            suite,
            sa_count: 1,
            shards: 1,
        }
    }

    /// A many-SA fleet between one sharded gateway pair: reset storms
    /// exercise `recover_all` at gateway scale, shard-parallel.
    pub fn esp_fleet(suite: CryptoSuite, sa_count: u32, shards: usize) -> Transport {
        Transport::Esp {
            suite,
            sa_count: sa_count.max(1),
            shards: shards.max(1),
        }
    }

    /// How many SAs the transport drives (1 for the abstract model).
    pub fn sa_count(&self) -> u32 {
        match self {
            Transport::Model => 1,
            Transport::Esp { sa_count, .. } => *sa_count,
        }
    }
}

/// What the adversary does during the run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdversaryPlan {
    /// Passive (records but never injects).
    None,
    /// Replays the entire recorded history the moment the receiver
    /// restarts — the §3 attack on a reset receiver.
    ReplayAllOnReceiverRestart,
    /// Replays the highest recorded sequence number after a restart —
    /// the §3 blackhole attack (aimed at a freshly reset receiver while
    /// the sender also restarted).
    ReplayLatestOnRestart,
    /// Injects `count` random recorded messages every `every`.
    PeriodicRandom {
        /// Injection period.
        every: SimDuration,
        /// Copies per injection.
        count: usize,
    },
}

/// Full scenario parameterization.
#[derive(Debug, Clone)]
pub struct ScenarioConfig {
    /// Root RNG seed.
    pub seed: u64,
    /// Protocol variant.
    pub protocol: Protocol,
    /// What crosses the link: the abstract model or real ESP frames.
    pub transport: Transport,
    /// Sender save interval `Kp`.
    pub kp: u64,
    /// Receiver save interval `Kq`.
    pub kq: u64,
    /// Anti-replay window size `w`.
    pub w: u64,
    /// Message arrival process.
    pub workload: Workload,
    /// SAVE device latency.
    pub save_latency: SaveLatencyModel,
    /// Channel faults.
    pub link: LinkConfig,
    /// Virtual run length.
    pub duration: SimDuration,
    /// Instants at which the sender is reset.
    pub sender_resets: Vec<SimTime>,
    /// Instants at which the receiver is reset.
    pub receiver_resets: Vec<SimTime>,
    /// How long a reset machine stays down before waking.
    pub downtime: SimDuration,
    /// Adversary behaviour.
    pub adversary: AdversaryPlan,
}

impl Default for ScenarioConfig {
    fn default() -> Self {
        ScenarioConfig {
            seed: 0,
            protocol: Protocol::SaveFetch,
            transport: Transport::Model,
            kp: 25,
            kq: 25,
            w: 64,
            workload: Workload::paper_rate(),
            save_latency: SaveLatencyModel::paper_disk(),
            link: LinkConfig::perfect(),
            duration: SimDuration::from_millis(10),
            sender_resets: Vec::new(),
            receiver_resets: Vec::new(),
            downtime: SimDuration::from_millis(1),
            adversary: AdversaryPlan::None,
        }
    }
}

/// Everything a finished run reports.
#[derive(Debug, Clone)]
pub struct ScenarioOutcome {
    /// The monitors' ground-truth report, aggregated across every SA of
    /// the fleet (§5 guarantees; sums of counters, concatenated
    /// violations).
    pub monitor: Report,
    /// One ground-truth report per SA (index `spi - 1`) — the paper's
    /// guarantees are per-SA, so fleet experiments assert on these.
    pub per_sa: Vec<Report>,
    /// Messages whose delivery hit a down receiver.
    pub dropped_down: u64,
    /// Channel statistics.
    pub link: LinkStats,
    /// Adversary injections performed.
    pub injected: u64,
    /// Final sender counter (next to send).
    pub final_next_seq: u64,
    /// Final receiver right edge.
    pub final_right_edge: u64,
    /// Sender resets executed.
    pub sender_resets: u64,
    /// Receiver resets executed.
    pub receiver_resets: u64,
    /// Virtual time at the end of the run.
    pub end_time: SimTime,
}

impl ScenarioOutcome {
    /// Converts into the unified `reset-report/v1` schema. Monitors are
    /// ground truth here, so the totals come from them rather than from
    /// gateway telemetry: `delivered` counts fresh instances,
    /// `sacrificed` is the §5(i) leap loss, and each SA of the fleet
    /// gets a verdict row (`spi = index + 1`). Scenario-specific
    /// counters ride in `extra`.
    pub fn to_run_report(&self, seed: u64) -> RunReport {
        let mut report = RunReport::new("scenario", seed);
        report.totals = RunTotals {
            delivered: self.monitor.fresh_delivered,
            replays_rejected: self.monitor.replays_rejected,
            replays_accepted: self.monitor.replays_accepted,
            sacrificed: self.monitor.seqs_lost_to_leaps,
            failed_closed: 0,
            resets: self.sender_resets + self.receiver_resets,
        };
        report.verdicts = self
            .per_sa
            .iter()
            .enumerate()
            .map(|(i, r)| SaVerdict {
                spi: i as u32 + 1,
                sent: r.sent,
                delivered: r.fresh_delivered,
                sacrificed: r.seqs_lost_to_leaps,
                replays_rejected: r.replays_rejected,
                epochs: 1, // scenarios never rekey
                resets_survived: self.receiver_resets,
                ok: r.clean() && r.replays_accepted == 0,
            })
            .collect();
        report.extra = vec![
            ("dropped_down".into(), Json::U64(self.dropped_down)),
            ("injected".into(), Json::U64(self.injected)),
            ("final_next_seq".into(), Json::U64(self.final_next_seq)),
            ("final_right_edge".into(), Json::U64(self.final_right_edge)),
            ("end_time_ns".into(), Json::U64(self.end_time.as_nanos())),
        ];
        report
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Side {
    P,
    Q,
}

/// One message instance on the wire: the SA it belongs to, the sequence
/// number the protocol sees, the ground-truth instance identity the
/// monitor tracks, and — under [`Transport::Esp`] — the sealed frame
/// the adversary records and replays byte-for-byte.
#[derive(Debug, Clone, PartialEq, Eq)]
struct Msg {
    id: MsgId,
    spi: u32,
    seq: SeqNum,
    wire: Option<Bytes>,
}

#[derive(Debug, Clone)]
#[allow(clippy::large_enum_variant)] // Msg is a few words; boxing would cost more
enum Ev {
    Send,
    Deliver(Msg, Origin),
    SaveDone(Side),
    Reset(Side),
    Wake(Side),
    FinishWake(Side),
    AdversaryTick,
}

#[allow(clippy::large_enum_variant)] // one Proto per scenario; size is irrelevant
enum Proto {
    Sf {
        p: SfSender<MemStable>,
        q: SfReceiver<MemStable>,
    },
    Base {
        p: BaselineSender,
        q: BaselineReceiver,
    },
    /// Real ESP frames through a [`ShardedGateway`] pair serving SPIs
    /// `1..=sa_count`. `baseline` selects the §3 naive restart (rebuild
    /// from scratch) over SAVE/FETCH.
    Esp {
        tx: ShardedGateway<MemStable>,
        rx: ShardedGateway<MemStable>,
        suite: CryptoSuite,
        sa_count: u32,
        shards: usize,
        baseline: bool,
    },
}

/// The representative SA every [`Transport::Esp`] scenario serves (SPI
/// 1 of the fleet): phase probes and the outcome's final counters read
/// it.
const ESP_SPI: u32 = 1;
/// Shared keying material both gateway halves derive the fleet from.
const ESP_MASTER: &[u8] = b"scenario-esp-master";
/// Fixed application payload (the model transport carries none).
const ESP_PAYLOAD: &[u8] = b"scenario payload";

fn esp_sa(suite: CryptoSuite, spi: u32) -> SecurityAssociation {
    let keys = SaKeys::derive(ESP_MASTER, &spi.to_be_bytes());
    SecurityAssociation::new(spi, keys).with_suite(suite)
}

/// The sender half: a sharded gateway holding the outbound fleet.
fn esp_tx_gateway(
    kp: u64,
    w: u64,
    suite: CryptoSuite,
    sa_count: u32,
    shards: usize,
) -> ShardedGateway<MemStable> {
    let mut gw = GatewayBuilder::in_memory_sharded(shards)
        .suite(suite)
        .save_interval(kp)
        .window(w)
        .build_sharded();
    for spi in 1..=sa_count {
        gw.install_outbound(esp_sa(suite, spi));
    }
    gw
}

/// The receiver half: a sharded gateway holding the inbound fleet.
fn esp_rx_gateway(
    kq: u64,
    w: u64,
    suite: CryptoSuite,
    sa_count: u32,
    shards: usize,
) -> ShardedGateway<MemStable> {
    let mut gw = GatewayBuilder::in_memory_sharded(shards)
        .suite(suite)
        .save_interval(kq)
        .window(w)
        .build_sharded();
    for spi in 1..=sa_count {
        gw.install_inbound(esp_sa(suite, spi));
    }
    gw
}

/// Runs one scenario to completion.
///
/// # Examples
///
/// ```
/// use reset_harness::{run_scenario, ScenarioConfig};
///
/// let outcome = run_scenario(ScenarioConfig::default());
/// assert!(outcome.monitor.clean());
/// assert!(outcome.monitor.fresh_delivered > 0);
/// ```
pub fn run_scenario(config: ScenarioConfig) -> ScenarioOutcome {
    ScenarioRunner::new(config).run()
}

struct ScenarioRunner {
    cfg: ScenarioConfig,
    sim: Simulator<Ev>,
    proto: Proto,
    /// One ground-truth monitor per SA (index `spi - 1`; the paper's
    /// guarantees — and sequence-number identity — are per-SA).
    monitors: Vec<Monitor>,
    tap: Tap<Msg>,
    link: Link,
    workload: Workload,
    workload_rng: DetRng,
    latency_rng: DetRng,
    adv_rng: DetRng,
    p_save_outstanding: bool,
    q_save_outstanding: bool,
    /// Ground-truth identities of frames buffered during a wake-up,
    /// keyed per SA: recovery resolves buffered frames grouped by SA
    /// (shard-then-SPI order), so a single global FIFO would misattach
    /// identities once more than one SA buffers.
    buffered_meta: BTreeMap<u32, VecDeque<(MsgId, Origin)>>,
    next_msg_id: u64,
    /// Round-robin cursor spreading sends across the fleet.
    send_attempts: u64,
    dropped_down: u64,
    /// Per-SA sender counters captured at the last reset (index
    /// `spi - 1`).
    p_next_at_reset: Vec<SeqNum>,
    p_resets: u64,
    q_resets: u64,
    /// Baseline both-reset bookkeeping for ReplayLatestOnRestart.
    pending_latest_replay: bool,
}

impl ScenarioRunner {
    fn new(cfg: ScenarioConfig) -> Self {
        let mut sim = Simulator::new(cfg.seed);
        let link_rng = sim.rng().fork();
        let workload_rng = sim.rng().fork();
        let latency_rng = sim.rng().fork();
        let adv_rng = sim.rng().fork();
        let proto = match (cfg.protocol, cfg.transport) {
            (Protocol::SaveFetch, Transport::Model) => Proto::Sf {
                p: SfSender::new(MemStable::new(), SlotId::sender(1), cfg.kp),
                q: SfReceiver::new(MemStable::new(), SlotId::receiver(1), cfg.kq, cfg.w),
            },
            (Protocol::Baseline, Transport::Model) => Proto::Base {
                p: BaselineSender::new(),
                q: BaselineReceiver::new(cfg.w),
            },
            (
                protocol,
                Transport::Esp {
                    suite,
                    sa_count,
                    shards,
                },
            ) => {
                // The esp/esp_fleet constructors clamp these, but the
                // variant's fields are public — clamp again here so a
                // hand-built `Esp { sa_count: 0, .. }` degrades to the
                // minimal fleet instead of panicking mid-run.
                let (sa_count, shards) = (sa_count.max(1), shards.max(1));
                Proto::Esp {
                    tx: esp_tx_gateway(cfg.kp, cfg.w, suite, sa_count, shards),
                    rx: esp_rx_gateway(cfg.kq, cfg.w, suite, sa_count, shards),
                    suite,
                    sa_count,
                    shards,
                    baseline: protocol == Protocol::Baseline,
                }
            }
        };
        let sa_count = cfg.transport.sa_count().max(1) as usize;
        let link = Link::new(cfg.link, link_rng);
        let workload = cfg.workload.clone();
        ScenarioRunner {
            cfg,
            sim,
            proto,
            monitors: (0..sa_count).map(|_| Monitor::new()).collect(),
            tap: Tap::new(),
            link,
            workload,
            workload_rng,
            latency_rng,
            adv_rng,
            p_save_outstanding: false,
            q_save_outstanding: false,
            buffered_meta: BTreeMap::new(),
            next_msg_id: 0,
            send_attempts: 0,
            dropped_down: 0,
            p_next_at_reset: vec![SeqNum::ZERO; sa_count],
            p_resets: 0,
            q_resets: 0,
            pending_latest_replay: false,
        }
    }

    fn run(mut self) -> ScenarioOutcome {
        self.sim.schedule_at(SimTime::ZERO, Ev::Send);
        for &t in &self.cfg.sender_resets {
            self.sim.schedule_at(t, Ev::Reset(Side::P));
        }
        for &t in &self.cfg.receiver_resets {
            self.sim.schedule_at(t, Ev::Reset(Side::Q));
        }
        if let AdversaryPlan::PeriodicRandom { every, .. } = self.cfg.adversary {
            self.sim
                .schedule_at(SimTime::ZERO + every, Ev::AdversaryTick);
        }
        let deadline = SimTime::ZERO + self.cfg.duration;
        // Pump events; the handler needs &mut self alongside &mut sim, so
        // the loop is hand-rolled rather than using Simulator::run.
        loop {
            match self.sim.peek_time() {
                Some(t) if t <= deadline => {}
                _ => break,
            }
            let (now, ev) = self.sim.next_event().expect("peeked");
            self.handle(now, ev);
        }
        self.finish()
    }

    fn handle(&mut self, now: SimTime, ev: Ev) {
        match ev {
            Ev::Send => self.on_send(now),
            Ev::Deliver(seq, origin) => self.on_deliver(seq, origin),
            Ev::SaveDone(side) => self.on_save_done(side),
            Ev::Reset(side) => self.on_reset(now, side),
            Ev::Wake(side) => self.on_wake(now, side),
            Ev::FinishWake(side) => self.on_finish_wake(now, side),
            Ev::AdversaryTick => self.on_adversary_tick(now),
        }
    }

    /// The monitor owning `spi`'s ground truth.
    fn mon(&mut self, spi: u32) -> &mut Monitor {
        &mut self.monitors[spi.saturating_sub(1) as usize]
    }

    fn on_send(&mut self, now: SimTime) {
        // Sends round-robin across the fleet (SPI 1..=sa_count); with a
        // single SA this degenerates to the original fixed-SPI stream.
        let spi = 1 + (self.send_attempts % self.monitors.len() as u64) as u32;
        self.send_attempts += 1;
        let sent = match &mut self.proto {
            Proto::Sf { p, .. } => p.send_next().expect("mem store").map(|seq| (seq, None)),
            Proto::Base { p, .. } => Some((p.send_next(), None)),
            Proto::Esp { tx, .. } => tx
                .protect(spi, ESP_PAYLOAD)
                .expect("mem store")
                .map(|frame| (frame.seq, Some(frame.wire))),
        };
        if let Some((seq, wire)) = sent {
            let msg = Msg {
                id: MsgId(self.next_msg_id),
                spi,
                seq,
                wire,
            };
            self.next_msg_id += 1;
            self.mon(spi).on_send(msg.id, seq);
            self.tap.record(msg.clone());
            self.transmit(now, msg, true);
            self.maybe_schedule_save(Side::P, now);
        }
        let gap = self.workload.next_gap(&mut self.workload_rng);
        self.sim.schedule_at(now + gap, Ev::Send);
    }

    /// Pushes one message instance through the link; `fresh` marks the
    /// sender's original (vs an adversary injection).
    fn transmit(&mut self, now: SimTime, msg: Msg, fresh: bool) {
        let deliveries = self.link.transmit(now, msg);
        for (i, (at, msg)) in deliveries.into_iter().enumerate() {
            let origin = if !fresh {
                Origin::Adversary
            } else if i == 0 {
                Origin::Original
            } else {
                Origin::ChannelDup
            };
            self.sim.schedule_at(at, Ev::Deliver(msg, origin));
        }
    }

    fn on_deliver(&mut self, msg: Msg, origin: Origin) {
        match &mut self.proto {
            Proto::Sf { q, .. } => {
                let outcome = q.receive(msg.seq).expect("mem store");
                match outcome {
                    RxOutcome::Delivered => {
                        self.mon(msg.spi).on_deliver(Some(msg.id), msg.seq, origin)
                    }
                    RxOutcome::DiscardedStale | RxOutcome::DiscardedDuplicate => {
                        self.mon(msg.spi).on_discard(Some(msg.id), msg.seq, origin)
                    }
                    RxOutcome::Buffered => self
                        .buffered_meta
                        .entry(msg.spi)
                        .or_default()
                        .push_back((msg.id, origin)),
                    RxOutcome::DroppedDown => self.dropped_down += 1,
                }
            }
            Proto::Base { q, .. } => {
                if q.receive(msg.seq).is_deliverable() {
                    self.mon(msg.spi).on_deliver(Some(msg.id), msg.seq, origin);
                } else {
                    self.mon(msg.spi).on_discard(Some(msg.id), msg.seq, origin);
                }
            }
            Proto::Esp { rx, .. } => {
                let wire = msg.wire.as_ref().expect("esp transport frames carry bytes");
                rx.push_wire(wire).expect("mem store");
                let events = rx.poll_events();
                for ev in events {
                    self.note_gateway_event(ev, &msg, origin);
                }
            }
        }
        // Receiver-side background save (SAVE/FETCH only).
        let now = self.sim.now();
        self.maybe_schedule_save(Side::Q, now);
    }

    /// Maps one receiver-gateway event onto the owning SA's ground
    /// truth. `msg` is the instance whose push produced the event.
    fn note_gateway_event(&mut self, ev: GatewayEvent, msg: &Msg, origin: Origin) {
        match ev {
            GatewayEvent::Delivered { seq, .. } => {
                self.mon(msg.spi).on_deliver(Some(msg.id), seq, origin)
            }
            GatewayEvent::ReplayDropped { seq, .. } => {
                self.mon(msg.spi).on_discard(Some(msg.id), seq, origin)
            }
            GatewayEvent::Buffered { .. } => self
                .buffered_meta
                .entry(msg.spi)
                .or_default()
                .push_back((msg.id, origin)),
            GatewayEvent::DroppedDown { .. } => self.dropped_down += 1,
            // Genuine recorded frames always authenticate; reaching here
            // would be a harness bug, but count it as a discard rather
            // than corrupting the run.
            GatewayEvent::AuthFailed { .. } | GatewayEvent::UnknownSa { .. } => {
                self.mon(msg.spi).on_discard(Some(msg.id), msg.seq, origin)
            }
            // No DPD/rekey policies are configured on scenario gateways.
            _ => {}
        }
    }

    fn maybe_schedule_save(&mut self, side: Side, now: SimTime) {
        let (pending, outstanding) = match (&self.proto, side) {
            (Proto::Sf { p, .. }, Side::P) => (p.pending_save().is_some(), self.p_save_outstanding),
            (Proto::Sf { q, .. }, Side::Q) => (q.pending_save().is_some(), self.q_save_outstanding),
            // The baseline performs no SAVEs (its restart ignores the
            // store), so only SAVE/FETCH gateways model save latency.
            (Proto::Esp { baseline: true, .. }, _) | (Proto::Base { .. }, _) => return,
            (Proto::Esp { tx, .. }, Side::P) => (tx.pending_save(), self.p_save_outstanding),
            (Proto::Esp { rx, .. }, Side::Q) => (rx.pending_save(), self.q_save_outstanding),
        };
        if pending && !outstanding {
            let d = self.cfg.save_latency.sample_ns(self.latency_rng.next_u64());
            self.sim
                .schedule_at(now + SimDuration::from_nanos(d), Ev::SaveDone(side));
            match side {
                Side::P => self.p_save_outstanding = true,
                Side::Q => self.q_save_outstanding = true,
            }
        }
    }

    fn on_save_done(&mut self, side: Side) {
        match (&mut self.proto, side) {
            (Proto::Sf { p, .. }, Side::P) => {
                self.p_save_outstanding = false;
                p.save_completed().expect("mem store");
            }
            (Proto::Sf { q, .. }, Side::Q) => {
                self.q_save_outstanding = false;
                q.save_completed().expect("mem store");
            }
            (Proto::Esp { baseline: true, .. }, _) | (Proto::Base { .. }, _) => return,
            (Proto::Esp { tx, .. }, Side::P) => {
                self.p_save_outstanding = false;
                tx.save_completed().expect("mem store");
            }
            (Proto::Esp { rx, .. }, Side::Q) => {
                self.q_save_outstanding = false;
                rx.save_completed().expect("mem store");
            }
        }
        // A superseding issue may already be pending again.
        let now = self.sim.now();
        self.maybe_schedule_save(side, now);
    }

    fn on_reset(&mut self, now: SimTime, side: Side) {
        match &mut self.proto {
            Proto::Sf { p, q } => match side {
                Side::P => {
                    if p.phase() == Phase::Running {
                        self.p_next_at_reset[0] = p.next_seq();
                    }
                    p.reset();
                    self.p_resets += 1;
                    self.sim
                        .schedule_at(now + self.cfg.downtime, Ev::Wake(Side::P));
                }
                Side::Q => {
                    // Buffered instances die with the machine.
                    self.buffered_meta.clear();
                    q.reset();
                    self.q_resets += 1;
                    self.sim
                        .schedule_at(now + self.cfg.downtime, Ev::Wake(Side::Q));
                }
            },
            Proto::Base { p, q } => match side {
                Side::P => {
                    let old_next = p.next_seq();
                    p.reset_and_wake();
                    self.p_resets += 1;
                    // The baseline "resumes" at 1 — the monitor records the
                    // stale resume as a violation, which t3 reports.
                    let kp = self.cfg.kp;
                    self.mon(1).on_sender_wakeup(old_next, SeqNum::FIRST, kp);
                    if self.cfg.adversary == AdversaryPlan::ReplayLatestOnRestart {
                        self.pending_latest_replay = true;
                        self.try_latest_replay();
                    }
                }
                Side::Q => {
                    q.reset_and_wake();
                    self.q_resets += 1;
                    match self.cfg.adversary {
                        AdversaryPlan::ReplayAllOnReceiverRestart => self.replay_all(),
                        AdversaryPlan::ReplayLatestOnRestart => {
                            self.pending_latest_replay = true;
                            self.try_latest_replay();
                        }
                        _ => {}
                    }
                }
            },
            Proto::Esp {
                tx,
                rx,
                suite,
                sa_count,
                shards,
                baseline,
            } => {
                let (suite, sa_count, shards) = (*suite, *sa_count, *shards);
                if *baseline {
                    // §3 naive restart over real frames: the struck
                    // gateway is rebuilt from scratch — counters at 1,
                    // window empty, same keys — and resumes immediately.
                    match side {
                        Side::P => {
                            let old_next: Vec<SeqNum> = (1..=sa_count)
                                .map(|spi| tx.next_seq(spi).expect("sa installed"))
                                .collect();
                            *tx = esp_tx_gateway(self.cfg.kp, self.cfg.w, suite, sa_count, shards);
                            self.p_resets += 1;
                            let kp = self.cfg.kp;
                            for (i, old) in old_next.into_iter().enumerate() {
                                self.mon(i as u32 + 1)
                                    .on_sender_wakeup(old, SeqNum::FIRST, kp);
                            }
                            if self.cfg.adversary == AdversaryPlan::ReplayLatestOnRestart {
                                self.pending_latest_replay = true;
                                self.try_latest_replay();
                            }
                        }
                        Side::Q => {
                            self.buffered_meta.clear();
                            *rx = esp_rx_gateway(self.cfg.kq, self.cfg.w, suite, sa_count, shards);
                            self.q_resets += 1;
                            match self.cfg.adversary {
                                AdversaryPlan::ReplayAllOnReceiverRestart => self.replay_all(),
                                AdversaryPlan::ReplayLatestOnRestart => {
                                    self.pending_latest_replay = true;
                                    self.try_latest_replay();
                                }
                                _ => {}
                            }
                        }
                    }
                } else {
                    // SAVE/FETCH: the whole fleet goes down and recovers
                    // through the engine's shard-parallel FETCH + 2K
                    // leap after the configured downtime.
                    match side {
                        Side::P => {
                            if tx.phase(ESP_SPI) == Some(Phase::Running) {
                                for spi in 1..=sa_count {
                                    self.p_next_at_reset[spi as usize - 1] =
                                        tx.next_seq(spi).expect("sa installed");
                                }
                            }
                            tx.reset();
                            self.p_resets += 1;
                            self.sim
                                .schedule_at(now + self.cfg.downtime, Ev::Wake(Side::P));
                        }
                        Side::Q => {
                            self.buffered_meta.clear();
                            rx.reset();
                            self.q_resets += 1;
                            self.sim
                                .schedule_at(now + self.cfg.downtime, Ev::Wake(Side::Q));
                        }
                    }
                }
            }
        }
    }

    /// Adversary injection happens at the receiver's last hop: the §2
    /// threat model lets the adversary insert copies "at any instant",
    /// so injections do not queue behind in-flight fresh traffic.
    fn inject_now(&mut self, msg: Msg) {
        self.sim.schedule_now(Ev::Deliver(msg, Origin::Adversary));
    }

    fn try_latest_replay(&mut self) {
        if self.pending_latest_replay {
            if let Some(msg) = self.tap.replay_latest() {
                self.inject_now(msg);
                self.pending_latest_replay = false;
            }
        }
    }

    fn replay_all(&mut self) {
        for msg in self.tap.replay_all() {
            self.inject_now(msg);
        }
    }

    fn on_wake(&mut self, now: SimTime, side: Side) {
        let d = self.cfg.save_latency.sample_ns(self.latency_rng.next_u64());
        let began = match (&mut self.proto, side) {
            (Proto::Sf { p, .. }, Side::P) => {
                // Stale wakes after overlapping resets are ignored.
                if p.phase() != Phase::Down {
                    return;
                }
                p.begin_wakeup().expect("mem store");
                true
            }
            (Proto::Sf { q, .. }, Side::Q) => {
                if q.phase() != Phase::Down {
                    return;
                }
                q.begin_wakeup().expect("mem store");
                true
            }
            (Proto::Esp { tx, .. }, Side::P) => {
                if tx.phase(ESP_SPI) != Some(Phase::Down) {
                    return;
                }
                tx.begin_recover().expect("mem store");
                true
            }
            (Proto::Esp { rx, .. }, Side::Q) => {
                if rx.phase(ESP_SPI) != Some(Phase::Down) {
                    return;
                }
                rx.begin_recover().expect("mem store");
                true
            }
            (Proto::Base { .. }, _) => false,
        };
        if began {
            self.sim
                .schedule_at(now + SimDuration::from_nanos(d), Ev::FinishWake(side));
        }
    }

    fn on_finish_wake(&mut self, _now: SimTime, side: Side) {
        match (&mut self.proto, side) {
            (Proto::Sf { p, .. }, Side::P) => {
                if p.phase() != Phase::Waking {
                    return;
                }
                let resumed = p.finish_wakeup().expect("mem store");
                let (old, kp) = (self.p_next_at_reset[0], self.cfg.kp);
                self.mon(1).on_sender_wakeup(old, resumed, kp);
            }
            (Proto::Sf { q, .. }, Side::Q) => {
                if q.phase() != Phase::Waking {
                    return;
                }
                let outcomes = q.finish_wakeup().expect("mem store");
                for (seq, outcome) in outcomes {
                    let (id, origin) = self.pop_buffered_meta(1);
                    match outcome {
                        RxOutcome::Delivered => self.mon(1).on_deliver(id, seq, origin),
                        _ => self.mon(1).on_discard(id, seq, origin),
                    }
                }
                self.post_receiver_wakeup_adversary();
            }
            (Proto::Esp { tx, sa_count, .. }, Side::P) => {
                if tx.phase(ESP_SPI) != Some(Phase::Waking) {
                    return;
                }
                let sa_count = *sa_count;
                tx.finish_recover().expect("mem store");
                tx.poll_events(); // Recovered{..}: the monitor tracks senders itself
                let resumed: Vec<SeqNum> = (1..=sa_count)
                    .map(|spi| tx.next_seq(spi).expect("sa installed"))
                    .collect();
                let kp = self.cfg.kp;
                for (i, resumed) in resumed.into_iter().enumerate() {
                    let old = self.p_next_at_reset[i];
                    self.mon(i as u32 + 1).on_sender_wakeup(old, resumed, kp);
                }
            }
            (Proto::Esp { rx, .. }, Side::Q) => {
                if rx.phase(ESP_SPI) != Some(Phase::Waking) {
                    return;
                }
                rx.finish_recover().expect("mem store");
                let events = rx.poll_events();
                for ev in events {
                    match ev {
                        GatewayEvent::Recovered { .. } => {}
                        // Buffered frames resolve grouped by SA, each
                        // SA's in arrival order; their ground-truth
                        // identities queued per SA at buffering time.
                        GatewayEvent::Delivered { spi, seq, .. } => {
                            let (id, origin) = self.pop_buffered_meta(spi);
                            self.mon(spi).on_deliver(id, seq, origin);
                        }
                        GatewayEvent::ReplayDropped { spi, seq, .. } => {
                            let (id, origin) = self.pop_buffered_meta(spi);
                            self.mon(spi).on_discard(id, seq, origin);
                        }
                        other => unreachable!("unexpected recovery event {other:?}"),
                    }
                }
                self.post_receiver_wakeup_adversary();
            }
            (Proto::Base { .. }, _) => {}
        }
    }

    fn pop_buffered_meta(&mut self, spi: u32) -> (Option<MsgId>, Origin) {
        self.buffered_meta
            .get_mut(&spi)
            .and_then(|q| q.pop_front())
            .map(|(i, o)| (Some(i), o))
            .unwrap_or((None, Origin::Original))
    }

    /// The §3 adversary strikes the moment the receiver is back up.
    fn post_receiver_wakeup_adversary(&mut self) {
        match self.cfg.adversary {
            AdversaryPlan::ReplayAllOnReceiverRestart => self.replay_all(),
            AdversaryPlan::ReplayLatestOnRestart => {
                self.pending_latest_replay = true;
                self.try_latest_replay();
            }
            _ => {}
        }
    }

    fn on_adversary_tick(&mut self, now: SimTime) {
        if let AdversaryPlan::PeriodicRandom { every, count } = self.cfg.adversary {
            let picks = self.tap.replay_random(count, &mut self.adv_rng);
            for msg in picks {
                self.inject_now(msg);
            }
            self.sim.schedule_at(now + every, Ev::AdversaryTick);
        }
    }

    fn finish(self) -> ScenarioOutcome {
        let (final_next_seq, final_right_edge) = match &self.proto {
            Proto::Sf { p, q } => (p.next_seq().value(), q.right_edge().value()),
            Proto::Base { p, q } => (p.next_seq().value(), q.right_edge().value()),
            Proto::Esp { tx, rx, .. } => (
                tx.next_seq(ESP_SPI).expect("sa installed").value(),
                rx.right_edge(ESP_SPI).expect("sa installed").value(),
            ),
        };
        let per_sa: Vec<Report> = self
            .monitors
            .into_iter()
            .map(Monitor::into_report)
            .collect();
        ScenarioOutcome {
            monitor: aggregate_reports(&per_sa),
            per_sa,
            dropped_down: self.dropped_down,
            link: self.link.stats(),
            injected: self.tap.injected(),
            final_next_seq,
            final_right_edge,
            sender_resets: self.p_resets,
            receiver_resets: self.q_resets,
            end_time: self.sim.now(),
        }
    }
}

/// Folds the fleet's per-SA reports into one via [`Report::merge`]
/// (counters sum, violations concatenate in SPI order). `clean()` on
/// the aggregate therefore means every SA's run was clean.
fn aggregate_reports(per_sa: &[Report]) -> Report {
    let mut total = Report::default();
    for r in per_sa {
        total.merge(r);
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_scenario_is_clean() {
        let out = run_scenario(ScenarioConfig::default());
        assert!(out.monitor.clean(), "{:?}", out.monitor.violations);
        assert!(out.monitor.sent > 1000, "paper rate over 10ms");
        assert_eq!(out.monitor.fresh_discarded, 0);
        assert_eq!(out.monitor.replays_accepted, 0);
    }

    #[test]
    fn scenario_report_renders_the_unified_schema() {
        let out = run_scenario(ScenarioConfig::default());
        let report = out.to_run_report(0);
        assert_eq!(report.totals.delivered, out.monitor.fresh_delivered);
        let json = report.render_json();
        assert!(
            json.starts_with("{\"schema\":\"reset-report/v1\",\"kind\":\"scenario\""),
            "{json}"
        );
        assert!(json.contains("\"final_right_edge\":"), "{json}");
    }

    #[test]
    fn reproducible_for_seed() {
        let run = |seed| {
            let cfg = ScenarioConfig {
                seed,
                link: LinkConfig::lossy(0.1),
                receiver_resets: vec![SimTime::from_millis(3)],
                adversary: AdversaryPlan::ReplayAllOnReceiverRestart,
                ..ScenarioConfig::default()
            };
            let o = run_scenario(cfg);
            (
                o.monitor.sent,
                o.monitor.fresh_delivered,
                o.final_right_edge,
            )
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7), run(8));
    }

    #[test]
    fn savefetch_sender_reset_no_fresh_loss_in_order() {
        let cfg = ScenarioConfig {
            sender_resets: vec![SimTime::from_millis(4)],
            ..ScenarioConfig::default()
        };
        let out = run_scenario(cfg);
        assert!(out.monitor.clean(), "{:?}", out.monitor.violations);
        assert_eq!(out.monitor.fresh_discarded, 0, "condition (i)");
        assert_eq!(out.monitor.replays_accepted, 0);
        assert!(out.monitor.seqs_lost_to_leaps <= 2 * 25);
        assert_eq!(out.sender_resets, 1);
    }

    #[test]
    fn savefetch_receiver_reset_bounded_loss_no_replays() {
        let cfg = ScenarioConfig {
            receiver_resets: vec![SimTime::from_millis(4)],
            adversary: AdversaryPlan::ReplayAllOnReceiverRestart,
            ..ScenarioConfig::default()
        };
        let out = run_scenario(cfg);
        assert!(out.monitor.clean(), "{:?}", out.monitor.violations);
        assert_eq!(out.monitor.replays_accepted, 0, "no replay accepted");
        assert!(out.monitor.replays_rejected > 0, "attack actually ran");
        assert!(
            out.monitor.fresh_discarded <= 2 * 25,
            "condition (ii): {} > 2K",
            out.monitor.fresh_discarded
        );
        assert!(out.dropped_down > 0, "downtime drops traffic");
    }

    #[test]
    fn baseline_receiver_reset_accepts_replays() {
        let cfg = ScenarioConfig {
            protocol: Protocol::Baseline,
            receiver_resets: vec![SimTime::from_millis(4)],
            adversary: AdversaryPlan::ReplayAllOnReceiverRestart,
            ..ScenarioConfig::default()
        };
        let out = run_scenario(cfg);
        assert!(
            out.monitor.replays_accepted > 100,
            "the §3 attack succeeds against the baseline: {}",
            out.monitor.replays_accepted
        );
        assert!(!out.monitor.clean());
    }

    #[test]
    fn baseline_sender_reset_discards_fresh() {
        let cfg = ScenarioConfig {
            protocol: Protocol::Baseline,
            sender_resets: vec![SimTime::from_millis(4)],
            ..ScenarioConfig::default()
        };
        let out = run_scenario(cfg);
        assert!(
            out.monitor.fresh_discarded > 100,
            "unbounded fresh loss: {}",
            out.monitor.fresh_discarded
        );
    }

    #[test]
    fn periodic_replay_noise_never_accepted_by_savefetch() {
        let cfg = ScenarioConfig {
            adversary: AdversaryPlan::PeriodicRandom {
                every: SimDuration::from_micros(100),
                count: 3,
            },
            link: LinkConfig::lossy(0.05),
            ..ScenarioConfig::default()
        };
        let out = run_scenario(cfg);
        assert_eq!(out.monitor.replays_accepted, 0);
        assert!(out.injected > 100);
        assert!(out.monitor.clean());
    }

    #[test]
    fn lossy_link_duplicates_never_double_deliver() {
        let cfg = ScenarioConfig {
            link: LinkConfig {
                drop_prob: 0.1,
                duplicate_prob: 0.2,
                ..LinkConfig::perfect()
            },
            ..ScenarioConfig::default()
        };
        let out = run_scenario(cfg);
        assert!(out.monitor.clean());
        assert_eq!(out.monitor.replays_accepted, 0, "dups never double-deliver");
    }

    /// The two real transforms the §3 experiments must sweep (auth-only
    /// is covered by the unit layers; it changes nothing here).
    const ESP_SUITES: [CryptoSuite; 2] = [
        CryptoSuite::HmacSha256WithKeystream,
        CryptoSuite::ChaCha20Poly1305,
    ];

    #[test]
    fn esp_transport_default_run_is_clean_for_both_suites() {
        for suite in ESP_SUITES {
            let cfg = ScenarioConfig {
                transport: Transport::esp(suite),
                duration: SimDuration::from_millis(5),
                ..ScenarioConfig::default()
            };
            let out = run_scenario(cfg);
            assert!(
                out.monitor.clean(),
                "{suite:?}: {:?}",
                out.monitor.violations
            );
            assert!(out.monitor.fresh_delivered > 500, "{suite:?}");
            assert_eq!(out.monitor.fresh_discarded, 0, "{suite:?}");
        }
    }

    #[test]
    fn esp_transport_savefetch_defeats_section3_attack_for_both_suites() {
        for suite in ESP_SUITES {
            let cfg = ScenarioConfig {
                transport: Transport::esp(suite),
                receiver_resets: vec![SimTime::from_millis(4)],
                adversary: AdversaryPlan::ReplayAllOnReceiverRestart,
                ..ScenarioConfig::default()
            };
            let out = run_scenario(cfg);
            assert!(
                out.monitor.clean(),
                "{suite:?}: {:?}",
                out.monitor.violations
            );
            assert_eq!(out.monitor.replays_accepted, 0, "{suite:?}");
            assert!(out.monitor.replays_rejected > 0, "{suite:?}: attack ran");
            assert!(
                out.monitor.fresh_discarded <= 2 * 25,
                "{suite:?}: condition (ii): {} > 2K",
                out.monitor.fresh_discarded
            );
            assert!(out.dropped_down > 0, "{suite:?}: downtime drops traffic");
        }
    }

    #[test]
    fn esp_transport_baseline_falls_to_section3_attack_for_both_suites() {
        for suite in ESP_SUITES {
            let cfg = ScenarioConfig {
                protocol: Protocol::Baseline,
                transport: Transport::esp(suite),
                receiver_resets: vec![SimTime::from_millis(4)],
                adversary: AdversaryPlan::ReplayAllOnReceiverRestart,
                ..ScenarioConfig::default()
            };
            let out = run_scenario(cfg);
            assert!(
                out.monitor.replays_accepted > 100,
                "{suite:?}: the naive restart must accept the replayed \
                 ciphertext wholesale: {}",
                out.monitor.replays_accepted
            );
            assert!(!out.monitor.clean(), "{suite:?}");
        }
    }

    #[test]
    fn esp_transport_baseline_sender_reset_discards_fresh() {
        let cfg = ScenarioConfig {
            protocol: Protocol::Baseline,
            transport: Transport::esp(CryptoSuite::default()),
            sender_resets: vec![SimTime::from_millis(4)],
            ..ScenarioConfig::default()
        };
        let out = run_scenario(cfg);
        assert!(
            out.monitor.fresh_discarded > 100,
            "counter restarted at 1 inside the receiver's window: {}",
            out.monitor.fresh_discarded
        );
    }

    #[test]
    fn esp_transport_matches_model_verdicts() {
        // The same seeded experiment must reach the same *qualitative*
        // verdict over real frames as over the abstract model.
        let run = |transport| {
            let cfg = ScenarioConfig {
                transport,
                receiver_resets: vec![SimTime::from_millis(3)],
                sender_resets: vec![SimTime::from_millis(6)],
                link: LinkConfig::lossy(0.05),
                adversary: AdversaryPlan::ReplayAllOnReceiverRestart,
                ..ScenarioConfig::default()
            };
            run_scenario(cfg)
        };
        let model = run(Transport::Model);
        let esp = run(Transport::esp(CryptoSuite::default()));
        for out in [&model, &esp] {
            assert!(out.monitor.clean(), "{:?}", out.monitor.violations);
            assert_eq!(out.monitor.replays_accepted, 0);
            assert!(out.monitor.replays_rejected > 0);
        }
        // Identical send schedules: the workload stream is transport-
        // independent.
        assert_eq!(model.monitor.sent, esp.monitor.sent);
    }

    #[test]
    fn esp_transport_is_reproducible_for_seed() {
        let run = |seed| {
            let cfg = ScenarioConfig {
                seed,
                transport: Transport::esp(CryptoSuite::ChaCha20Poly1305),
                link: LinkConfig::lossy(0.1),
                receiver_resets: vec![SimTime::from_millis(3)],
                adversary: AdversaryPlan::ReplayAllOnReceiverRestart,
                duration: SimDuration::from_millis(6),
                ..ScenarioConfig::default()
            };
            let o = run_scenario(cfg);
            (
                o.monitor.sent,
                o.monitor.fresh_delivered,
                o.final_right_edge,
            )
        };
        assert_eq!(run(11), run(11));
        assert_ne!(run(11), run(12));
    }

    #[test]
    fn multiple_resets_both_sides_stay_safe() {
        let cfg = ScenarioConfig {
            sender_resets: vec![SimTime::from_millis(2), SimTime::from_millis(6)],
            receiver_resets: vec![SimTime::from_millis(4), SimTime::from_millis(8)],
            adversary: AdversaryPlan::ReplayAllOnReceiverRestart,
            link: LinkConfig::lossy(0.02),
            ..ScenarioConfig::default()
        };
        let out = run_scenario(cfg);
        assert_eq!(out.monitor.replays_accepted, 0);
        assert!(out.monitor.clean(), "{:?}", out.monitor.violations);
        assert_eq!(out.sender_resets, 2);
        assert_eq!(out.receiver_resets, 2);
    }

    #[test]
    fn esp_fleet_reset_storm_holds_section3_invariant_per_sa() {
        let cfg = ScenarioConfig {
            transport: Transport::esp_fleet(CryptoSuite::default(), 96, 4),
            receiver_resets: vec![SimTime::from_millis(4), SimTime::from_millis(7)],
            sender_resets: vec![SimTime::from_millis(5)],
            adversary: AdversaryPlan::ReplayAllOnReceiverRestart,
            link: LinkConfig::lossy(0.02),
            ..ScenarioConfig::default()
        };
        let out = run_scenario(cfg);
        assert_eq!(out.per_sa.len(), 96);
        assert!(out.monitor.clean(), "{:?}", out.monitor.violations);
        assert!(out.monitor.replays_rejected > 0, "attack actually ran");
        let resets = out.receiver_resets + out.sender_resets;
        for (i, r) in out.per_sa.iter().enumerate() {
            assert_eq!(r.replays_accepted, 0, "SA {}", i + 1);
            assert!(
                r.fresh_discarded <= resets * 2 * 25,
                "SA {}: condition (ii) fleet-wide: {} > resets x 2K",
                i + 1,
                r.fresh_discarded
            );
        }
        // The round-robin workload actually exercised the whole fleet.
        assert!(out.per_sa.iter().all(|r| r.sent > 0));
    }

    #[test]
    fn esp_fleet_verdicts_are_shard_count_invariant() {
        // The scenario pushes one frame per link delivery, so per-SA
        // ground truth must be *identical* at any shard count — the
        // sharding is pure partitioning, not semantics.
        let run = |shards: usize| {
            let cfg = ScenarioConfig {
                seed: 23,
                transport: Transport::esp_fleet(CryptoSuite::default(), 32, shards),
                receiver_resets: vec![SimTime::from_millis(3)],
                adversary: AdversaryPlan::ReplayAllOnReceiverRestart,
                link: LinkConfig::lossy(0.05),
                duration: SimDuration::from_millis(6),
                ..ScenarioConfig::default()
            };
            run_scenario(cfg)
        };
        let one = run(1);
        let four = run(4);
        let eight = run(8);
        assert_eq!(one.per_sa, four.per_sa);
        assert_eq!(one.per_sa, eight.per_sa);
        assert_eq!(one.final_right_edge, four.final_right_edge);
        assert!(one.monitor.clean(), "{:?}", one.monitor.violations);
    }

    #[test]
    fn esp_fleet_baseline_falls_to_the_attack_on_every_sa_it_reaches() {
        let cfg = ScenarioConfig {
            protocol: Protocol::Baseline,
            transport: Transport::esp_fleet(CryptoSuite::default(), 16, 2),
            receiver_resets: vec![SimTime::from_millis(4)],
            adversary: AdversaryPlan::ReplayAllOnReceiverRestart,
            ..ScenarioConfig::default()
        };
        let out = run_scenario(cfg);
        assert!(
            out.monitor.replays_accepted > 100,
            "the naive fleet restart accepts the replayed ciphertext wholesale: {}",
            out.monitor.replays_accepted
        );
        assert!(!out.monitor.clean());
        // The damage is fleet-wide, not confined to one SA.
        let hit = out.per_sa.iter().filter(|r| r.replays_accepted > 0).count();
        assert!(hit >= 8, "only {hit}/16 SAs hit by the replay storm");
    }
}

//! The timed scenario runner: one unidirectional SA under faults.
//!
//! A scenario wires together the paper's whole cast: sender `p` and
//! receiver `q` (SAVE/FETCH or the §2/§3 baseline), the faulty channel,
//! the replay adversary, the background-save latency of the persistent
//! store, reset/wake-up schedules, and an online [`Monitor`] checking the
//! §5 guarantees. All randomness forks from one seed; runs are exactly
//! reproducible.

use std::collections::VecDeque;

use anti_replay::{
    BaselineReceiver, BaselineSender, Monitor, MsgId, Origin, Phase, Report, RxOutcome, SeqNum,
    SfReceiver, SfSender,
};
use reset_channel::{Link, LinkConfig, LinkStats, Tap};
use reset_sim::{DetRng, SimDuration, SimTime, Simulator};
use reset_stable::{MemStable, SaveLatencyModel, SlotId};

use crate::workload::Workload;

/// Which protocol variant runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Protocol {
    /// §4: SAVE/FETCH with the `2K` leap.
    SaveFetch,
    /// §2 protocol with the §3 naive restart (the vulnerable baseline).
    Baseline,
}

/// What the adversary does during the run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdversaryPlan {
    /// Passive (records but never injects).
    None,
    /// Replays the entire recorded history the moment the receiver
    /// restarts — the §3 attack on a reset receiver.
    ReplayAllOnReceiverRestart,
    /// Replays the highest recorded sequence number after a restart —
    /// the §3 blackhole attack (aimed at a freshly reset receiver while
    /// the sender also restarted).
    ReplayLatestOnRestart,
    /// Injects `count` random recorded messages every `every`.
    PeriodicRandom {
        /// Injection period.
        every: SimDuration,
        /// Copies per injection.
        count: usize,
    },
}

/// Full scenario parameterization.
#[derive(Debug, Clone)]
pub struct ScenarioConfig {
    /// Root RNG seed.
    pub seed: u64,
    /// Protocol variant.
    pub protocol: Protocol,
    /// Sender save interval `Kp`.
    pub kp: u64,
    /// Receiver save interval `Kq`.
    pub kq: u64,
    /// Anti-replay window size `w`.
    pub w: u64,
    /// Message arrival process.
    pub workload: Workload,
    /// SAVE device latency.
    pub save_latency: SaveLatencyModel,
    /// Channel faults.
    pub link: LinkConfig,
    /// Virtual run length.
    pub duration: SimDuration,
    /// Instants at which the sender is reset.
    pub sender_resets: Vec<SimTime>,
    /// Instants at which the receiver is reset.
    pub receiver_resets: Vec<SimTime>,
    /// How long a reset machine stays down before waking.
    pub downtime: SimDuration,
    /// Adversary behaviour.
    pub adversary: AdversaryPlan,
}

impl Default for ScenarioConfig {
    fn default() -> Self {
        ScenarioConfig {
            seed: 0,
            protocol: Protocol::SaveFetch,
            kp: 25,
            kq: 25,
            w: 64,
            workload: Workload::paper_rate(),
            save_latency: SaveLatencyModel::paper_disk(),
            link: LinkConfig::perfect(),
            duration: SimDuration::from_millis(10),
            sender_resets: Vec::new(),
            receiver_resets: Vec::new(),
            downtime: SimDuration::from_millis(1),
            adversary: AdversaryPlan::None,
        }
    }
}

/// Everything a finished run reports.
#[derive(Debug, Clone)]
pub struct ScenarioOutcome {
    /// The monitor's ground-truth report (§5 guarantees).
    pub monitor: Report,
    /// Messages whose delivery hit a down receiver.
    pub dropped_down: u64,
    /// Channel statistics.
    pub link: LinkStats,
    /// Adversary injections performed.
    pub injected: u64,
    /// Final sender counter (next to send).
    pub final_next_seq: u64,
    /// Final receiver right edge.
    pub final_right_edge: u64,
    /// Sender resets executed.
    pub sender_resets: u64,
    /// Receiver resets executed.
    pub receiver_resets: u64,
    /// Virtual time at the end of the run.
    pub end_time: SimTime,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Side {
    P,
    Q,
}

/// One message instance on the wire: the sequence number the protocol
/// sees plus the ground-truth instance identity the monitor tracks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Msg {
    id: MsgId,
    seq: SeqNum,
}

#[derive(Debug, Clone)]
#[allow(clippy::large_enum_variant)] // Msg is 3 words; boxing would cost more
enum Ev {
    Send,
    Deliver(Msg, Origin),
    SaveDone(Side),
    Reset(Side),
    Wake(Side),
    FinishWake(Side),
    AdversaryTick,
}

#[allow(clippy::large_enum_variant)] // one Proto per scenario; size is irrelevant
enum Proto {
    Sf {
        p: SfSender<MemStable>,
        q: SfReceiver<MemStable>,
    },
    Base {
        p: BaselineSender,
        q: BaselineReceiver,
    },
}

/// Runs one scenario to completion.
///
/// # Examples
///
/// ```
/// use reset_harness::{run_scenario, ScenarioConfig};
///
/// let outcome = run_scenario(ScenarioConfig::default());
/// assert!(outcome.monitor.clean());
/// assert!(outcome.monitor.fresh_delivered > 0);
/// ```
pub fn run_scenario(config: ScenarioConfig) -> ScenarioOutcome {
    ScenarioRunner::new(config).run()
}

struct ScenarioRunner {
    cfg: ScenarioConfig,
    sim: Simulator<Ev>,
    proto: Proto,
    monitor: Monitor,
    tap: Tap<Msg>,
    link: Link,
    workload: Workload,
    workload_rng: DetRng,
    latency_rng: DetRng,
    adv_rng: DetRng,
    p_save_outstanding: bool,
    q_save_outstanding: bool,
    buffered_meta: VecDeque<(MsgId, Origin)>,
    next_msg_id: u64,
    dropped_down: u64,
    p_next_at_reset: SeqNum,
    p_resets: u64,
    q_resets: u64,
    /// Baseline both-reset bookkeeping for ReplayLatestOnRestart.
    pending_latest_replay: bool,
}

impl ScenarioRunner {
    fn new(cfg: ScenarioConfig) -> Self {
        let mut sim = Simulator::new(cfg.seed);
        let link_rng = sim.rng().fork();
        let workload_rng = sim.rng().fork();
        let latency_rng = sim.rng().fork();
        let adv_rng = sim.rng().fork();
        let proto = match cfg.protocol {
            Protocol::SaveFetch => Proto::Sf {
                p: SfSender::new(MemStable::new(), SlotId::sender(1), cfg.kp),
                q: SfReceiver::new(MemStable::new(), SlotId::receiver(1), cfg.kq, cfg.w),
            },
            Protocol::Baseline => Proto::Base {
                p: BaselineSender::new(),
                q: BaselineReceiver::new(cfg.w),
            },
        };
        let link = Link::new(cfg.link, link_rng);
        let workload = cfg.workload.clone();
        ScenarioRunner {
            cfg,
            sim,
            proto,
            monitor: Monitor::new(),
            tap: Tap::new(),
            link,
            workload,
            workload_rng,
            latency_rng,
            adv_rng,
            p_save_outstanding: false,
            q_save_outstanding: false,
            buffered_meta: VecDeque::new(),
            next_msg_id: 0,
            dropped_down: 0,
            p_next_at_reset: SeqNum::ZERO,
            p_resets: 0,
            q_resets: 0,
            pending_latest_replay: false,
        }
    }

    fn run(mut self) -> ScenarioOutcome {
        self.sim.schedule_at(SimTime::ZERO, Ev::Send);
        for &t in &self.cfg.sender_resets {
            self.sim.schedule_at(t, Ev::Reset(Side::P));
        }
        for &t in &self.cfg.receiver_resets {
            self.sim.schedule_at(t, Ev::Reset(Side::Q));
        }
        if let AdversaryPlan::PeriodicRandom { every, .. } = self.cfg.adversary {
            self.sim
                .schedule_at(SimTime::ZERO + every, Ev::AdversaryTick);
        }
        let deadline = SimTime::ZERO + self.cfg.duration;
        // Pump events; the handler needs &mut self alongside &mut sim, so
        // the loop is hand-rolled rather than using Simulator::run.
        loop {
            match self.sim.peek_time() {
                Some(t) if t <= deadline => {}
                _ => break,
            }
            let (now, ev) = self.sim.next_event().expect("peeked");
            self.handle(now, ev);
        }
        self.finish()
    }

    fn handle(&mut self, now: SimTime, ev: Ev) {
        match ev {
            Ev::Send => self.on_send(now),
            Ev::Deliver(seq, origin) => self.on_deliver(seq, origin),
            Ev::SaveDone(side) => self.on_save_done(side),
            Ev::Reset(side) => self.on_reset(now, side),
            Ev::Wake(side) => self.on_wake(now, side),
            Ev::FinishWake(side) => self.on_finish_wake(now, side),
            Ev::AdversaryTick => self.on_adversary_tick(now),
        }
    }

    fn on_send(&mut self, now: SimTime) {
        let sent = match &mut self.proto {
            Proto::Sf { p, .. } => p.send_next().expect("mem store"),
            Proto::Base { p, .. } => Some(p.send_next()),
        };
        if let Some(seq) = sent {
            let msg = Msg {
                id: MsgId(self.next_msg_id),
                seq,
            };
            self.next_msg_id += 1;
            self.monitor.on_send(msg.id, seq);
            self.tap.record(msg);
            self.transmit(now, msg, true);
            self.maybe_schedule_save(Side::P, now);
        }
        let gap = self.workload.next_gap(&mut self.workload_rng);
        self.sim.schedule_at(now + gap, Ev::Send);
    }

    /// Pushes one message instance through the link; `fresh` marks the
    /// sender's original (vs an adversary injection).
    fn transmit(&mut self, now: SimTime, msg: Msg, fresh: bool) {
        let deliveries = self.link.transmit(now, msg);
        for (i, (at, msg)) in deliveries.into_iter().enumerate() {
            let origin = if !fresh {
                Origin::Adversary
            } else if i == 0 {
                Origin::Original
            } else {
                Origin::ChannelDup
            };
            self.sim.schedule_at(at, Ev::Deliver(msg, origin));
        }
    }

    fn on_deliver(&mut self, msg: Msg, origin: Origin) {
        match &mut self.proto {
            Proto::Sf { q, .. } => {
                let outcome = q.receive(msg.seq).expect("mem store");
                match outcome {
                    RxOutcome::Delivered => self.monitor.on_deliver(Some(msg.id), msg.seq, origin),
                    RxOutcome::DiscardedStale | RxOutcome::DiscardedDuplicate => {
                        self.monitor.on_discard(Some(msg.id), msg.seq, origin)
                    }
                    RxOutcome::Buffered => self.buffered_meta.push_back((msg.id, origin)),
                    RxOutcome::DroppedDown => self.dropped_down += 1,
                }
            }
            Proto::Base { q, .. } => {
                if q.receive(msg.seq).is_deliverable() {
                    self.monitor.on_deliver(Some(msg.id), msg.seq, origin);
                } else {
                    self.monitor.on_discard(Some(msg.id), msg.seq, origin);
                }
            }
        }
        // Receiver-side background save (SAVE/FETCH only).
        let now = self.sim.now();
        self.maybe_schedule_save(Side::Q, now);
    }

    fn maybe_schedule_save(&mut self, side: Side, now: SimTime) {
        let Proto::Sf { p, q } = &self.proto else {
            return;
        };
        let (pending, outstanding) = match side {
            Side::P => (p.pending_save().is_some(), self.p_save_outstanding),
            Side::Q => (q.pending_save().is_some(), self.q_save_outstanding),
        };
        if pending && !outstanding {
            let d = self.cfg.save_latency.sample_ns(self.latency_rng.next_u64());
            self.sim
                .schedule_at(now + SimDuration::from_nanos(d), Ev::SaveDone(side));
            match side {
                Side::P => self.p_save_outstanding = true,
                Side::Q => self.q_save_outstanding = true,
            }
        }
    }

    fn on_save_done(&mut self, side: Side) {
        let Proto::Sf { p, q } = &mut self.proto else {
            return;
        };
        match side {
            Side::P => {
                self.p_save_outstanding = false;
                p.save_completed().expect("mem store");
            }
            Side::Q => {
                self.q_save_outstanding = false;
                q.save_completed().expect("mem store");
            }
        }
        // A superseding issue may already be pending again.
        let now = self.sim.now();
        self.maybe_schedule_save(side, now);
    }

    fn on_reset(&mut self, now: SimTime, side: Side) {
        match &mut self.proto {
            Proto::Sf { p, q } => match side {
                Side::P => {
                    if p.phase() == Phase::Running {
                        self.p_next_at_reset = p.next_seq();
                    }
                    p.reset();
                    self.p_resets += 1;
                    self.sim
                        .schedule_at(now + self.cfg.downtime, Ev::Wake(Side::P));
                }
                Side::Q => {
                    // Buffered instances die with the machine.
                    self.buffered_meta.clear();
                    q.reset();
                    self.q_resets += 1;
                    self.sim
                        .schedule_at(now + self.cfg.downtime, Ev::Wake(Side::Q));
                }
            },
            Proto::Base { p, q } => match side {
                Side::P => {
                    let old_next = p.next_seq();
                    p.reset_and_wake();
                    self.p_resets += 1;
                    // The baseline "resumes" at 1 — the monitor records the
                    // stale resume as a violation, which t3 reports.
                    self.monitor
                        .on_sender_wakeup(old_next, SeqNum::FIRST, self.cfg.kp);
                    if self.cfg.adversary == AdversaryPlan::ReplayLatestOnRestart {
                        self.pending_latest_replay = true;
                        self.try_latest_replay();
                    }
                }
                Side::Q => {
                    q.reset_and_wake();
                    self.q_resets += 1;
                    match self.cfg.adversary {
                        AdversaryPlan::ReplayAllOnReceiverRestart => self.replay_all(),
                        AdversaryPlan::ReplayLatestOnRestart => {
                            self.pending_latest_replay = true;
                            self.try_latest_replay();
                        }
                        _ => {}
                    }
                }
            },
        }
    }

    /// Adversary injection happens at the receiver's last hop: the §2
    /// threat model lets the adversary insert copies "at any instant",
    /// so injections do not queue behind in-flight fresh traffic.
    fn inject_now(&mut self, msg: Msg) {
        self.sim.schedule_now(Ev::Deliver(msg, Origin::Adversary));
    }

    fn try_latest_replay(&mut self) {
        if self.pending_latest_replay {
            if let Some(msg) = self.tap.replay_latest() {
                self.inject_now(msg);
                self.pending_latest_replay = false;
            }
        }
    }

    fn replay_all(&mut self) {
        for msg in self.tap.replay_all() {
            self.inject_now(msg);
        }
    }

    fn on_wake(&mut self, now: SimTime, side: Side) {
        let Proto::Sf { p, q } = &mut self.proto else {
            return;
        };
        let d = self.cfg.save_latency.sample_ns(self.latency_rng.next_u64());
        match side {
            Side::P => {
                if p.phase() != Phase::Down {
                    return; // stale wake after overlapping resets
                }
                p.begin_wakeup().expect("mem store");
                self.sim
                    .schedule_at(now + SimDuration::from_nanos(d), Ev::FinishWake(Side::P));
            }
            Side::Q => {
                if q.phase() != Phase::Down {
                    return;
                }
                q.begin_wakeup().expect("mem store");
                self.sim
                    .schedule_at(now + SimDuration::from_nanos(d), Ev::FinishWake(Side::Q));
            }
        }
    }

    fn on_finish_wake(&mut self, _now: SimTime, side: Side) {
        let Proto::Sf { p, q } = &mut self.proto else {
            return;
        };
        match side {
            Side::P => {
                if p.phase() != Phase::Waking {
                    return;
                }
                let resumed = p.finish_wakeup().expect("mem store");
                self.monitor
                    .on_sender_wakeup(self.p_next_at_reset, resumed, self.cfg.kp);
            }
            Side::Q => {
                if q.phase() != Phase::Waking {
                    return;
                }
                let outcomes = q.finish_wakeup().expect("mem store");
                for (seq, outcome) in outcomes {
                    let (id, origin) = self
                        .buffered_meta
                        .pop_front()
                        .map(|(i, o)| (Some(i), o))
                        .unwrap_or((None, Origin::Original));
                    match outcome {
                        RxOutcome::Delivered => self.monitor.on_deliver(id, seq, origin),
                        _ => self.monitor.on_discard(id, seq, origin),
                    }
                }
                match self.cfg.adversary {
                    AdversaryPlan::ReplayAllOnReceiverRestart => self.replay_all(),
                    AdversaryPlan::ReplayLatestOnRestart => {
                        self.pending_latest_replay = true;
                        self.try_latest_replay();
                    }
                    _ => {}
                }
            }
        }
    }

    fn on_adversary_tick(&mut self, now: SimTime) {
        if let AdversaryPlan::PeriodicRandom { every, count } = self.cfg.adversary {
            let picks = self.tap.replay_random(count, &mut self.adv_rng);
            for msg in picks {
                self.inject_now(msg);
            }
            self.sim.schedule_at(now + every, Ev::AdversaryTick);
        }
    }

    fn finish(self) -> ScenarioOutcome {
        let (final_next_seq, final_right_edge) = match &self.proto {
            Proto::Sf { p, q } => (p.next_seq().value(), q.right_edge().value()),
            Proto::Base { p, q } => (p.next_seq().value(), q.right_edge().value()),
        };
        ScenarioOutcome {
            monitor: self.monitor.into_report(),
            dropped_down: self.dropped_down,
            link: self.link.stats(),
            injected: self.tap.injected(),
            final_next_seq,
            final_right_edge,
            sender_resets: self.p_resets,
            receiver_resets: self.q_resets,
            end_time: self.sim.now(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_scenario_is_clean() {
        let out = run_scenario(ScenarioConfig::default());
        assert!(out.monitor.clean(), "{:?}", out.monitor.violations);
        assert!(out.monitor.sent > 1000, "paper rate over 10ms");
        assert_eq!(out.monitor.fresh_discarded, 0);
        assert_eq!(out.monitor.replays_accepted, 0);
    }

    #[test]
    fn reproducible_for_seed() {
        let run = |seed| {
            let cfg = ScenarioConfig {
                seed,
                link: LinkConfig::lossy(0.1),
                receiver_resets: vec![SimTime::from_millis(3)],
                adversary: AdversaryPlan::ReplayAllOnReceiverRestart,
                ..ScenarioConfig::default()
            };
            let o = run_scenario(cfg);
            (
                o.monitor.sent,
                o.monitor.fresh_delivered,
                o.final_right_edge,
            )
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7), run(8));
    }

    #[test]
    fn savefetch_sender_reset_no_fresh_loss_in_order() {
        let cfg = ScenarioConfig {
            sender_resets: vec![SimTime::from_millis(4)],
            ..ScenarioConfig::default()
        };
        let out = run_scenario(cfg);
        assert!(out.monitor.clean(), "{:?}", out.monitor.violations);
        assert_eq!(out.monitor.fresh_discarded, 0, "condition (i)");
        assert_eq!(out.monitor.replays_accepted, 0);
        assert!(out.monitor.seqs_lost_to_leaps <= 2 * 25);
        assert_eq!(out.sender_resets, 1);
    }

    #[test]
    fn savefetch_receiver_reset_bounded_loss_no_replays() {
        let cfg = ScenarioConfig {
            receiver_resets: vec![SimTime::from_millis(4)],
            adversary: AdversaryPlan::ReplayAllOnReceiverRestart,
            ..ScenarioConfig::default()
        };
        let out = run_scenario(cfg);
        assert!(out.monitor.clean(), "{:?}", out.monitor.violations);
        assert_eq!(out.monitor.replays_accepted, 0, "no replay accepted");
        assert!(out.monitor.replays_rejected > 0, "attack actually ran");
        assert!(
            out.monitor.fresh_discarded <= 2 * 25,
            "condition (ii): {} > 2K",
            out.monitor.fresh_discarded
        );
        assert!(out.dropped_down > 0, "downtime drops traffic");
    }

    #[test]
    fn baseline_receiver_reset_accepts_replays() {
        let cfg = ScenarioConfig {
            protocol: Protocol::Baseline,
            receiver_resets: vec![SimTime::from_millis(4)],
            adversary: AdversaryPlan::ReplayAllOnReceiverRestart,
            ..ScenarioConfig::default()
        };
        let out = run_scenario(cfg);
        assert!(
            out.monitor.replays_accepted > 100,
            "the §3 attack succeeds against the baseline: {}",
            out.monitor.replays_accepted
        );
        assert!(!out.monitor.clean());
    }

    #[test]
    fn baseline_sender_reset_discards_fresh() {
        let cfg = ScenarioConfig {
            protocol: Protocol::Baseline,
            sender_resets: vec![SimTime::from_millis(4)],
            ..ScenarioConfig::default()
        };
        let out = run_scenario(cfg);
        assert!(
            out.monitor.fresh_discarded > 100,
            "unbounded fresh loss: {}",
            out.monitor.fresh_discarded
        );
    }

    #[test]
    fn periodic_replay_noise_never_accepted_by_savefetch() {
        let cfg = ScenarioConfig {
            adversary: AdversaryPlan::PeriodicRandom {
                every: SimDuration::from_micros(100),
                count: 3,
            },
            link: LinkConfig::lossy(0.05),
            ..ScenarioConfig::default()
        };
        let out = run_scenario(cfg);
        assert_eq!(out.monitor.replays_accepted, 0);
        assert!(out.injected > 100);
        assert!(out.monitor.clean());
    }

    #[test]
    fn lossy_link_duplicates_never_double_deliver() {
        let cfg = ScenarioConfig {
            link: LinkConfig {
                drop_prob: 0.1,
                duplicate_prob: 0.2,
                ..LinkConfig::perfect()
            },
            ..ScenarioConfig::default()
        };
        let out = run_scenario(cfg);
        assert!(out.monitor.clean());
        assert_eq!(out.monitor.replays_accepted, 0, "dups never double-deliver");
    }

    #[test]
    fn multiple_resets_both_sides_stay_safe() {
        let cfg = ScenarioConfig {
            sender_resets: vec![SimTime::from_millis(2), SimTime::from_millis(6)],
            receiver_resets: vec![SimTime::from_millis(4), SimTime::from_millis(8)],
            adversary: AdversaryPlan::ReplayAllOnReceiverRestart,
            link: LinkConfig::lossy(0.02),
            ..ScenarioConfig::default()
        };
        let out = run_scenario(cfg);
        assert_eq!(out.monitor.replays_accepted, 0);
        assert!(out.monitor.clean(), "{:?}", out.monitor.violations);
        assert_eq!(out.sender_resets, 2);
        assert_eq!(out.receiver_resets, 2);
    }
}

//! The timed scenario runner: one unidirectional SA under faults.
//!
//! A scenario wires together the paper's whole cast: sender `p` and
//! receiver `q` (SAVE/FETCH or the §2/§3 baseline), the faulty channel,
//! the replay adversary, the background-save latency of the persistent
//! store, reset/wake-up schedules, and an online [`Monitor`] checking the
//! §5 guarantees. All randomness forks from one seed; runs are exactly
//! reproducible.
//!
//! Two [`Transport`]s drive the same experiment matrix: the abstract
//! sequence-number model (fast, crypto-free) and the real ESP datapath —
//! a [`reset_ipsec::Gateway`] pair exchanging suite-framed wire bytes
//! over the faulty link, so every fault/adversary/reset scenario can
//! sweep cipher suites too.

use std::collections::VecDeque;

use anti_replay::{
    BaselineReceiver, BaselineSender, Monitor, MsgId, Origin, Phase, Report, RxOutcome, SeqNum,
    SfReceiver, SfSender,
};
use bytes::Bytes;
use reset_channel::{Link, LinkConfig, LinkStats, Tap};
use reset_ipsec::{
    CryptoSuite, Gateway, GatewayBuilder, GatewayEvent, SaKeys, SecurityAssociation,
};
use reset_sim::{DetRng, SimDuration, SimTime, Simulator};
use reset_stable::{MemStable, SaveLatencyModel, SlotId};

use crate::workload::Workload;

/// Which protocol variant runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Protocol {
    /// §4: SAVE/FETCH with the `2K` leap.
    SaveFetch,
    /// §2 protocol with the §3 naive restart (the vulnerable baseline).
    Baseline,
}

/// What actually crosses the link.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Transport {
    /// Abstract sequence numbers (the paper's model): no bytes, no
    /// crypto — fastest, and the default.
    Model,
    /// Real ESP frames sealed under `suite` by a [`reset_ipsec::Gateway`]
    /// pair: the adversary replays recorded *ciphertext*, resets strike
    /// whole gateways, and recovery runs the engine's SAVE/FETCH path.
    /// Under [`Protocol::Baseline`] a reset rebuilds the struck gateway
    /// from scratch (the §3 naive restart: counters at 1, window empty).
    Esp {
        /// Cipher suite the SA pair negotiates.
        suite: CryptoSuite,
    },
}

/// What the adversary does during the run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdversaryPlan {
    /// Passive (records but never injects).
    None,
    /// Replays the entire recorded history the moment the receiver
    /// restarts — the §3 attack on a reset receiver.
    ReplayAllOnReceiverRestart,
    /// Replays the highest recorded sequence number after a restart —
    /// the §3 blackhole attack (aimed at a freshly reset receiver while
    /// the sender also restarted).
    ReplayLatestOnRestart,
    /// Injects `count` random recorded messages every `every`.
    PeriodicRandom {
        /// Injection period.
        every: SimDuration,
        /// Copies per injection.
        count: usize,
    },
}

/// Full scenario parameterization.
#[derive(Debug, Clone)]
pub struct ScenarioConfig {
    /// Root RNG seed.
    pub seed: u64,
    /// Protocol variant.
    pub protocol: Protocol,
    /// What crosses the link: the abstract model or real ESP frames.
    pub transport: Transport,
    /// Sender save interval `Kp`.
    pub kp: u64,
    /// Receiver save interval `Kq`.
    pub kq: u64,
    /// Anti-replay window size `w`.
    pub w: u64,
    /// Message arrival process.
    pub workload: Workload,
    /// SAVE device latency.
    pub save_latency: SaveLatencyModel,
    /// Channel faults.
    pub link: LinkConfig,
    /// Virtual run length.
    pub duration: SimDuration,
    /// Instants at which the sender is reset.
    pub sender_resets: Vec<SimTime>,
    /// Instants at which the receiver is reset.
    pub receiver_resets: Vec<SimTime>,
    /// How long a reset machine stays down before waking.
    pub downtime: SimDuration,
    /// Adversary behaviour.
    pub adversary: AdversaryPlan,
}

impl Default for ScenarioConfig {
    fn default() -> Self {
        ScenarioConfig {
            seed: 0,
            protocol: Protocol::SaveFetch,
            transport: Transport::Model,
            kp: 25,
            kq: 25,
            w: 64,
            workload: Workload::paper_rate(),
            save_latency: SaveLatencyModel::paper_disk(),
            link: LinkConfig::perfect(),
            duration: SimDuration::from_millis(10),
            sender_resets: Vec::new(),
            receiver_resets: Vec::new(),
            downtime: SimDuration::from_millis(1),
            adversary: AdversaryPlan::None,
        }
    }
}

/// Everything a finished run reports.
#[derive(Debug, Clone)]
pub struct ScenarioOutcome {
    /// The monitor's ground-truth report (§5 guarantees).
    pub monitor: Report,
    /// Messages whose delivery hit a down receiver.
    pub dropped_down: u64,
    /// Channel statistics.
    pub link: LinkStats,
    /// Adversary injections performed.
    pub injected: u64,
    /// Final sender counter (next to send).
    pub final_next_seq: u64,
    /// Final receiver right edge.
    pub final_right_edge: u64,
    /// Sender resets executed.
    pub sender_resets: u64,
    /// Receiver resets executed.
    pub receiver_resets: u64,
    /// Virtual time at the end of the run.
    pub end_time: SimTime,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Side {
    P,
    Q,
}

/// One message instance on the wire: the sequence number the protocol
/// sees, the ground-truth instance identity the monitor tracks, and —
/// under [`Transport::Esp`] — the sealed frame the adversary records
/// and replays byte-for-byte.
#[derive(Debug, Clone, PartialEq, Eq)]
struct Msg {
    id: MsgId,
    seq: SeqNum,
    wire: Option<Bytes>,
}

#[derive(Debug, Clone)]
#[allow(clippy::large_enum_variant)] // Msg is a few words; boxing would cost more
enum Ev {
    Send,
    Deliver(Msg, Origin),
    SaveDone(Side),
    Reset(Side),
    Wake(Side),
    FinishWake(Side),
    AdversaryTick,
}

#[allow(clippy::large_enum_variant)] // one Proto per scenario; size is irrelevant
enum Proto {
    Sf {
        p: SfSender<MemStable>,
        q: SfReceiver<MemStable>,
    },
    Base {
        p: BaselineSender,
        q: BaselineReceiver,
    },
    /// Real ESP frames through a [`Gateway`] pair. `baseline` selects
    /// the §3 naive restart (rebuild from scratch) over SAVE/FETCH.
    Esp {
        tx: Gateway<MemStable>,
        rx: Gateway<MemStable>,
        suite: CryptoSuite,
        baseline: bool,
    },
}

/// The single SA a [`Transport::Esp`] scenario runs over.
const ESP_SPI: u32 = 1;
/// Shared keying material both gateway halves derive the SA from.
const ESP_MASTER: &[u8] = b"scenario-esp-master";
/// Fixed application payload (the model transport carries none).
const ESP_PAYLOAD: &[u8] = b"scenario payload";

fn esp_sa(suite: CryptoSuite) -> SecurityAssociation {
    let keys = SaKeys::derive(ESP_MASTER, &ESP_SPI.to_be_bytes());
    SecurityAssociation::new(ESP_SPI, keys).with_suite(suite)
}

/// The sender half: a gateway holding only the outbound SA.
fn esp_tx_gateway(kp: u64, w: u64, suite: CryptoSuite) -> Gateway<MemStable> {
    let mut gw = GatewayBuilder::in_memory()
        .suite(suite)
        .save_interval(kp)
        .window(w)
        .build();
    gw.install_outbound(esp_sa(suite));
    gw
}

/// The receiver half: a gateway holding only the inbound SA.
fn esp_rx_gateway(kq: u64, w: u64, suite: CryptoSuite) -> Gateway<MemStable> {
    let mut gw = GatewayBuilder::in_memory()
        .suite(suite)
        .save_interval(kq)
        .window(w)
        .build();
    gw.install_inbound(esp_sa(suite));
    gw
}

/// Runs one scenario to completion.
///
/// # Examples
///
/// ```
/// use reset_harness::{run_scenario, ScenarioConfig};
///
/// let outcome = run_scenario(ScenarioConfig::default());
/// assert!(outcome.monitor.clean());
/// assert!(outcome.monitor.fresh_delivered > 0);
/// ```
pub fn run_scenario(config: ScenarioConfig) -> ScenarioOutcome {
    ScenarioRunner::new(config).run()
}

struct ScenarioRunner {
    cfg: ScenarioConfig,
    sim: Simulator<Ev>,
    proto: Proto,
    monitor: Monitor,
    tap: Tap<Msg>,
    link: Link,
    workload: Workload,
    workload_rng: DetRng,
    latency_rng: DetRng,
    adv_rng: DetRng,
    p_save_outstanding: bool,
    q_save_outstanding: bool,
    buffered_meta: VecDeque<(MsgId, Origin)>,
    next_msg_id: u64,
    dropped_down: u64,
    p_next_at_reset: SeqNum,
    p_resets: u64,
    q_resets: u64,
    /// Baseline both-reset bookkeeping for ReplayLatestOnRestart.
    pending_latest_replay: bool,
}

impl ScenarioRunner {
    fn new(cfg: ScenarioConfig) -> Self {
        let mut sim = Simulator::new(cfg.seed);
        let link_rng = sim.rng().fork();
        let workload_rng = sim.rng().fork();
        let latency_rng = sim.rng().fork();
        let adv_rng = sim.rng().fork();
        let proto = match (cfg.protocol, cfg.transport) {
            (Protocol::SaveFetch, Transport::Model) => Proto::Sf {
                p: SfSender::new(MemStable::new(), SlotId::sender(1), cfg.kp),
                q: SfReceiver::new(MemStable::new(), SlotId::receiver(1), cfg.kq, cfg.w),
            },
            (Protocol::Baseline, Transport::Model) => Proto::Base {
                p: BaselineSender::new(),
                q: BaselineReceiver::new(cfg.w),
            },
            (protocol, Transport::Esp { suite }) => Proto::Esp {
                tx: esp_tx_gateway(cfg.kp, cfg.w, suite),
                rx: esp_rx_gateway(cfg.kq, cfg.w, suite),
                suite,
                baseline: protocol == Protocol::Baseline,
            },
        };
        let link = Link::new(cfg.link, link_rng);
        let workload = cfg.workload.clone();
        ScenarioRunner {
            cfg,
            sim,
            proto,
            monitor: Monitor::new(),
            tap: Tap::new(),
            link,
            workload,
            workload_rng,
            latency_rng,
            adv_rng,
            p_save_outstanding: false,
            q_save_outstanding: false,
            buffered_meta: VecDeque::new(),
            next_msg_id: 0,
            dropped_down: 0,
            p_next_at_reset: SeqNum::ZERO,
            p_resets: 0,
            q_resets: 0,
            pending_latest_replay: false,
        }
    }

    fn run(mut self) -> ScenarioOutcome {
        self.sim.schedule_at(SimTime::ZERO, Ev::Send);
        for &t in &self.cfg.sender_resets {
            self.sim.schedule_at(t, Ev::Reset(Side::P));
        }
        for &t in &self.cfg.receiver_resets {
            self.sim.schedule_at(t, Ev::Reset(Side::Q));
        }
        if let AdversaryPlan::PeriodicRandom { every, .. } = self.cfg.adversary {
            self.sim
                .schedule_at(SimTime::ZERO + every, Ev::AdversaryTick);
        }
        let deadline = SimTime::ZERO + self.cfg.duration;
        // Pump events; the handler needs &mut self alongside &mut sim, so
        // the loop is hand-rolled rather than using Simulator::run.
        loop {
            match self.sim.peek_time() {
                Some(t) if t <= deadline => {}
                _ => break,
            }
            let (now, ev) = self.sim.next_event().expect("peeked");
            self.handle(now, ev);
        }
        self.finish()
    }

    fn handle(&mut self, now: SimTime, ev: Ev) {
        match ev {
            Ev::Send => self.on_send(now),
            Ev::Deliver(seq, origin) => self.on_deliver(seq, origin),
            Ev::SaveDone(side) => self.on_save_done(side),
            Ev::Reset(side) => self.on_reset(now, side),
            Ev::Wake(side) => self.on_wake(now, side),
            Ev::FinishWake(side) => self.on_finish_wake(now, side),
            Ev::AdversaryTick => self.on_adversary_tick(now),
        }
    }

    fn on_send(&mut self, now: SimTime) {
        let sent = match &mut self.proto {
            Proto::Sf { p, .. } => p.send_next().expect("mem store").map(|seq| (seq, None)),
            Proto::Base { p, .. } => Some((p.send_next(), None)),
            Proto::Esp { tx, .. } => tx
                .protect(ESP_SPI, ESP_PAYLOAD)
                .expect("mem store")
                .map(|frame| (frame.seq, Some(frame.wire))),
        };
        if let Some((seq, wire)) = sent {
            let msg = Msg {
                id: MsgId(self.next_msg_id),
                seq,
                wire,
            };
            self.next_msg_id += 1;
            self.monitor.on_send(msg.id, seq);
            self.tap.record(msg.clone());
            self.transmit(now, msg, true);
            self.maybe_schedule_save(Side::P, now);
        }
        let gap = self.workload.next_gap(&mut self.workload_rng);
        self.sim.schedule_at(now + gap, Ev::Send);
    }

    /// Pushes one message instance through the link; `fresh` marks the
    /// sender's original (vs an adversary injection).
    fn transmit(&mut self, now: SimTime, msg: Msg, fresh: bool) {
        let deliveries = self.link.transmit(now, msg);
        for (i, (at, msg)) in deliveries.into_iter().enumerate() {
            let origin = if !fresh {
                Origin::Adversary
            } else if i == 0 {
                Origin::Original
            } else {
                Origin::ChannelDup
            };
            self.sim.schedule_at(at, Ev::Deliver(msg, origin));
        }
    }

    fn on_deliver(&mut self, msg: Msg, origin: Origin) {
        match &mut self.proto {
            Proto::Sf { q, .. } => {
                let outcome = q.receive(msg.seq).expect("mem store");
                match outcome {
                    RxOutcome::Delivered => self.monitor.on_deliver(Some(msg.id), msg.seq, origin),
                    RxOutcome::DiscardedStale | RxOutcome::DiscardedDuplicate => {
                        self.monitor.on_discard(Some(msg.id), msg.seq, origin)
                    }
                    RxOutcome::Buffered => self.buffered_meta.push_back((msg.id, origin)),
                    RxOutcome::DroppedDown => self.dropped_down += 1,
                }
            }
            Proto::Base { q, .. } => {
                if q.receive(msg.seq).is_deliverable() {
                    self.monitor.on_deliver(Some(msg.id), msg.seq, origin);
                } else {
                    self.monitor.on_discard(Some(msg.id), msg.seq, origin);
                }
            }
            Proto::Esp { rx, .. } => {
                let wire = msg.wire.as_ref().expect("esp transport frames carry bytes");
                rx.push_wire(wire).expect("mem store");
                let events = rx.poll_events();
                for ev in events {
                    self.note_gateway_event(ev, &msg, origin);
                }
            }
        }
        // Receiver-side background save (SAVE/FETCH only).
        let now = self.sim.now();
        self.maybe_schedule_save(Side::Q, now);
    }

    /// Maps one receiver-gateway event onto the monitor's ground truth.
    /// `msg` is the instance whose push produced the event.
    fn note_gateway_event(&mut self, ev: GatewayEvent, msg: &Msg, origin: Origin) {
        match ev {
            GatewayEvent::Delivered { seq, .. } => {
                self.monitor.on_deliver(Some(msg.id), seq, origin)
            }
            GatewayEvent::ReplayDropped { seq, .. } => {
                self.monitor.on_discard(Some(msg.id), seq, origin)
            }
            GatewayEvent::Buffered { .. } => self.buffered_meta.push_back((msg.id, origin)),
            GatewayEvent::DroppedDown { .. } => self.dropped_down += 1,
            // Genuine recorded frames always authenticate; reaching here
            // would be a harness bug, but count it as a discard rather
            // than corrupting the run.
            GatewayEvent::AuthFailed { .. } | GatewayEvent::UnknownSa { .. } => {
                self.monitor.on_discard(Some(msg.id), msg.seq, origin)
            }
            // No DPD/rekey policies are configured on scenario gateways.
            _ => {}
        }
    }

    fn maybe_schedule_save(&mut self, side: Side, now: SimTime) {
        let (pending, outstanding) = match (&self.proto, side) {
            (Proto::Sf { p, .. }, Side::P) => (p.pending_save().is_some(), self.p_save_outstanding),
            (Proto::Sf { q, .. }, Side::Q) => (q.pending_save().is_some(), self.q_save_outstanding),
            // The baseline performs no SAVEs (its restart ignores the
            // store), so only SAVE/FETCH gateways model save latency.
            (Proto::Esp { baseline: true, .. }, _) | (Proto::Base { .. }, _) => return,
            (Proto::Esp { tx, .. }, Side::P) => (tx.pending_save(), self.p_save_outstanding),
            (Proto::Esp { rx, .. }, Side::Q) => (rx.pending_save(), self.q_save_outstanding),
        };
        if pending && !outstanding {
            let d = self.cfg.save_latency.sample_ns(self.latency_rng.next_u64());
            self.sim
                .schedule_at(now + SimDuration::from_nanos(d), Ev::SaveDone(side));
            match side {
                Side::P => self.p_save_outstanding = true,
                Side::Q => self.q_save_outstanding = true,
            }
        }
    }

    fn on_save_done(&mut self, side: Side) {
        match (&mut self.proto, side) {
            (Proto::Sf { p, .. }, Side::P) => {
                self.p_save_outstanding = false;
                p.save_completed().expect("mem store");
            }
            (Proto::Sf { q, .. }, Side::Q) => {
                self.q_save_outstanding = false;
                q.save_completed().expect("mem store");
            }
            (Proto::Esp { baseline: true, .. }, _) | (Proto::Base { .. }, _) => return,
            (Proto::Esp { tx, .. }, Side::P) => {
                self.p_save_outstanding = false;
                tx.save_completed().expect("mem store");
            }
            (Proto::Esp { rx, .. }, Side::Q) => {
                self.q_save_outstanding = false;
                rx.save_completed().expect("mem store");
            }
        }
        // A superseding issue may already be pending again.
        let now = self.sim.now();
        self.maybe_schedule_save(side, now);
    }

    fn on_reset(&mut self, now: SimTime, side: Side) {
        match &mut self.proto {
            Proto::Sf { p, q } => match side {
                Side::P => {
                    if p.phase() == Phase::Running {
                        self.p_next_at_reset = p.next_seq();
                    }
                    p.reset();
                    self.p_resets += 1;
                    self.sim
                        .schedule_at(now + self.cfg.downtime, Ev::Wake(Side::P));
                }
                Side::Q => {
                    // Buffered instances die with the machine.
                    self.buffered_meta.clear();
                    q.reset();
                    self.q_resets += 1;
                    self.sim
                        .schedule_at(now + self.cfg.downtime, Ev::Wake(Side::Q));
                }
            },
            Proto::Base { p, q } => match side {
                Side::P => {
                    let old_next = p.next_seq();
                    p.reset_and_wake();
                    self.p_resets += 1;
                    // The baseline "resumes" at 1 — the monitor records the
                    // stale resume as a violation, which t3 reports.
                    self.monitor
                        .on_sender_wakeup(old_next, SeqNum::FIRST, self.cfg.kp);
                    if self.cfg.adversary == AdversaryPlan::ReplayLatestOnRestart {
                        self.pending_latest_replay = true;
                        self.try_latest_replay();
                    }
                }
                Side::Q => {
                    q.reset_and_wake();
                    self.q_resets += 1;
                    match self.cfg.adversary {
                        AdversaryPlan::ReplayAllOnReceiverRestart => self.replay_all(),
                        AdversaryPlan::ReplayLatestOnRestart => {
                            self.pending_latest_replay = true;
                            self.try_latest_replay();
                        }
                        _ => {}
                    }
                }
            },
            Proto::Esp {
                tx,
                rx,
                suite,
                baseline,
            } => {
                let suite = *suite;
                if *baseline {
                    // §3 naive restart over real frames: the struck
                    // gateway is rebuilt from scratch — counters at 1,
                    // window empty, same keys — and resumes immediately.
                    match side {
                        Side::P => {
                            let old_next = tx.next_seq(ESP_SPI).expect("sa installed");
                            *tx = esp_tx_gateway(self.cfg.kp, self.cfg.w, suite);
                            self.p_resets += 1;
                            self.monitor
                                .on_sender_wakeup(old_next, SeqNum::FIRST, self.cfg.kp);
                            if self.cfg.adversary == AdversaryPlan::ReplayLatestOnRestart {
                                self.pending_latest_replay = true;
                                self.try_latest_replay();
                            }
                        }
                        Side::Q => {
                            self.buffered_meta.clear();
                            *rx = esp_rx_gateway(self.cfg.kq, self.cfg.w, suite);
                            self.q_resets += 1;
                            match self.cfg.adversary {
                                AdversaryPlan::ReplayAllOnReceiverRestart => self.replay_all(),
                                AdversaryPlan::ReplayLatestOnRestart => {
                                    self.pending_latest_replay = true;
                                    self.try_latest_replay();
                                }
                                _ => {}
                            }
                        }
                    }
                } else {
                    // SAVE/FETCH: the gateway goes down and recovers
                    // through the engine's FETCH + 2K leap after the
                    // configured downtime.
                    match side {
                        Side::P => {
                            if tx.phase(ESP_SPI) == Some(Phase::Running) {
                                self.p_next_at_reset = tx.next_seq(ESP_SPI).expect("sa installed");
                            }
                            tx.reset();
                            self.p_resets += 1;
                            self.sim
                                .schedule_at(now + self.cfg.downtime, Ev::Wake(Side::P));
                        }
                        Side::Q => {
                            self.buffered_meta.clear();
                            rx.reset();
                            self.q_resets += 1;
                            self.sim
                                .schedule_at(now + self.cfg.downtime, Ev::Wake(Side::Q));
                        }
                    }
                }
            }
        }
    }

    /// Adversary injection happens at the receiver's last hop: the §2
    /// threat model lets the adversary insert copies "at any instant",
    /// so injections do not queue behind in-flight fresh traffic.
    fn inject_now(&mut self, msg: Msg) {
        self.sim.schedule_now(Ev::Deliver(msg, Origin::Adversary));
    }

    fn try_latest_replay(&mut self) {
        if self.pending_latest_replay {
            if let Some(msg) = self.tap.replay_latest() {
                self.inject_now(msg);
                self.pending_latest_replay = false;
            }
        }
    }

    fn replay_all(&mut self) {
        for msg in self.tap.replay_all() {
            self.inject_now(msg);
        }
    }

    fn on_wake(&mut self, now: SimTime, side: Side) {
        let d = self.cfg.save_latency.sample_ns(self.latency_rng.next_u64());
        let began = match (&mut self.proto, side) {
            (Proto::Sf { p, .. }, Side::P) => {
                // Stale wakes after overlapping resets are ignored.
                if p.phase() != Phase::Down {
                    return;
                }
                p.begin_wakeup().expect("mem store");
                true
            }
            (Proto::Sf { q, .. }, Side::Q) => {
                if q.phase() != Phase::Down {
                    return;
                }
                q.begin_wakeup().expect("mem store");
                true
            }
            (Proto::Esp { tx, .. }, Side::P) => {
                if tx.phase(ESP_SPI) != Some(Phase::Down) {
                    return;
                }
                tx.begin_recover().expect("mem store");
                true
            }
            (Proto::Esp { rx, .. }, Side::Q) => {
                if rx.phase(ESP_SPI) != Some(Phase::Down) {
                    return;
                }
                rx.begin_recover().expect("mem store");
                true
            }
            (Proto::Base { .. }, _) => false,
        };
        if began {
            self.sim
                .schedule_at(now + SimDuration::from_nanos(d), Ev::FinishWake(side));
        }
    }

    fn on_finish_wake(&mut self, _now: SimTime, side: Side) {
        match (&mut self.proto, side) {
            (Proto::Sf { p, .. }, Side::P) => {
                if p.phase() != Phase::Waking {
                    return;
                }
                let resumed = p.finish_wakeup().expect("mem store");
                self.monitor
                    .on_sender_wakeup(self.p_next_at_reset, resumed, self.cfg.kp);
            }
            (Proto::Sf { q, .. }, Side::Q) => {
                if q.phase() != Phase::Waking {
                    return;
                }
                let outcomes = q.finish_wakeup().expect("mem store");
                for (seq, outcome) in outcomes {
                    let (id, origin) = self
                        .buffered_meta
                        .pop_front()
                        .map(|(i, o)| (Some(i), o))
                        .unwrap_or((None, Origin::Original));
                    match outcome {
                        RxOutcome::Delivered => self.monitor.on_deliver(id, seq, origin),
                        _ => self.monitor.on_discard(id, seq, origin),
                    }
                }
                self.post_receiver_wakeup_adversary();
            }
            (Proto::Esp { tx, .. }, Side::P) => {
                if tx.phase(ESP_SPI) != Some(Phase::Waking) {
                    return;
                }
                tx.finish_recover().expect("mem store");
                tx.poll_events(); // Recovered{..}: the monitor tracks senders itself
                let resumed = tx.next_seq(ESP_SPI).expect("sa installed");
                self.monitor
                    .on_sender_wakeup(self.p_next_at_reset, resumed, self.cfg.kp);
            }
            (Proto::Esp { rx, .. }, Side::Q) => {
                if rx.phase(ESP_SPI) != Some(Phase::Waking) {
                    return;
                }
                rx.finish_recover().expect("mem store");
                let events = rx.poll_events();
                for ev in events {
                    match ev {
                        GatewayEvent::Recovered { .. } => {}
                        // Buffered frames resolve in arrival order; their
                        // ground-truth identities queued at buffering time.
                        GatewayEvent::Delivered { seq, .. } => {
                            let (id, origin) = self.pop_buffered_meta();
                            self.monitor.on_deliver(id, seq, origin);
                        }
                        GatewayEvent::ReplayDropped { seq, .. } => {
                            let (id, origin) = self.pop_buffered_meta();
                            self.monitor.on_discard(id, seq, origin);
                        }
                        other => unreachable!("unexpected recovery event {other:?}"),
                    }
                }
                self.post_receiver_wakeup_adversary();
            }
            (Proto::Base { .. }, _) => {}
        }
    }

    fn pop_buffered_meta(&mut self) -> (Option<MsgId>, Origin) {
        self.buffered_meta
            .pop_front()
            .map(|(i, o)| (Some(i), o))
            .unwrap_or((None, Origin::Original))
    }

    /// The §3 adversary strikes the moment the receiver is back up.
    fn post_receiver_wakeup_adversary(&mut self) {
        match self.cfg.adversary {
            AdversaryPlan::ReplayAllOnReceiverRestart => self.replay_all(),
            AdversaryPlan::ReplayLatestOnRestart => {
                self.pending_latest_replay = true;
                self.try_latest_replay();
            }
            _ => {}
        }
    }

    fn on_adversary_tick(&mut self, now: SimTime) {
        if let AdversaryPlan::PeriodicRandom { every, count } = self.cfg.adversary {
            let picks = self.tap.replay_random(count, &mut self.adv_rng);
            for msg in picks {
                self.inject_now(msg);
            }
            self.sim.schedule_at(now + every, Ev::AdversaryTick);
        }
    }

    fn finish(self) -> ScenarioOutcome {
        let (final_next_seq, final_right_edge) = match &self.proto {
            Proto::Sf { p, q } => (p.next_seq().value(), q.right_edge().value()),
            Proto::Base { p, q } => (p.next_seq().value(), q.right_edge().value()),
            Proto::Esp { tx, rx, .. } => (
                tx.next_seq(ESP_SPI).expect("sa installed").value(),
                rx.right_edge(ESP_SPI).expect("sa installed").value(),
            ),
        };
        ScenarioOutcome {
            monitor: self.monitor.into_report(),
            dropped_down: self.dropped_down,
            link: self.link.stats(),
            injected: self.tap.injected(),
            final_next_seq,
            final_right_edge,
            sender_resets: self.p_resets,
            receiver_resets: self.q_resets,
            end_time: self.sim.now(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_scenario_is_clean() {
        let out = run_scenario(ScenarioConfig::default());
        assert!(out.monitor.clean(), "{:?}", out.monitor.violations);
        assert!(out.monitor.sent > 1000, "paper rate over 10ms");
        assert_eq!(out.monitor.fresh_discarded, 0);
        assert_eq!(out.monitor.replays_accepted, 0);
    }

    #[test]
    fn reproducible_for_seed() {
        let run = |seed| {
            let cfg = ScenarioConfig {
                seed,
                link: LinkConfig::lossy(0.1),
                receiver_resets: vec![SimTime::from_millis(3)],
                adversary: AdversaryPlan::ReplayAllOnReceiverRestart,
                ..ScenarioConfig::default()
            };
            let o = run_scenario(cfg);
            (
                o.monitor.sent,
                o.monitor.fresh_delivered,
                o.final_right_edge,
            )
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7), run(8));
    }

    #[test]
    fn savefetch_sender_reset_no_fresh_loss_in_order() {
        let cfg = ScenarioConfig {
            sender_resets: vec![SimTime::from_millis(4)],
            ..ScenarioConfig::default()
        };
        let out = run_scenario(cfg);
        assert!(out.monitor.clean(), "{:?}", out.monitor.violations);
        assert_eq!(out.monitor.fresh_discarded, 0, "condition (i)");
        assert_eq!(out.monitor.replays_accepted, 0);
        assert!(out.monitor.seqs_lost_to_leaps <= 2 * 25);
        assert_eq!(out.sender_resets, 1);
    }

    #[test]
    fn savefetch_receiver_reset_bounded_loss_no_replays() {
        let cfg = ScenarioConfig {
            receiver_resets: vec![SimTime::from_millis(4)],
            adversary: AdversaryPlan::ReplayAllOnReceiverRestart,
            ..ScenarioConfig::default()
        };
        let out = run_scenario(cfg);
        assert!(out.monitor.clean(), "{:?}", out.monitor.violations);
        assert_eq!(out.monitor.replays_accepted, 0, "no replay accepted");
        assert!(out.monitor.replays_rejected > 0, "attack actually ran");
        assert!(
            out.monitor.fresh_discarded <= 2 * 25,
            "condition (ii): {} > 2K",
            out.monitor.fresh_discarded
        );
        assert!(out.dropped_down > 0, "downtime drops traffic");
    }

    #[test]
    fn baseline_receiver_reset_accepts_replays() {
        let cfg = ScenarioConfig {
            protocol: Protocol::Baseline,
            receiver_resets: vec![SimTime::from_millis(4)],
            adversary: AdversaryPlan::ReplayAllOnReceiverRestart,
            ..ScenarioConfig::default()
        };
        let out = run_scenario(cfg);
        assert!(
            out.monitor.replays_accepted > 100,
            "the §3 attack succeeds against the baseline: {}",
            out.monitor.replays_accepted
        );
        assert!(!out.monitor.clean());
    }

    #[test]
    fn baseline_sender_reset_discards_fresh() {
        let cfg = ScenarioConfig {
            protocol: Protocol::Baseline,
            sender_resets: vec![SimTime::from_millis(4)],
            ..ScenarioConfig::default()
        };
        let out = run_scenario(cfg);
        assert!(
            out.monitor.fresh_discarded > 100,
            "unbounded fresh loss: {}",
            out.monitor.fresh_discarded
        );
    }

    #[test]
    fn periodic_replay_noise_never_accepted_by_savefetch() {
        let cfg = ScenarioConfig {
            adversary: AdversaryPlan::PeriodicRandom {
                every: SimDuration::from_micros(100),
                count: 3,
            },
            link: LinkConfig::lossy(0.05),
            ..ScenarioConfig::default()
        };
        let out = run_scenario(cfg);
        assert_eq!(out.monitor.replays_accepted, 0);
        assert!(out.injected > 100);
        assert!(out.monitor.clean());
    }

    #[test]
    fn lossy_link_duplicates_never_double_deliver() {
        let cfg = ScenarioConfig {
            link: LinkConfig {
                drop_prob: 0.1,
                duplicate_prob: 0.2,
                ..LinkConfig::perfect()
            },
            ..ScenarioConfig::default()
        };
        let out = run_scenario(cfg);
        assert!(out.monitor.clean());
        assert_eq!(out.monitor.replays_accepted, 0, "dups never double-deliver");
    }

    /// The two real transforms the §3 experiments must sweep (auth-only
    /// is covered by the unit layers; it changes nothing here).
    const ESP_SUITES: [CryptoSuite; 2] = [
        CryptoSuite::HmacSha256WithKeystream,
        CryptoSuite::ChaCha20Poly1305,
    ];

    #[test]
    fn esp_transport_default_run_is_clean_for_both_suites() {
        for suite in ESP_SUITES {
            let cfg = ScenarioConfig {
                transport: Transport::Esp { suite },
                duration: SimDuration::from_millis(5),
                ..ScenarioConfig::default()
            };
            let out = run_scenario(cfg);
            assert!(
                out.monitor.clean(),
                "{suite:?}: {:?}",
                out.monitor.violations
            );
            assert!(out.monitor.fresh_delivered > 500, "{suite:?}");
            assert_eq!(out.monitor.fresh_discarded, 0, "{suite:?}");
        }
    }

    #[test]
    fn esp_transport_savefetch_defeats_section3_attack_for_both_suites() {
        for suite in ESP_SUITES {
            let cfg = ScenarioConfig {
                transport: Transport::Esp { suite },
                receiver_resets: vec![SimTime::from_millis(4)],
                adversary: AdversaryPlan::ReplayAllOnReceiverRestart,
                ..ScenarioConfig::default()
            };
            let out = run_scenario(cfg);
            assert!(
                out.monitor.clean(),
                "{suite:?}: {:?}",
                out.monitor.violations
            );
            assert_eq!(out.monitor.replays_accepted, 0, "{suite:?}");
            assert!(out.monitor.replays_rejected > 0, "{suite:?}: attack ran");
            assert!(
                out.monitor.fresh_discarded <= 2 * 25,
                "{suite:?}: condition (ii): {} > 2K",
                out.monitor.fresh_discarded
            );
            assert!(out.dropped_down > 0, "{suite:?}: downtime drops traffic");
        }
    }

    #[test]
    fn esp_transport_baseline_falls_to_section3_attack_for_both_suites() {
        for suite in ESP_SUITES {
            let cfg = ScenarioConfig {
                protocol: Protocol::Baseline,
                transport: Transport::Esp { suite },
                receiver_resets: vec![SimTime::from_millis(4)],
                adversary: AdversaryPlan::ReplayAllOnReceiverRestart,
                ..ScenarioConfig::default()
            };
            let out = run_scenario(cfg);
            assert!(
                out.monitor.replays_accepted > 100,
                "{suite:?}: the naive restart must accept the replayed \
                 ciphertext wholesale: {}",
                out.monitor.replays_accepted
            );
            assert!(!out.monitor.clean(), "{suite:?}");
        }
    }

    #[test]
    fn esp_transport_baseline_sender_reset_discards_fresh() {
        let cfg = ScenarioConfig {
            protocol: Protocol::Baseline,
            transport: Transport::Esp {
                suite: CryptoSuite::default(),
            },
            sender_resets: vec![SimTime::from_millis(4)],
            ..ScenarioConfig::default()
        };
        let out = run_scenario(cfg);
        assert!(
            out.monitor.fresh_discarded > 100,
            "counter restarted at 1 inside the receiver's window: {}",
            out.monitor.fresh_discarded
        );
    }

    #[test]
    fn esp_transport_matches_model_verdicts() {
        // The same seeded experiment must reach the same *qualitative*
        // verdict over real frames as over the abstract model.
        let run = |transport| {
            let cfg = ScenarioConfig {
                transport,
                receiver_resets: vec![SimTime::from_millis(3)],
                sender_resets: vec![SimTime::from_millis(6)],
                link: LinkConfig::lossy(0.05),
                adversary: AdversaryPlan::ReplayAllOnReceiverRestart,
                ..ScenarioConfig::default()
            };
            run_scenario(cfg)
        };
        let model = run(Transport::Model);
        let esp = run(Transport::Esp {
            suite: CryptoSuite::default(),
        });
        for out in [&model, &esp] {
            assert!(out.monitor.clean(), "{:?}", out.monitor.violations);
            assert_eq!(out.monitor.replays_accepted, 0);
            assert!(out.monitor.replays_rejected > 0);
        }
        // Identical send schedules: the workload stream is transport-
        // independent.
        assert_eq!(model.monitor.sent, esp.monitor.sent);
    }

    #[test]
    fn esp_transport_is_reproducible_for_seed() {
        let run = |seed| {
            let cfg = ScenarioConfig {
                seed,
                transport: Transport::Esp {
                    suite: CryptoSuite::ChaCha20Poly1305,
                },
                link: LinkConfig::lossy(0.1),
                receiver_resets: vec![SimTime::from_millis(3)],
                adversary: AdversaryPlan::ReplayAllOnReceiverRestart,
                duration: SimDuration::from_millis(6),
                ..ScenarioConfig::default()
            };
            let o = run_scenario(cfg);
            (
                o.monitor.sent,
                o.monitor.fresh_delivered,
                o.final_right_edge,
            )
        };
        assert_eq!(run(11), run(11));
        assert_ne!(run(11), run(12));
    }

    #[test]
    fn multiple_resets_both_sides_stay_safe() {
        let cfg = ScenarioConfig {
            sender_resets: vec![SimTime::from_millis(2), SimTime::from_millis(6)],
            receiver_resets: vec![SimTime::from_millis(4), SimTime::from_millis(8)],
            adversary: AdversaryPlan::ReplayAllOnReceiverRestart,
            link: LinkConfig::lossy(0.02),
            ..ScenarioConfig::default()
        };
        let out = run_scenario(cfg);
        assert_eq!(out.monitor.replays_accepted, 0);
        assert!(out.monitor.clean(), "{:?}", out.monitor.violations);
        assert_eq!(out.sender_resets, 2);
        assert_eq!(out.receiver_resets, 2);
    }
}

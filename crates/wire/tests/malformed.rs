//! Malformed-frame hardening: `open` must reject — never panic on —
//! every truncation, every PAYLEN lie, and every ICV corruption, and the
//! ICV comparison must go through the constant-time `ct_eq` (pinned here
//! by behaviour: verification outcome depends only on whether the tag
//! matches, not on which byte differs).

use bytes::Bytes;
use reset_crypto::HmacKey;
use reset_wire::{open, open_with, open_zc, seal, WireError, HEADER_LEN, ICV_LEN};

const KEY: &[u8] = b"malformed-test-key";

/// Every input shorter than a full empty frame — including length 0 —
/// errors cleanly, through all three open variants.
#[test]
fn every_short_length_rejected_without_panic() {
    let hk = HmacKey::new(KEY);
    let wire = seal(1, 1, b"", KEY, false).unwrap();
    assert_eq!(wire.len(), HEADER_LEN + ICV_LEN);
    for len in 0..HEADER_LEN + ICV_LEN {
        let truncated = &wire[..len];
        assert!(
            matches!(open(truncated, KEY, None), Err(WireError::Truncated { .. })),
            "len {len}"
        );
        assert!(open_with(truncated, &hk, None).is_err(), "len {len}");
        let owned = Bytes::copy_from_slice(truncated);
        assert!(open_zc(&owned, &hk, None).is_err(), "len {len}");
    }
}

/// Arbitrary garbage of every short length — not just truncated valid
/// frames — is rejected without panicking.
#[test]
fn garbage_of_every_short_length_rejected() {
    for len in 0..HEADER_LEN + ICV_LEN {
        let garbage: Vec<u8> = (0..len).map(|i| (i as u8).wrapping_mul(0xA7)).collect();
        assert!(open(&garbage, KEY, None).is_err(), "len {len}");
    }
}

/// A PAYLEN that disagrees with the actual buffer — shorter or longer,
/// including values near `u32::MAX` that would overflow a naive
/// computation — is rejected as `BadLength` before any ICV work.
#[test]
fn every_paylen_lie_rejected() {
    let payload = [0x5Au8; 32];
    let wire = seal(9, 77, &payload, KEY, false).unwrap();
    let actual = payload.len() as u32;
    let lies = [
        0u32,
        1,
        actual - 1,
        actual + 1,
        2 * actual,
        u32::MAX - 1,
        u32::MAX,
    ];
    for lie in lies {
        if lie == actual {
            continue;
        }
        let mut bad = wire.to_vec();
        bad[8..12].copy_from_slice(&lie.to_be_bytes());
        assert!(
            matches!(open(&bad, KEY, None), Err(WireError::BadLength { .. })),
            "declared {lie}"
        );
    }
}

/// Flipping any single byte of the ICV fails authentication with exactly
/// the same observable outcome regardless of position — the behavioural
/// contract of the `ct_eq` constant-time comparison.
#[test]
fn every_icv_byte_flip_fails_identically() {
    let wire = seal(3, 5, b"protected payload", KEY, false).unwrap();
    let icv_start = wire.len() - ICV_LEN;
    for i in 0..ICV_LEN {
        for flip in [0x01u8, 0x80, 0xFF] {
            let mut bad = wire.to_vec();
            bad[icv_start + i] ^= flip;
            assert_eq!(
                open(&bad, KEY, None),
                Err(WireError::IcvMismatch),
                "icv byte {i} flip {flip:#04x}"
            );
        }
    }
    // And the untouched frame still verifies (the flips above were the
    // only difference).
    assert!(open(&wire, KEY, None).is_ok());
}

/// The zero-copy and copying paths agree on every malformed input above.
#[test]
fn zero_copy_open_rejects_exactly_like_open() {
    let hk = HmacKey::new(KEY);
    let wire = seal(3, 5, b"agree on rejects", KEY, false).unwrap();
    for i in 0..wire.len() {
        let mut bad = wire.to_vec();
        bad[i] ^= 0x40;
        let bad = Bytes::from(bad);
        assert_eq!(
            open(&bad, KEY, None).err(),
            open_zc(&bad, &hk, None).err(),
            "byte {i}"
        );
    }
}

//! Extended sequence number (ESN) inference, RFC 4304 style.
//!
//! With ESN, only the low 32 bits of the 64-bit sequence number are
//! transmitted. The receiver reconstructs the high half from its
//! anti-replay window position: the candidate (high-1, high, high+1)
//! closest to the window's right edge is chosen, and a wrong choice is
//! caught by the ICV (the high half is authenticated).
//!
//! The paper models sequence numbers as unbounded integers; ESN is how a
//! real IPsec implementation approximates that, so the reproduction
//! carries it through.

/// Reconstructs high-order sequence-number bits for a received `seq_lo`.
///
/// `right_edge` is the largest 64-bit sequence number accepted so far (the
/// anti-replay window's right edge `r` in the paper's notation).
///
/// # Examples
///
/// ```
/// use reset_wire::infer_esn;
///
/// // Window sits just below a 2^32 boundary; a tiny seq_lo means the
/// // counter wrapped into the next epoch.
/// let right_edge = (1u64 << 32) - 10;
/// assert_eq!(infer_esn(5, right_edge), (1u64 << 32) + 5);
/// // A large seq_lo means it's still the current epoch.
/// assert_eq!(infer_esn(u32::MAX - 3, right_edge), (1u64 << 32) - 4);
/// ```
pub fn infer_esn(seq_lo: u32, right_edge: u64) -> u64 {
    let hi = right_edge >> 32;
    let candidates = [
        hi.checked_sub(1).map(|h| (h << 32) | seq_lo as u64),
        Some((hi << 32) | seq_lo as u64),
        hi.checked_add(1).map(|h| (h << 32) | seq_lo as u64),
    ];
    candidates
        .into_iter()
        .flatten()
        .min_by_key(|&c| c.abs_diff(right_edge))
        .expect("at least one candidate")
}

/// Tracks the receiver-side ESN state: a thin convenience wrapper that
/// remembers the right edge and infers full sequence numbers.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct EsnTracker {
    right_edge: u64,
}

impl EsnTracker {
    /// A tracker starting at right edge 0.
    pub fn new() -> Self {
        EsnTracker::default()
    }

    /// A tracker resuming from a known right edge (after FETCH + leap).
    pub fn resume_at(right_edge: u64) -> Self {
        EsnTracker { right_edge }
    }

    /// Current right edge.
    pub fn right_edge(&self) -> u64 {
        self.right_edge
    }

    /// Infers the full sequence number for `seq_lo` without committing.
    pub fn infer(&self, seq_lo: u32) -> u64 {
        infer_esn(seq_lo, self.right_edge)
    }

    /// Commits an accepted sequence number, advancing the right edge.
    pub fn accept(&mut self, seq: u64) {
        self.right_edge = self.right_edge.max(seq);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn low_epoch_plain_values() {
        assert_eq!(infer_esn(0, 0), 0);
        assert_eq!(infer_esn(100, 50), 100);
        assert_eq!(infer_esn(50, 100), 50);
    }

    #[test]
    fn wrap_forward_detected() {
        let edge = (1u64 << 32) - 3;
        // seq_lo = 2 is 5 ahead (wrapped), not 2^32-5 behind.
        assert_eq!(infer_esn(2, edge), (1u64 << 32) + 2);
    }

    #[test]
    fn lag_behind_detected() {
        let edge = (1u64 << 32) + 5;
        // A large seq_lo is a late packet from the previous epoch.
        assert_eq!(infer_esn(u32::MAX, edge), u32::MAX as u64);
    }

    #[test]
    fn same_epoch_midrange() {
        let edge = (7u64 << 32) | 0x8000_0000;
        assert_eq!(infer_esn(0x8000_0100, edge), (7u64 << 32) | 0x8000_0100);
    }

    #[test]
    fn tracker_accept_advances_monotonically() {
        let mut t = EsnTracker::new();
        t.accept(10);
        t.accept(5); // lower values never move the edge back
        assert_eq!(t.right_edge(), 10);
        t.accept(20);
        assert_eq!(t.right_edge(), 20);
    }

    #[test]
    fn tracker_resume_matches_leap_semantics() {
        // After a reset the receiver resumes at fetched + 2K; ESN
        // inference must pick up from there.
        let t = EsnTracker::resume_at((3u64 << 32) | 7);
        assert_eq!(t.infer(8), (3u64 << 32) | 8);
    }

    #[test]
    fn inference_round_trips_sequential_stream() {
        // Simulate a sender counting through a 2^32 boundary; the tracker
        // must reconstruct every value exactly.
        let start = (1u64 << 32) - 100;
        let mut t = EsnTracker::resume_at(start - 1);
        for seq in start..start + 200 {
            let inferred = t.infer(seq as u32);
            assert_eq!(inferred, seq, "at {seq:#x}");
            t.accept(inferred);
        }
    }
}

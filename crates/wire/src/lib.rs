//! # reset-wire — ESP-style packet formats
//!
//! The messages `msg(s)` of the paper become authenticated packets here:
//! an SPI identifying the security association, the sequence number the
//! anti-replay window reasons about, a payload, and an HMAC ICV. The ICV
//! is what limits the adversary to *replaying* recorded packets — the
//! exact threat model of the paper — since forged or modified packets
//! fail authentication before the window is ever consulted.
//!
//! * [`seal`] / [`open`] — encode + authenticate / verify + decode.
//! * [`seal_with`] / [`seal_into`] / [`open_with`] / [`open_zc`] — the
//!   datapath tier: precomputed [`reset_crypto::HmacKey`], caller-owned
//!   buffers, and zero-copy payload slices.
//! * [`EspPacket`] — the parsed result.
//! * [`infer_esn`] / [`EsnTracker`] — RFC 4304 extended sequence numbers,
//!   approximating the paper's unbounded counters on a 32-bit wire field.
//!
//! The suite-generic tier ([`seal_frame_into`] / [`verify_frame_with`] /
//! [`open_frame`]) dispatches all bulk crypto through the
//! [`reset_crypto::CipherSuite`] it is handed, so the multi-lane backend
//! the suite was constructed with ([`reset_crypto::Backend`]) applies
//! transparently: `open_frame`'s decrypt uses the same-key multi-block
//! lane mode on large payloads, and the SA layer's batched receive path
//! fans whole NIC drains into `verify_batch`/`decrypt_batch`. See the
//! repo-level `ARCHITECTURE.md` for how wire sits between the crypto
//! and ipsec layers.
//!
//! # Examples
//!
//! ```
//! use reset_wire::{open, seal, WireError};
//!
//! let key = b"sa-key";
//! let wire = seal(0xABCD, 1, b"first packet", key, false)?;
//!
//! // The adversary can replay these bytes verbatim...
//! let replayed = open(&wire, key, None)?;
//! assert_eq!(replayed.seq_lo, 1); // ...and they verify again:
//! // only the anti-replay window (crates/core) detects the replay.
//!
//! // But the adversary cannot alter them:
//! let mut forged = wire.to_vec();
//! forged[4] ^= 0xFF; // bump the sequence number
//! assert_eq!(open(&forged, key, None), Err(WireError::IcvMismatch));
//! # Ok::<(), WireError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;
mod esn;
mod esp;

pub use error::WireError;
pub use esn::{infer_esn, EsnTracker};
pub use esp::{
    check_frame_length, esn_seq, frame_overhead, open, open_frame, open_with, open_zc, peek_spi,
    seal, seal_frame, seal_frame_into, seal_into, seal_with, spi_shard, verify_frame,
    verify_frame_with, EspPacket, HEADER_LEN, ICV_LEN,
};

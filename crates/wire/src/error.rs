//! Error type for packet encoding and decoding.

use std::error::Error;
use std::fmt;

/// Errors from sealing or opening ESP-style packets.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// The buffer is shorter than the fixed header.
    Truncated {
        /// Bytes required.
        needed: usize,
        /// Bytes available.
        got: usize,
    },
    /// Declared payload length exceeds the remaining buffer.
    BadLength {
        /// Declared payload length.
        declared: usize,
        /// Bytes actually available for payload + ICV.
        available: usize,
    },
    /// The integrity check value did not verify: the packet is forged or
    /// was corrupted in flight. Per RFC 2406 it must be dropped *before*
    /// the anti-replay window is consulted.
    IcvMismatch,
    /// The 32-bit sequence number space is exhausted and extended sequence
    /// numbers are not enabled; RFC 2406 requires SA re-establishment.
    SeqOverflow,
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Truncated { needed, got } => {
                write!(f, "packet truncated: need {needed} bytes, got {got}")
            }
            WireError::BadLength {
                declared,
                available,
            } => write!(
                f,
                "bad payload length: declared {declared}, only {available} available"
            ),
            WireError::IcvMismatch => write!(f, "integrity check value mismatch"),
            WireError::SeqOverflow => write!(f, "32-bit sequence number space exhausted"),
        }
    }
}

impl Error for WireError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_are_informative() {
        assert!(WireError::Truncated { needed: 24, got: 3 }
            .to_string()
            .contains("24"));
        assert!(WireError::IcvMismatch.to_string().contains("integrity"));
        assert!(WireError::SeqOverflow.to_string().contains("exhausted"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<WireError>();
    }
}

//! ESP-style packet sealing and opening (RFC 2406 shape).
//!
//! Layout on the wire:
//!
//! ```text
//! +--------+--------+-------------+------------------+-----------+
//! | SPI: 4 | SEQ: 4 | PAYLEN: 4   | PAYLOAD: PAYLEN  | ICV: 12   |
//! +--------+--------+-------------+------------------+-----------+
//! ```
//!
//! The ICV is `HMAC-SHA-256-96` over everything before it, keyed by the
//! SA's authentication key. As in real IPsec, only the **low 32 bits** of
//! the sequence number travel on the wire; with extended sequence numbers
//! (ESN) the high 32 bits are implicit and are included in the ICV
//! computation, which lets the receiver detect a wrong high-half guess.

use bytes::{BufMut, Bytes, BytesMut};
use reset_crypto::{ct_eq, hmac_sha256_96, HmacSha256};

use crate::WireError;

/// Fixed header length (SPI + SEQ + PAYLEN).
pub const HEADER_LEN: usize = 12;

/// ICV length (HMAC-SHA-256 truncated to 96 bits).
pub const ICV_LEN: usize = 12;

/// A parsed, verified ESP packet.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EspPacket {
    /// Security Parameter Index identifying the SA.
    pub spi: u32,
    /// Low 32 bits of the sequence number as seen on the wire.
    pub seq_lo: u32,
    /// Decrypted/parsed payload.
    pub payload: Bytes,
}

/// Seals `(spi, seq, payload)` into wire bytes.
///
/// `seq` is the full 64-bit sequence number; its low half goes on the
/// wire, and if `esn` is true the high half is mixed into the ICV (the
/// RFC 4304 construction).
///
/// # Errors
///
/// Returns [`WireError::SeqOverflow`] if `seq` exceeds `u32::MAX` while
/// `esn` is false.
///
/// # Examples
///
/// ```
/// use reset_wire::{open, seal};
///
/// let key = b"auth-key";
/// let wire = seal(7, 42, b"hello", key, false)?;
/// let pkt = open(&wire, key, None)?;
/// assert_eq!(pkt.spi, 7);
/// assert_eq!(pkt.seq_lo, 42);
/// assert_eq!(&pkt.payload[..], b"hello");
/// # Ok::<(), reset_wire::WireError>(())
/// ```
pub fn seal(
    spi: u32,
    seq: u64,
    payload: &[u8],
    auth_key: &[u8],
    esn: bool,
) -> Result<Bytes, WireError> {
    if !esn && seq > u32::MAX as u64 {
        return Err(WireError::SeqOverflow);
    }
    let seq_lo = seq as u32;
    let mut buf = BytesMut::with_capacity(HEADER_LEN + payload.len() + ICV_LEN);
    buf.put_u32(spi);
    buf.put_u32(seq_lo);
    buf.put_u32(payload.len() as u32);
    buf.put_slice(payload);
    let icv = compute_icv(auth_key, &buf, if esn { Some((seq >> 32) as u32) } else { None });
    buf.put_slice(&icv);
    Ok(buf.freeze())
}

/// Opens wire bytes, verifying the ICV.
///
/// `esn_hi` must be `Some(high_half)` when the SA uses extended sequence
/// numbers — the receiver guesses the high half from its window (see
/// [`crate::EsnTracker`]) and a wrong guess fails authentication, exactly
/// as RFC 4304 specifies.
///
/// # Errors
///
/// * [`WireError::Truncated`] / [`WireError::BadLength`] on malformed
///   framing.
/// * [`WireError::IcvMismatch`] when authentication fails; the caller must
///   drop the packet without touching the anti-replay window.
pub fn open(wire: &[u8], auth_key: &[u8], esn_hi: Option<u32>) -> Result<EspPacket, WireError> {
    if wire.len() < HEADER_LEN + ICV_LEN {
        return Err(WireError::Truncated {
            needed: HEADER_LEN + ICV_LEN,
            got: wire.len(),
        });
    }
    let spi = u32::from_be_bytes(wire[0..4].try_into().expect("fixed"));
    let seq_lo = u32::from_be_bytes(wire[4..8].try_into().expect("fixed"));
    let declared = u32::from_be_bytes(wire[8..12].try_into().expect("fixed")) as usize;
    let available = wire.len() - HEADER_LEN - ICV_LEN;
    if declared != available {
        return Err(WireError::BadLength {
            declared,
            available,
        });
    }
    let (authed, icv) = wire.split_at(wire.len() - ICV_LEN);
    let expect = compute_icv(auth_key, authed, esn_hi);
    if !ct_eq(icv, &expect) {
        return Err(WireError::IcvMismatch);
    }
    Ok(EspPacket {
        spi,
        seq_lo,
        payload: Bytes::copy_from_slice(&wire[HEADER_LEN..HEADER_LEN + declared]),
    })
}

fn compute_icv(auth_key: &[u8], authed: &[u8], esn_hi: Option<u32>) -> [u8; ICV_LEN] {
    match esn_hi {
        None => hmac_sha256_96(auth_key, authed),
        Some(hi) => {
            // RFC 4304: the implicit high-order bits participate in the
            // ICV as if appended to the packet.
            let mut h = HmacSha256::new(auth_key);
            h.update(authed);
            h.update(&hi.to_be_bytes());
            let full = h.finalize();
            let mut out = [0u8; ICV_LEN];
            out.copy_from_slice(&full[..ICV_LEN]);
            out
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const KEY: &[u8] = b"test-auth-key";

    #[test]
    fn seal_open_round_trip() {
        let wire = seal(1, 100, b"payload bytes", KEY, false).unwrap();
        let pkt = open(&wire, KEY, None).unwrap();
        assert_eq!(pkt.spi, 1);
        assert_eq!(pkt.seq_lo, 100);
        assert_eq!(&pkt.payload[..], b"payload bytes");
    }

    #[test]
    fn empty_payload_ok() {
        let wire = seal(9, 1, b"", KEY, false).unwrap();
        let pkt = open(&wire, KEY, None).unwrap();
        assert!(pkt.payload.is_empty());
    }

    #[test]
    fn wrong_key_rejected() {
        let wire = seal(1, 5, b"data", KEY, false).unwrap();
        assert_eq!(open(&wire, b"other", None), Err(WireError::IcvMismatch));
    }

    #[test]
    fn any_bit_flip_rejected() {
        let wire = seal(3, 77, b"sensitive", KEY, false).unwrap();
        for i in 0..wire.len() {
            let mut bad = wire.to_vec();
            bad[i] ^= 0x01;
            assert!(
                open(&bad, KEY, None).is_err(),
                "bit flip at byte {i} accepted"
            );
        }
    }

    #[test]
    fn truncated_rejected() {
        let wire = seal(1, 1, b"abc", KEY, false).unwrap();
        assert!(matches!(
            open(&wire[..10], KEY, None),
            Err(WireError::Truncated { .. })
        ));
    }

    #[test]
    fn length_mismatch_rejected() {
        let wire = seal(1, 1, b"abcd", KEY, false).unwrap();
        // Chop one payload byte: declared length no longer matches.
        let mut bad = wire.to_vec();
        bad.remove(HEADER_LEN); // drop first payload byte
        assert!(matches!(
            open(&bad, KEY, None),
            Err(WireError::BadLength { .. })
        ));
    }

    #[test]
    fn seq_overflow_without_esn() {
        assert_eq!(
            seal(1, u32::MAX as u64 + 1, b"", KEY, false),
            Err(WireError::SeqOverflow)
        );
        // Boundary value still fits.
        assert!(seal(1, u32::MAX as u64, b"", KEY, false).is_ok());
    }

    #[test]
    fn esn_high_half_participates_in_icv() {
        let seq = (5u64 << 32) | 10;
        let wire = seal(1, seq, b"x", KEY, true).unwrap();
        // Correct high half verifies.
        assert!(open(&wire, KEY, Some(5)).is_ok());
        // Wrong high half fails authentication (RFC 4304 behaviour).
        assert_eq!(open(&wire, KEY, Some(4)), Err(WireError::IcvMismatch));
        assert_eq!(open(&wire, KEY, None), Err(WireError::IcvMismatch));
    }

    #[test]
    fn esn_allows_seq_beyond_u32() {
        let seq = u32::MAX as u64 + 123;
        let wire = seal(1, seq, b"x", KEY, true).unwrap();
        let pkt = open(&wire, KEY, Some(1)).unwrap();
        assert_eq!(pkt.seq_lo, 122); // low 32 bits wrapped
    }

    #[test]
    fn replayed_bytes_open_identically() {
        // Replay is NOT detectable at the wire layer — byte-identical
        // packets verify again. Only the anti-replay window catches them;
        // this test pins the division of labour.
        let wire = seal(1, 55, b"resend me", KEY, false).unwrap();
        let first = open(&wire, KEY, None).unwrap();
        let replayed = open(&wire, KEY, None).unwrap();
        assert_eq!(first, replayed);
    }
}

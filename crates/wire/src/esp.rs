//! ESP-style packet sealing and opening (RFC 2406 shape).
//!
//! Layout on the wire:
//!
//! ```text
//! +--------+--------+-------------+------------------+-----------+
//! | SPI: 4 | SEQ: 4 | PAYLEN: 4   | PAYLOAD: PAYLEN  | ICV: 12   |
//! +--------+--------+-------------+------------------+-----------+
//! ```
//!
//! The ICV is `HMAC-SHA-256-96` over everything before it, keyed by the
//! SA's authentication key. As in real IPsec, only the **low 32 bits** of
//! the sequence number travel on the wire; with extended sequence numbers
//! (ESN) the high 32 bits are implicit and are included in the ICV
//! computation, which lets the receiver detect a wrong high-half guess.
//!
//! Three tiers of API exist:
//!
//! * [`seal`] / [`open`] — convenience forms taking a raw key slice;
//!   they rerun the HMAC key schedule per call.
//! * [`seal_with`] / [`seal_into`] / [`open_with`] / [`open_zc`] — the
//!   keyed HMAC forms: they take a precomputed [`HmacKey`] (built once
//!   per SA), `seal_into` reuses a caller-owned buffer, and `open_zc`
//!   returns the payload as a zero-copy slice of the input `Bytes`.
//! * [`seal_frame_into`] / [`verify_frame_with`] / [`open_frame`] — the
//!   suite-generic forms: any [`reset_crypto::CipherSuite`] plugs in,
//!   and the frame layout picks up the suite's IV and ICV lengths
//!   (`HEADER ‖ IV ‖ ciphertext ‖ ICV`). For the HMAC suite these emit
//!   byte-identical frames to the keyed forms.

use bytes::{BufMut, Bytes, BytesMut};
use reset_crypto::{ct_eq, CipherSuite, FrameToVerify, HmacKey, MAX_IV_LEN};

use crate::WireError;

/// Fixed header length (SPI + SEQ + PAYLEN).
pub const HEADER_LEN: usize = 12;

/// ICV length (HMAC-SHA-256 truncated to 96 bits).
pub const ICV_LEN: usize = 12;

/// A parsed, verified ESP packet.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EspPacket {
    /// Security Parameter Index identifying the SA.
    pub spi: u32,
    /// Low 32 bits of the sequence number as seen on the wire.
    pub seq_lo: u32,
    /// Decrypted/parsed payload.
    pub payload: Bytes,
}

/// Seals `(spi, seq, payload)` into wire bytes.
///
/// `seq` is the full 64-bit sequence number; its low half goes on the
/// wire, and if `esn` is true the high half is mixed into the ICV (the
/// RFC 4304 construction).
///
/// # Errors
///
/// Returns [`WireError::SeqOverflow`] if `seq` exceeds `u32::MAX` while
/// `esn` is false.
///
/// # Examples
///
/// ```
/// use reset_wire::{open, seal};
///
/// let key = b"auth-key";
/// let wire = seal(7, 42, b"hello", key, false)?;
/// let pkt = open(&wire, key, None)?;
/// assert_eq!(pkt.spi, 7);
/// assert_eq!(pkt.seq_lo, 42);
/// assert_eq!(&pkt.payload[..], b"hello");
/// # Ok::<(), reset_wire::WireError>(())
/// ```
pub fn seal(
    spi: u32,
    seq: u64,
    payload: &[u8],
    auth_key: &[u8],
    esn: bool,
) -> Result<Bytes, WireError> {
    seal_with(spi, seq, payload, &HmacKey::new(auth_key), esn)
}

/// [`seal`] with a precomputed [`HmacKey`]: the per-SA fast path that
/// never re-derives the key schedule.
pub fn seal_with(
    spi: u32,
    seq: u64,
    payload: &[u8],
    auth_key: &HmacKey,
    esn: bool,
) -> Result<Bytes, WireError> {
    let mut buf = BytesMut::with_capacity(HEADER_LEN + payload.len() + ICV_LEN);
    seal_into(&mut buf, spi, seq, payload, auth_key, esn)?;
    Ok(buf.freeze())
}

/// Seals into a caller-owned buffer, appending header, payload and ICV.
///
/// The buffer is cleared first; its allocation is reused, so a sender
/// draining a queue through one scratch `BytesMut` seals packets without
/// per-packet allocation.
///
/// # Errors
///
/// Returns [`WireError::SeqOverflow`] if `seq` exceeds `u32::MAX` while
/// `esn` is false.
///
/// # Examples
///
/// ```
/// use bytes::BytesMut;
/// use reset_crypto::HmacKey;
/// use reset_wire::{open_with, seal_into};
///
/// let key = HmacKey::new(b"auth-key");
/// let mut scratch = BytesMut::with_capacity(1500);
/// for seq in 1..=3u64 {
///     seal_into(&mut scratch, 7, seq, b"payload", &key, false)?;
///     assert!(open_with(&scratch, &key, None).is_ok());
/// }
/// # Ok::<(), reset_wire::WireError>(())
/// ```
pub fn seal_into(
    buf: &mut BytesMut,
    spi: u32,
    seq: u64,
    payload: &[u8],
    auth_key: &HmacKey,
    esn: bool,
) -> Result<(), WireError> {
    if !esn && seq > u32::MAX as u64 {
        return Err(WireError::SeqOverflow);
    }
    let seq_lo = seq as u32;
    buf.clear();
    buf.reserve(HEADER_LEN + payload.len() + ICV_LEN);
    buf.put_u32(spi);
    buf.put_u32(seq_lo);
    buf.put_u32(payload.len() as u32);
    buf.put_slice(payload);
    let icv = compute_icv(
        auth_key,
        buf,
        if esn { Some((seq >> 32) as u32) } else { None },
    );
    buf.put_slice(&icv);
    Ok(())
}

/// Opens wire bytes, verifying the ICV.
///
/// `esn_hi` must be `Some(high_half)` when the SA uses extended sequence
/// numbers — the receiver guesses the high half from its window (see
/// [`crate::EsnTracker`]) and a wrong guess fails authentication, exactly
/// as RFC 4304 specifies.
///
/// The returned payload copies out of `wire`; the receive datapath uses
/// [`open_zc`], which slices the input without copying.
///
/// # Errors
///
/// * [`WireError::Truncated`] / [`WireError::BadLength`] on malformed
///   framing.
/// * [`WireError::IcvMismatch`] when authentication fails; the caller must
///   drop the packet without touching the anti-replay window.
pub fn open(wire: &[u8], auth_key: &[u8], esn_hi: Option<u32>) -> Result<EspPacket, WireError> {
    open_with(wire, &HmacKey::new(auth_key), esn_hi)
}

/// [`open`] with a precomputed [`HmacKey`].
pub fn open_with(
    wire: &[u8],
    auth_key: &HmacKey,
    esn_hi: Option<u32>,
) -> Result<EspPacket, WireError> {
    let (spi, seq_lo, declared) = verify_frame(wire, auth_key, esn_hi)?;
    Ok(EspPacket {
        spi,
        seq_lo,
        payload: Bytes::copy_from_slice(&wire[HEADER_LEN..HEADER_LEN + declared]),
    })
}

/// Zero-copy [`open`]: verifies in place and returns the payload as a
/// slice of the input buffer — no bytes are copied or allocated.
///
/// # Errors
///
/// Same as [`open`].
///
/// # Examples
///
/// ```
/// use reset_crypto::HmacKey;
/// use reset_wire::{open_zc, seal_with};
///
/// let key = HmacKey::new(b"auth-key");
/// let wire = seal_with(9, 1, b"zero copy", &key, false)?;
/// let pkt = open_zc(&wire, &key, None)?;
/// assert_eq!(&pkt.payload[..], b"zero copy");
/// # Ok::<(), reset_wire::WireError>(())
/// ```
pub fn open_zc(
    wire: &Bytes,
    auth_key: &HmacKey,
    esn_hi: Option<u32>,
) -> Result<EspPacket, WireError> {
    let (spi, seq_lo, declared) = verify_frame(wire, auth_key, esn_hi)?;
    Ok(EspPacket {
        spi,
        seq_lo,
        payload: wire.slice(HEADER_LEN..HEADER_LEN + declared),
    })
}

/// Framing + authentication without materializing the payload: returns
/// `(spi, seq_lo, payload_len)` once the ICV has verified; the payload
/// occupies `wire[HEADER_LEN..HEADER_LEN + payload_len]`.
///
/// This is the receive datapath's entry point when the caller wants to
/// move verified bytes straight into its own buffer (e.g. a decryption
/// arena) without an intermediate allocation.
///
/// # Errors
///
/// Same as [`open`].
pub fn verify_frame(
    wire: &[u8],
    auth_key: &HmacKey,
    esn_hi: Option<u32>,
) -> Result<(u32, u32, usize), WireError> {
    let (spi, seq_lo, declared) = check_frame_length(wire, HEADER_LEN + ICV_LEN)?;
    let (authed, icv) = wire.split_at(wire.len() - ICV_LEN);
    let expect = compute_icv(auth_key, authed, esn_hi);
    if !ct_eq(icv, &expect) {
        return Err(WireError::IcvMismatch);
    }
    Ok((spi, seq_lo, declared))
}

/// Total per-packet wire overhead of `suite`: fixed header plus the
/// suite's explicit IV and ICV lengths.
pub fn frame_overhead(suite: &dyn CipherSuite) -> usize {
    HEADER_LEN + suite.iv_len() + suite.icv_len()
}

/// Seals a plaintext payload under `suite` into a caller-owned buffer:
/// header, the suite's explicit IV (if any), the encrypted payload, and
/// the suite's ICV. The buffer is cleared first and its allocation
/// reused, like [`seal_into`].
///
/// For [`reset_crypto::HmacSha256Suite`] this emits frames
/// byte-identical to [`seal_into`] over a pre-encrypted body — the
/// legacy and suite-generic codecs interoperate.
///
/// # Errors
///
/// Returns [`WireError::SeqOverflow`] if `seq` exceeds `u32::MAX` while
/// `esn` is false.
///
/// # Examples
///
/// ```
/// use bytes::BytesMut;
/// use reset_crypto::ChaCha20Poly1305Suite;
/// use reset_wire::{open_frame, seal_frame_into};
///
/// let suite = ChaCha20Poly1305Suite::new([7u8; 32]);
/// let mut buf = BytesMut::with_capacity(1500);
/// seal_frame_into(&mut buf, 9, 1, b"aead payload", &suite, false)?;
/// let pkt = open_frame(&buf.freeze(), &suite, None)?;
/// assert_eq!(&pkt.payload[..], b"aead payload");
/// # Ok::<(), reset_wire::WireError>(())
/// ```
pub fn seal_frame_into(
    buf: &mut BytesMut,
    spi: u32,
    seq: u64,
    payload: &[u8],
    suite: &dyn CipherSuite,
    esn: bool,
) -> Result<(), WireError> {
    if !esn && seq > u32::MAX as u64 {
        return Err(WireError::SeqOverflow);
    }
    let iv_len = suite.iv_len();
    assert!(iv_len <= MAX_IV_LEN, "explicit IV too long for the codec");
    buf.clear();
    buf.reserve(HEADER_LEN + iv_len + payload.len() + suite.icv_len());
    buf.put_u32(spi);
    buf.put_u32(seq as u32);
    buf.put_u32(payload.len() as u32);
    if iv_len > 0 {
        let mut iv = [0u8; MAX_IV_LEN];
        suite.fill_iv(seq, &mut iv[..iv_len]);
        buf.put_slice(&iv[..iv_len]);
    }
    let body_start = buf.len();
    buf.put_slice(payload);
    suite.encrypt(seq, &mut buf.as_mut()[body_start..]);
    let esn_hi = if esn { Some((seq >> 32) as u32) } else { None };
    let icv = {
        let (aad, ct) = buf.split_at(body_start);
        suite.icv(seq, aad, ct, esn_hi)
    };
    buf.put_slice(&icv);
    Ok(())
}

/// [`seal_frame_into`] returning freshly allocated wire bytes.
///
/// # Errors
///
/// Same as [`seal_frame_into`].
pub fn seal_frame(
    spi: u32,
    seq: u64,
    payload: &[u8],
    suite: &dyn CipherSuite,
    esn: bool,
) -> Result<Bytes, WireError> {
    let mut buf =
        BytesMut::with_capacity(HEADER_LEN + suite.iv_len() + payload.len() + suite.icv_len());
    seal_frame_into(&mut buf, spi, seq, payload, suite, esn)?;
    Ok(buf.freeze())
}

/// Framing + authentication under `suite` without touching the payload:
/// returns `(spi, seq_lo, payload_len)` once the ICV verified. The
/// (still-encrypted) payload occupies
/// `wire[HEADER_LEN + suite.iv_len()..][..payload_len]`; callers decrypt
/// it with [`CipherSuite::decrypt`] only after the anti-replay check.
///
/// `esn_hi` supplies the implicit sequence-number high half exactly as
/// in [`verify_frame`]; it both participates in authentication and
/// reconstructs the 64-bit nonce for AEAD suites.
///
/// # Errors
///
/// Same as [`open`].
pub fn verify_frame_with(
    wire: &[u8],
    suite: &dyn CipherSuite,
    esn_hi: Option<u32>,
) -> Result<(u32, u32, usize), WireError> {
    let overhead = frame_overhead(suite);
    let (spi, seq_lo, declared) = check_frame_length(wire, overhead)?;
    let seq = esn_seq(seq_lo, esn_hi);
    let aad_end = HEADER_LEN + suite.iv_len();
    let ct_end = wire.len() - suite.icv_len();
    let ok = suite.verify(&FrameToVerify {
        seq,
        header: &wire[..aad_end],
        ciphertext: &wire[aad_end..ct_end],
        esn_hi,
        icv: &wire[ct_end..],
    });
    if !ok {
        return Err(WireError::IcvMismatch);
    }
    Ok((spi, seq_lo, declared))
}

/// Validates the fixed framing of a frame whose total per-packet
/// overhead is `overhead` bytes: minimum length and the declared-length
/// consistency check. Returns `(spi, seq_lo, payload_len)`. This is
/// the single definition of the framing rules — the sequential
/// ([`verify_frame_with`]) and batch (`reset_ipsec`'s
/// `Inbound::process_batch`) verification paths both call it, so their
/// framing semantics cannot drift.
///
/// # Errors
///
/// [`WireError::Truncated`] / [`WireError::BadLength`] as in [`open`].
pub fn check_frame_length(wire: &[u8], overhead: usize) -> Result<(u32, u32, usize), WireError> {
    if wire.len() < overhead {
        return Err(WireError::Truncated {
            needed: overhead,
            got: wire.len(),
        });
    }
    let spi = u32::from_be_bytes(wire[0..4].try_into().expect("fixed"));
    let seq_lo = u32::from_be_bytes(wire[4..8].try_into().expect("fixed"));
    let declared = u32::from_be_bytes(wire[8..12].try_into().expect("fixed")) as usize;
    let available = wire.len() - overhead;
    if declared != available {
        return Err(WireError::BadLength {
            declared,
            available,
        });
    }
    Ok((spi, seq_lo, declared))
}

/// Reads the SPI from a frame's fixed header without verifying anything
/// — the pre-crypto dispatch step every demultiplexer (SADB, gateway)
/// performs. Returns `None` for frames too short to carry an SPI.
pub fn peek_spi(wire: &[u8]) -> Option<u32> {
    wire.get(0..4)
        .map(|b| u32::from_be_bytes(b.try_into().expect("fixed")))
}

/// Maps an SPI onto one of `shards` receive queues — the RSS-style
/// dispatch a multi-queue gateway performs right after [`peek_spi`].
/// The SPI is mixed through a SplitMix64-style finalizer first, so
/// sequentially allocated SPIs (the common negotiation pattern) still
/// spread evenly instead of landing on `spi % shards` stripes.
///
/// One definition on purpose: the sharded SADB's install path and its
/// per-frame routing must agree bit-for-bit, or a frame would be
/// dispatched to a shard that does not own its SA.
///
/// # Panics
///
/// Panics if `shards` is 0 (a gateway with no receive queues).
pub fn spi_shard(spi: u32, shards: usize) -> usize {
    assert!(shards > 0, "spi_shard: shards must be non-zero");
    let mut x = spi as u64;
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^= x >> 31;
    (x % shards as u64) as usize
}

/// Reconstructs the full 64-bit sequence number from the wire's low
/// half and the implicit ESN high half — the one definition every
/// verification and decryption site shares.
pub fn esn_seq(seq_lo: u32, esn_hi: Option<u32>) -> u64 {
    match esn_hi {
        Some(hi) => ((hi as u64) << 32) | seq_lo as u64,
        None => seq_lo as u64,
    }
}

/// Verifies and decrypts one suite frame, copying the payload out
/// (zero-copy when the suite does not encrypt).
///
/// # Errors
///
/// Same as [`open`].
pub fn open_frame(
    wire: &Bytes,
    suite: &dyn CipherSuite,
    esn_hi: Option<u32>,
) -> Result<EspPacket, WireError> {
    let (spi, seq_lo, declared) = verify_frame_with(wire, suite, esn_hi)?;
    let start = HEADER_LEN + suite.iv_len();
    let payload = if suite.encrypts() {
        let seq = esn_seq(seq_lo, esn_hi);
        let mut body = BytesMut::with_capacity(declared);
        body.extend_from_slice(&wire[start..start + declared]);
        suite.decrypt(seq, body.as_mut());
        body.freeze()
    } else {
        wire.slice(start..start + declared)
    };
    Ok(EspPacket {
        spi,
        seq_lo,
        payload,
    })
}

fn compute_icv(auth_key: &HmacKey, authed: &[u8], esn_hi: Option<u32>) -> [u8; ICV_LEN] {
    let mut h = auth_key.begin();
    h.update(authed);
    if let Some(hi) = esn_hi {
        // RFC 4304: the implicit high-order bits participate in the
        // ICV as if appended to the packet.
        h.update(&hi.to_be_bytes());
    }
    let full = h.finalize();
    let mut out = [0u8; ICV_LEN];
    out.copy_from_slice(&full[..ICV_LEN]);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const KEY: &[u8] = b"test-auth-key";

    #[test]
    fn seal_open_round_trip() {
        let wire = seal(1, 100, b"payload bytes", KEY, false).unwrap();
        let pkt = open(&wire, KEY, None).unwrap();
        assert_eq!(pkt.spi, 1);
        assert_eq!(pkt.seq_lo, 100);
        assert_eq!(&pkt.payload[..], b"payload bytes");
    }

    #[test]
    fn empty_payload_ok() {
        let wire = seal(9, 1, b"", KEY, false).unwrap();
        let pkt = open(&wire, KEY, None).unwrap();
        assert!(pkt.payload.is_empty());
    }

    #[test]
    fn wrong_key_rejected() {
        let wire = seal(1, 5, b"data", KEY, false).unwrap();
        assert_eq!(open(&wire, b"other", None), Err(WireError::IcvMismatch));
    }

    #[test]
    fn any_bit_flip_rejected() {
        let wire = seal(3, 77, b"sensitive", KEY, false).unwrap();
        for i in 0..wire.len() {
            let mut bad = wire.to_vec();
            bad[i] ^= 0x01;
            assert!(
                open(&bad, KEY, None).is_err(),
                "bit flip at byte {i} accepted"
            );
        }
    }

    #[test]
    fn truncated_rejected() {
        let wire = seal(1, 1, b"abc", KEY, false).unwrap();
        assert!(matches!(
            open(&wire[..10], KEY, None),
            Err(WireError::Truncated { .. })
        ));
    }

    #[test]
    fn length_mismatch_rejected() {
        let wire = seal(1, 1, b"abcd", KEY, false).unwrap();
        // Chop one payload byte: declared length no longer matches.
        let mut bad = wire.to_vec();
        bad.remove(HEADER_LEN); // drop first payload byte
        assert!(matches!(
            open(&bad, KEY, None),
            Err(WireError::BadLength { .. })
        ));
    }

    #[test]
    fn seq_overflow_without_esn() {
        assert_eq!(
            seal(1, u32::MAX as u64 + 1, b"", KEY, false),
            Err(WireError::SeqOverflow)
        );
        // Boundary value still fits.
        assert!(seal(1, u32::MAX as u64, b"", KEY, false).is_ok());
    }

    #[test]
    fn esn_high_half_participates_in_icv() {
        let seq = (5u64 << 32) | 10;
        let wire = seal(1, seq, b"x", KEY, true).unwrap();
        // Correct high half verifies.
        assert!(open(&wire, KEY, Some(5)).is_ok());
        // Wrong high half fails authentication (RFC 4304 behaviour).
        assert_eq!(open(&wire, KEY, Some(4)), Err(WireError::IcvMismatch));
        assert_eq!(open(&wire, KEY, None), Err(WireError::IcvMismatch));
    }

    #[test]
    fn esn_allows_seq_beyond_u32() {
        let seq = u32::MAX as u64 + 123;
        let wire = seal(1, seq, b"x", KEY, true).unwrap();
        let pkt = open(&wire, KEY, Some(1)).unwrap();
        assert_eq!(pkt.seq_lo, 122); // low 32 bits wrapped
    }

    #[test]
    fn replayed_bytes_open_identically() {
        // Replay is NOT detectable at the wire layer — byte-identical
        // packets verify again. Only the anti-replay window catches them;
        // this test pins the division of labour.
        let wire = seal(1, 55, b"resend me", KEY, false).unwrap();
        let first = open(&wire, KEY, None).unwrap();
        let replayed = open(&wire, KEY, None).unwrap();
        assert_eq!(first, replayed);
    }

    #[test]
    fn keyed_paths_agree_with_raw_key_paths() {
        let hk = HmacKey::new(KEY);
        for esn in [false, true] {
            let seq = if esn { (3u64 << 32) | 9 } else { 9 };
            let hi = if esn { Some(3) } else { None };
            let a = seal(21, seq, b"agree", KEY, esn).unwrap();
            let b = seal_with(21, seq, b"agree", &hk, esn).unwrap();
            assert_eq!(a, b, "identical wire bytes (esn={esn})");
            assert_eq!(open(&a, KEY, hi).unwrap(), open_with(&b, &hk, hi).unwrap());
            assert_eq!(open_zc(&b, &hk, hi).unwrap(), open(&a, KEY, hi).unwrap());
        }
    }

    #[test]
    fn seal_into_reuses_buffer_across_packets() {
        let hk = HmacKey::new(KEY);
        let mut buf = BytesMut::with_capacity(256);
        let mut cap = None;
        for seq in 1..=10u64 {
            seal_into(&mut buf, 5, seq, b"same-size payload", &hk, false).unwrap();
            let pkt = open_with(&buf, &hk, None).unwrap();
            assert_eq!(pkt.seq_lo, seq as u32);
            match cap {
                None => cap = Some(buf.capacity()),
                Some(c) => assert_eq!(buf.capacity(), c, "no regrowth while reused"),
            }
        }
    }

    #[test]
    fn open_zc_payload_shares_input_storage() {
        let hk = HmacKey::new(KEY);
        let wire = seal_with(5, 8, b"shared storage", &hk, false).unwrap();
        let pkt = open_zc(&wire, &hk, None).unwrap();
        // Same allocation: the payload's first byte lives inside `wire`.
        let wire_range = wire.as_ptr() as usize..wire.as_ptr() as usize + wire.len();
        assert!(wire_range.contains(&(pkt.payload.as_ptr() as usize)));
    }

    #[test]
    fn hmac_suite_frames_are_byte_identical_to_legacy() {
        use reset_crypto::{xor_keystream_with, HmacSha256Suite};
        let suite = HmacSha256Suite::with_keystream(b"auth-key", b"enc-key");
        let hk = HmacKey::new(b"auth-key");
        let ek = HmacKey::new(b"enc-key");
        for (esn, seq) in [(false, 42u64), (true, (6u64 << 32) | 13)] {
            let suite_wire = seal_frame(3, seq, b"interop payload", &suite, esn).unwrap();
            // Legacy path: encrypt first (as the SA datapath did), then seal.
            let mut body = b"interop payload".to_vec();
            xor_keystream_with(&ek, seq, &mut body);
            let legacy_wire = seal_with(3, seq, &body, &hk, esn).unwrap();
            assert_eq!(suite_wire, legacy_wire, "esn={esn}");
            // And each codec verifies the other's frames.
            let hi = if esn { Some((seq >> 32) as u32) } else { None };
            assert!(verify_frame(&suite_wire, &hk, hi).is_ok());
            assert!(verify_frame_with(&legacy_wire, &suite, hi).is_ok());
        }
    }

    #[test]
    fn auth_only_suite_round_trip_is_zero_copy() {
        use reset_crypto::HmacSha256Suite;
        let suite = HmacSha256Suite::auth_only(b"auth-key");
        let wire = seal_frame(8, 5, b"plain on the wire", &suite, false).unwrap();
        let pkt = open_frame(&wire, &suite, None).unwrap();
        assert_eq!(&pkt.payload[..], b"plain on the wire");
        let wire_range = wire.as_ptr() as usize..wire.as_ptr() as usize + wire.len();
        assert!(wire_range.contains(&(pkt.payload.as_ptr() as usize)));
    }

    #[test]
    fn chacha_suite_round_trip_and_bit_flip_rejection() {
        use reset_crypto::ChaCha20Poly1305Suite;
        let suite = ChaCha20Poly1305Suite::new([0x42; 32]);
        let wire = seal_frame(7, 99, b"aead sensitive", &suite, false).unwrap();
        assert_eq!(wire.len(), frame_overhead(&suite) + b"aead sensitive".len());
        // Ciphertext never leaks the plaintext.
        assert!(!wire.windows(4).any(|w| w == b"aead"));
        let pkt = open_frame(&wire, &suite, None).unwrap();
        assert_eq!(&pkt.payload[..], b"aead sensitive");
        for i in 0..wire.len() {
            let mut bad = wire.to_vec();
            bad[i] ^= 0x01;
            assert!(
                verify_frame_with(&bad, &suite, None).is_err(),
                "bit flip at byte {i} accepted"
            );
        }
    }

    #[test]
    fn chacha_esn_high_half_participates() {
        use reset_crypto::ChaCha20Poly1305Suite;
        let suite = ChaCha20Poly1305Suite::new([0x13; 32]);
        let seq = (9u64 << 32) | 77;
        let wire = seal_frame(1, seq, b"x", &suite, true).unwrap();
        assert!(verify_frame_with(&wire, &suite, Some(9)).is_ok());
        assert_eq!(
            verify_frame_with(&wire, &suite, Some(8)),
            Err(WireError::IcvMismatch)
        );
        assert_eq!(
            verify_frame_with(&wire, &suite, None),
            Err(WireError::IcvMismatch)
        );
    }

    #[test]
    fn suite_frames_reject_truncation_and_length_lies() {
        use reset_crypto::ChaCha20Poly1305Suite;
        let suite = ChaCha20Poly1305Suite::new([1; 32]);
        let wire = seal_frame(1, 1, b"abcdef", &suite, false).unwrap();
        for len in 0..frame_overhead(&suite) {
            assert!(matches!(
                verify_frame_with(&wire[..len.min(wire.len())], &suite, None),
                Err(WireError::Truncated { .. })
            ));
        }
        let mut bad = wire.to_vec();
        bad.remove(HEADER_LEN);
        assert!(matches!(
            verify_frame_with(&bad, &suite, None),
            Err(WireError::BadLength { .. })
        ));
    }

    #[test]
    fn explicit_iv_region_is_laid_out_and_authenticated() {
        use reset_crypto::{CipherSuite, HmacSha256Suite, Icv};
        /// A test-only suite with a 8-byte explicit IV riding on the
        /// wire, delegating crypto to the HMAC suite — exercises the
        /// layout math for `iv_len > 0`.
        #[derive(Debug)]
        struct ExplicitIv(HmacSha256Suite);
        impl CipherSuite for ExplicitIv {
            fn name(&self) -> &'static str {
                "test-explicit-iv"
            }
            fn key_len(&self) -> usize {
                self.0.key_len()
            }
            fn iv_len(&self) -> usize {
                8
            }
            fn icv_len(&self) -> usize {
                self.0.icv_len()
            }
            fn encrypts(&self) -> bool {
                true
            }
            fn encrypt(&self, seq: u64, body: &mut [u8]) {
                self.0.encrypt(seq, body);
            }
            fn decrypt(&self, seq: u64, body: &mut [u8]) {
                self.0.decrypt(seq, body);
            }
            fn icv(&self, seq: u64, header: &[u8], ct: &[u8], esn_hi: Option<u32>) -> Icv {
                self.0.icv(seq, header, ct, esn_hi)
            }
        }
        let suite = ExplicitIv(HmacSha256Suite::with_keystream(b"a", b"e"));
        let wire = seal_frame(4, 0x0102, b"iv payload", &suite, false).unwrap();
        assert_eq!(wire.len(), HEADER_LEN + 8 + b"iv payload".len() + 12);
        // Default fill_iv: seq big-endian in the IV's trailing bytes.
        assert_eq!(&wire[HEADER_LEN..HEADER_LEN + 8], &0x0102u64.to_be_bytes());
        let pkt = open_frame(&wire, &suite, None).unwrap();
        assert_eq!(&pkt.payload[..], b"iv payload");
        // Corrupting the IV region breaks authentication (it is AAD).
        let mut bad = wire.to_vec();
        bad[HEADER_LEN + 2] ^= 1;
        assert_eq!(
            verify_frame_with(&bad, &suite, None),
            Err(WireError::IcvMismatch)
        );
    }

    #[test]
    fn open_zc_rejects_what_open_rejects() {
        let hk = HmacKey::new(KEY);
        let wire = seal_with(5, 8, b"victim", &hk, false).unwrap();
        for i in 0..wire.len() {
            let mut bad = wire.to_vec();
            bad[i] ^= 0x80;
            let bad = Bytes::from(bad);
            assert_eq!(
                open_zc(&bad, &hk, None).is_err(),
                open(&bad, KEY, None).is_err()
            );
            assert!(open_zc(&bad, &hk, None).is_err());
        }
    }

    #[test]
    fn spi_shard_is_stable_in_range_and_spreads_sequential_spis() {
        for shards in [1usize, 2, 3, 4, 8, 16] {
            let mut occupancy = vec![0u32; shards];
            for spi in 0..1024u32 {
                let s = spi_shard(spi, shards);
                assert!(s < shards);
                assert_eq!(s, spi_shard(spi, shards), "routing must be stable");
                occupancy[s] += 1;
            }
            // Sequential SPIs must not stripe onto a subset of shards:
            // every shard owns a meaningful share of a 1024-SA fleet.
            let min = *occupancy.iter().min().unwrap();
            let expect = 1024 / shards as u32;
            assert!(
                min >= expect / 2,
                "shards={shards}: occupancy {occupancy:?} too skewed"
            );
        }
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn spi_shard_rejects_zero_shards() {
        spi_shard(1, 0);
    }
}

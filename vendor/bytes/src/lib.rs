//! Minimal, offline stand-in for the `bytes` crate.
//!
//! The build environment has no registry access, so this vendored shim
//! provides the subset of the `bytes` 1.x API the workspace uses:
//! cheaply cloneable, sliceable [`Bytes`], a growable [`BytesMut`]
//! builder with [`BufMut`]-style put methods, and `freeze`. One
//! extension beyond the upstream surface exists for the gateway receive
//! path: [`BytesMut::recycle`], which reclaims a uniquely owned buffer
//! so a hot loop can run allocation-free after warm-up.
//!
//! Semantics match upstream where the APIs overlap: `Bytes` is an
//! immutable view `(buffer, offset, len)` behind an `Arc`, so `clone`
//! and `slice` are O(1) and never copy.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::borrow::Borrow;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::ops::{Bound, Deref, RangeBounds};
use std::sync::Arc;

/// A cheaply cloneable, immutable, sliceable byte buffer.
#[derive(Clone, Default)]
pub struct Bytes {
    data: Arc<Vec<u8>>,
    off: usize,
    len: usize,
}

impl Bytes {
    /// An empty buffer (no allocation).
    pub fn new() -> Bytes {
        Bytes::default()
    }

    /// A buffer over static data (copied once; upstream borrows, but the
    /// difference is unobservable through this API).
    pub fn from_static(data: &'static [u8]) -> Bytes {
        Bytes::copy_from_slice(data)
    }

    /// Copies `data` into a fresh buffer.
    pub fn copy_from_slice(data: &[u8]) -> Bytes {
        Bytes {
            len: data.len(),
            data: Arc::new(data.to_vec()),
            off: 0,
        }
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True iff empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// O(1) sub-slice sharing the same backing buffer.
    ///
    /// # Panics
    ///
    /// Panics if the range is out of bounds.
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Bytes {
        let start = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let end = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => self.len,
        };
        assert!(start <= end && end <= self.len, "slice out of bounds");
        Bytes {
            data: Arc::clone(&self.data),
            off: self.off + start,
            len: end - start,
        }
    }

    fn as_slice(&self) -> &[u8] {
        &self.data[self.off..self.off + self.len]
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl Borrow<[u8]> for Bytes {
    fn borrow(&self) -> &[u8] {
        self.as_slice()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Bytes {
        Bytes {
            len: v.len(),
            data: Arc::new(v),
            off: 0,
        }
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(v: &'static [u8]) -> Bytes {
        Bytes::copy_from_slice(v)
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.as_slice() {
            for esc in std::ascii::escape_default(b) {
                write!(f, "{}", esc as char)?;
            }
        }
        write!(f, "\"")
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Bytes) -> bool {
        self.as_slice() == other.as_slice()
    }
}
impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_slice() == other
    }
}
impl PartialEq<&[u8]> for Bytes {
    fn eq(&self, other: &&[u8]) -> bool {
        self.as_slice() == *other
    }
}
impl<const N: usize> PartialEq<[u8; N]> for Bytes {
    fn eq(&self, other: &[u8; N]) -> bool {
        self.as_slice() == other
    }
}
impl<const N: usize> PartialEq<&[u8; N]> for Bytes {
    fn eq(&self, other: &&[u8; N]) -> bool {
        self.as_slice() == *other
    }
}
impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self.as_slice() == other.as_slice()
    }
}
impl PartialEq<Bytes> for Vec<u8> {
    fn eq(&self, other: &Bytes) -> bool {
        self.as_slice() == other.as_slice()
    }
}
impl PartialEq<Bytes> for [u8] {
    fn eq(&self, other: &Bytes) -> bool {
        self == other.as_slice()
    }
}

impl PartialOrd for Bytes {
    fn partial_cmp(&self, other: &Bytes) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Bytes {
    fn cmp(&self, other: &Bytes) -> std::cmp::Ordering {
        self.as_slice().cmp(other.as_slice())
    }
}

impl Hash for Bytes {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.as_slice().hash(state);
    }
}

impl<'a> IntoIterator for &'a Bytes {
    type Item = &'a u8;
    type IntoIter = std::slice::Iter<'a, u8>;
    fn into_iter(self) -> Self::IntoIter {
        self.as_slice().iter()
    }
}

/// Sink half of the buffer API: big-endian put methods.
///
/// Only [`BytesMut`] implements it here; generic code bounds on
/// `BufMut` exactly as with upstream `bytes`.
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Appends a big-endian `u16`.
    fn put_u16(&mut self, v: u16) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Appends a big-endian `u32`.
    fn put_u32(&mut self, v: u32) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Appends a big-endian `u64`.
    fn put_u64(&mut self, v: u64) {
        self.put_slice(&v.to_be_bytes());
    }
}

/// A growable byte buffer that freezes into [`Bytes`] without copying.
#[derive(Default)]
pub struct BytesMut {
    // Uniquely owned while the BytesMut exists; shared only on freeze.
    data: Arc<Vec<u8>>,
}

impl BytesMut {
    /// An empty buffer.
    pub fn new() -> BytesMut {
        BytesMut::default()
    }

    /// An empty buffer with reserved capacity.
    pub fn with_capacity(cap: usize) -> BytesMut {
        BytesMut {
            data: Arc::new(Vec::with_capacity(cap)),
        }
    }

    /// Reclaims the buffer backing `b` when `b` is its unique owner —
    /// keeping both the byte allocation *and* the `Arc` alive, so the
    /// reclaim path performs zero heap operations — and guarantees at
    /// least `capacity` spare bytes. When `b` is still shared, allocates
    /// `capacity` fresh. The returned buffer is empty either way.
    ///
    /// This is the shim's one extension over upstream `bytes`: a receive
    /// loop keeps one `Bytes` handle to its previous output and recycles
    /// it here, so a consumer that drops payloads between packets gets an
    /// allocation-free steady state.
    pub fn recycle(b: Bytes, capacity: usize) -> BytesMut {
        let mut data = b.data;
        match Arc::get_mut(&mut data) {
            Some(v) => {
                v.clear();
                v.reserve(capacity);
                BytesMut { data }
            }
            None => BytesMut::with_capacity(capacity),
        }
    }

    fn vec_mut(&mut self) -> &mut Vec<u8> {
        Arc::get_mut(&mut self.data).expect("BytesMut is uniquely owned")
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True iff empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Current capacity.
    pub fn capacity(&self) -> usize {
        self.data.capacity()
    }

    /// Clears contents, keeping capacity.
    pub fn clear(&mut self) {
        self.vec_mut().clear();
    }

    /// Reserves space for `additional` more bytes.
    pub fn reserve(&mut self, additional: usize) {
        self.vec_mut().reserve(additional);
    }

    /// Appends a slice (mirrors `Vec::extend_from_slice`).
    pub fn extend_from_slice(&mut self, src: &[u8]) {
        self.vec_mut().extend_from_slice(src);
    }

    /// Converts into an immutable [`Bytes`] without copying.
    pub fn freeze(self) -> Bytes {
        let len = self.data.len();
        Bytes {
            data: self.data,
            off: 0,
            len,
        }
    }
}

impl AsMut<[u8]> for BytesMut {
    fn as_mut(&mut self) -> &mut [u8] {
        self.vec_mut().as_mut_slice()
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl fmt::Debug for BytesMut {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(&self.freeze_ref(), f)
    }
}

impl BytesMut {
    fn freeze_ref(&self) -> Bytes {
        Bytes::copy_from_slice(&self.data)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slice_shares_storage() {
        let b = Bytes::copy_from_slice(b"hello world");
        let s = b.slice(6..);
        assert_eq!(&s[..], b"world");
        assert_eq!(Arc::strong_count(&b.data), 2);
    }

    #[test]
    fn bytes_mut_round_trip() {
        let mut m = BytesMut::with_capacity(16);
        m.put_u32(0xDEADBEEF);
        m.put_slice(b"xy");
        let b = m.freeze();
        assert_eq!(&b[..4], &0xDEADBEEFu32.to_be_bytes());
        assert_eq!(&b[4..], b"xy");
    }

    #[test]
    fn recycle_reuses_unique_buffer_and_arc() {
        let mut m = BytesMut::with_capacity(64);
        m.put_slice(b"first packet payload");
        let frozen = m.freeze();
        let cap = frozen.data.capacity();
        let ptr = frozen.data.as_ptr();
        let arc_ptr = Arc::as_ptr(&frozen.data);
        // Unique owner: both the byte allocation and the Arc itself are
        // reclaimed — the reclaim path is heap-operation-free.
        let recycled = BytesMut::recycle(frozen, 8);
        assert!(recycled.is_empty());
        assert_eq!(recycled.data.capacity(), cap);
        assert_eq!(recycled.data.as_ptr(), ptr);
        assert_eq!(Arc::as_ptr(&recycled.data), arc_ptr);
    }

    #[test]
    fn recycle_guarantees_requested_capacity() {
        // Regression: reserve was relative to the old capacity, so a
        // small reclaimed buffer could come back under `capacity` and
        // reallocate mid-use.
        let mut m = BytesMut::with_capacity(16);
        m.put_slice(b"tiny");
        let recycled = BytesMut::recycle(m.freeze(), 640);
        assert!(recycled.capacity() >= 640, "got {}", recycled.capacity());
    }

    #[test]
    fn recycle_falls_back_when_shared() {
        let b = Bytes::copy_from_slice(b"shared");
        let keep = b.clone();
        let fresh = BytesMut::recycle(b, 32);
        assert!(fresh.capacity() >= 32);
        assert_eq!(&keep[..], b"shared");
    }

    #[test]
    fn equality_across_types() {
        let b = Bytes::copy_from_slice(b"abc");
        assert_eq!(b, *b"abc");
        assert_eq!(b, b"abc");
        assert_eq!(b, b"abc".to_vec());
        assert_eq!(b, Bytes::from(b"abc".to_vec()));
        assert!(b.to_vec() == vec![b'a', b'b', b'c']);
    }

    #[test]
    fn debug_escapes() {
        let b = Bytes::copy_from_slice(b"a\x00b");
        assert_eq!(format!("{b:?}"), "b\"a\\x00b\"");
    }
}

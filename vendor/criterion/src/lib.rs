//! Minimal, offline stand-in for the `criterion` benchmark harness.
//!
//! The build environment has no registry access, so this vendored shim
//! implements the subset of the `criterion` 0.5 API the workspace's
//! benches use: [`Criterion`], [`BenchmarkId`], [`Throughput`],
//! benchmark groups, `bench_function` / `bench_with_input`, `iter` /
//! `iter_batched`, and the [`criterion_group!`] / [`criterion_main!`]
//! macros. Statistics are deliberately simple — warm-up, then the mean
//! over `sample_size` samples — which is enough for the repository's
//! before/after comparisons on a quiet machine.
//!
//! CLI behaviour mirrors what `cargo bench` needs: positional arguments
//! act as substring filters and `--test` runs every benchmark exactly
//! once (the CI smoke mode). Set `CRITERION_JSON=<path>` to append one
//! JSON line per benchmark with the measured numbers.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;
use std::fs::OpenOptions;
use std::io::Write as _;
use std::time::{Duration, Instant};

/// How many elements or bytes one iteration of a benchmark processes;
/// used to derive a rate from the measured time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Elements per iteration.
    Elements(u64),
    /// Bytes per iteration.
    Bytes(u64),
}

/// Identifies one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter`.
    pub fn new(function_name: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{function_name}/{parameter}"),
        }
    }

    /// Just the parameter (for single-function groups).
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.id)
    }
}

/// Batch sizing hint for [`Bencher::iter_batched`] (accepted for API
/// compatibility; the shim times each routine call individually).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One setup per sample.
    PerIteration,
}

/// Passed to benchmark closures; runs and times the measurement routine.
pub struct Bencher<'a> {
    samples: &'a mut Vec<f64>,
    sample_size: usize,
    test_mode: bool,
}

impl Bencher<'_> {
    /// Times `routine`, called in a loop.
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        if self.test_mode {
            std::hint::black_box(routine());
            return;
        }
        // Warm-up: find an iteration count that runs ≥ ~25 ms.
        let mut iters: u64 = 1;
        loop {
            let t = Instant::now();
            for _ in 0..iters {
                std::hint::black_box(routine());
            }
            let elapsed = t.elapsed();
            if elapsed >= Duration::from_millis(25) || iters > 1 << 24 {
                let per_iter = elapsed.as_nanos() as f64 / iters as f64;
                // Aim each sample at ~25 ms.
                let sample_iters = ((25e6 / per_iter).ceil() as u64).max(1);
                for _ in 0..self.sample_size {
                    let t = Instant::now();
                    for _ in 0..sample_iters {
                        std::hint::black_box(routine());
                    }
                    self.samples
                        .push(t.elapsed().as_nanos() as f64 / sample_iters as f64);
                }
                return;
            }
            iters *= 4;
        }
    }

    /// Times `routine` on fresh input from `setup` each call; only the
    /// routine is on the clock.
    pub fn iter_batched<I, O>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(I) -> O,
        _size: BatchSize,
    ) {
        if self.test_mode {
            std::hint::black_box(routine(setup()));
            return;
        }
        // Warm-up a few calls, then time `sample_size` batches.
        for _ in 0..3 {
            std::hint::black_box(routine(setup()));
        }
        let per_sample = 8usize;
        for _ in 0..self.sample_size {
            let mut total = Duration::ZERO;
            for _ in 0..per_sample {
                let input = setup();
                let t = Instant::now();
                std::hint::black_box(routine(input));
                total += t.elapsed();
            }
            self.samples
                .push(total.as_nanos() as f64 / per_sample as f64);
        }
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the per-iteration throughput used to report a rate.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Sets how many samples to take (default 20).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Benchmarks `f` under `id` within this group.
    pub fn bench_function(
        &mut self,
        id: impl fmt::Display,
        f: impl FnMut(&mut Bencher<'_>),
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id);
        let (tp, n) = (self.throughput, self.sample_size);
        self.criterion.run_one(&full, tp, n, f);
        self
    }

    /// Benchmarks `f` with a borrowed input value.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher<'_>, &I),
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id);
        let (tp, n) = (self.throughput, self.sample_size);
        self.criterion.run_one(&full, tp, n, |b| f(b, input));
        self
    }

    /// Ends the group (no-op; exists for API compatibility).
    pub fn finish(&mut self) {}
}

/// The benchmark harness entry point.
pub struct Criterion {
    filters: Vec<String>,
    test_mode: bool,
    json_path: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            filters: Vec::new(),
            test_mode: false,
            json_path: std::env::var("CRITERION_JSON").ok(),
        }
    }
}

impl Criterion {
    /// Builds a harness configured from `cargo bench` CLI arguments:
    /// positional substrings filter benchmark names; `--test` runs each
    /// selected benchmark once without timing.
    pub fn from_args() -> Self {
        let mut c = Criterion::default();
        let mut args = std::env::args().skip(1).peekable();
        while let Some(a) = args.next() {
            match a.as_str() {
                "--test" => c.test_mode = true,
                "--bench" | "--profile-time" | "--save-baseline" | "--baseline"
                | "--load-baseline" | "--measurement-time" | "--warm-up-time" | "--sample-size" => {
                    // Flags with a value we don't use; skip the value if
                    // it isn't another flag.
                    if matches!(args.peek(), Some(v) if !v.starts_with('-')) {
                        args.next();
                    }
                }
                flag if flag.starts_with('-') => {}
                filter => c.filters.push(filter.to_string()),
            }
        }
        c
    }

    /// Opens a benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            throughput: None,
            sample_size: 20,
        }
    }

    /// Benchmarks `f` under a bare name (no group).
    pub fn bench_function(
        &mut self,
        id: impl fmt::Display,
        f: impl FnMut(&mut Bencher<'_>),
    ) -> &mut Self {
        self.run_one(&id.to_string(), None, 20, f);
        self
    }

    fn selected(&self, id: &str) -> bool {
        self.filters.is_empty() || self.filters.iter().any(|f| id.contains(f))
    }

    fn run_one(
        &mut self,
        id: &str,
        throughput: Option<Throughput>,
        sample_size: usize,
        mut f: impl FnMut(&mut Bencher<'_>),
    ) {
        if !self.selected(id) {
            return;
        }
        if self.test_mode {
            let mut samples = Vec::new();
            let mut b = Bencher {
                samples: &mut samples,
                sample_size,
                test_mode: true,
            };
            f(&mut b);
            println!("test {id} ... ok");
            return;
        }
        let mut samples = Vec::new();
        let mut b = Bencher {
            samples: &mut samples,
            sample_size,
            test_mode: false,
        };
        f(&mut b);
        if samples.is_empty() {
            println!("{id:<48} (no samples)");
            return;
        }
        samples.sort_by(|a, b| a.total_cmp(b));
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        let median = samples[samples.len() / 2];
        let rate = throughput.map(|tp| match tp {
            Throughput::Elements(n) => (n as f64 / (mean / 1e9), "elem/s"),
            Throughput::Bytes(n) => (n as f64 / (mean / 1e9), "B/s"),
        });
        match rate {
            Some((r, unit)) => println!(
                "{id:<48} time: {} (median {})   thrpt: {} {unit}",
                fmt_ns(mean),
                fmt_ns(median),
                fmt_si(r)
            ),
            None => println!(
                "{id:<48} time: {} (median {})",
                fmt_ns(mean),
                fmt_ns(median)
            ),
        }
        if let Some(path) = &self.json_path {
            let tp_json = match throughput {
                Some(Throughput::Elements(n)) => format!(",\"elements\":{n}"),
                Some(Throughput::Bytes(n)) => format!(",\"bytes\":{n}"),
                None => String::new(),
            };
            let line = format!(
                "{{\"id\":\"{id}\",\"mean_ns\":{mean:.2},\"median_ns\":{median:.2}{tp_json}}}\n"
            );
            if let Ok(mut f) = OpenOptions::new().create(true).append(true).open(path) {
                let _ = f.write_all(line.as_bytes());
            }
        }
    }

    /// Prints the trailing summary (no-op; for API compatibility).
    pub fn final_summary(&mut self) {}
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1e3 {
        format!("{ns:.2} ns")
    } else if ns < 1e6 {
        format!("{:.2} µs", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.2} ms", ns / 1e6)
    } else {
        format!("{:.2} s", ns / 1e9)
    }
}

fn fmt_si(rate: f64) -> String {
    if rate >= 1e9 {
        format!("{:.2} G", rate / 1e9)
    } else if rate >= 1e6 {
        format!("{:.2} M", rate / 1e6)
    } else if rate >= 1e3 {
        format!("{:.2} K", rate / 1e3)
    } else {
        format!("{rate:.2} ")
    }
}

/// Declares a function that runs a list of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name(c: &mut $crate::Criterion) {
            $($target(c);)+
        }
    };
}

/// Declares `main` for a bench target (use with `harness = false`).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut criterion = $crate::Criterion::from_args();
            $($group(&mut criterion);)+
            criterion.final_summary();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_format_like_criterion() {
        assert_eq!(BenchmarkId::new("f", 64).to_string(), "f/64");
        assert_eq!(BenchmarkId::from_parameter(1024).to_string(), "1024");
    }

    #[test]
    fn test_mode_runs_each_once() {
        let mut c = Criterion {
            filters: vec![],
            test_mode: true,
            json_path: None,
        };
        let mut runs = 0;
        {
            let mut g = c.benchmark_group("g");
            g.bench_function("one", |b| {
                b.iter(|| {
                    runs += 1;
                })
            });
            g.finish();
        }
        assert_eq!(runs, 1);
    }

    #[test]
    fn filters_select_by_substring() {
        let c = Criterion {
            filters: vec!["window".into()],
            test_mode: true,
            json_path: None,
        };
        assert!(c.selected("window/in_order/64"));
        assert!(!c.selected("crypto/sha256"));
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(fmt_ns(12.5), "12.50 ns");
        assert_eq!(fmt_ns(1_500.0), "1.50 µs");
        assert!(fmt_si(2.5e6).starts_with("2.50 M"));
    }
}

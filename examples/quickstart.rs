//! Quickstart: a gateway pair surviving a receiver reset via SAVE/FETCH.
//!
//! ```text
//! cargo run -p system-tests --example quickstart
//! ```
//!
//! The scenario of the paper in ~60 lines, driven entirely through the
//! [`reset_ipsec::Gateway`] engine API: gateway `p` streams real ESP
//! frames (ChaCha20-Poly1305 by default) to gateway `q`; `q` is reset
//! mid-stream; thanks to the periodic SAVE and the FETCH + `2K` leap at
//! recovery, replayed ciphertext is rejected and fresh traffic resumes
//! after a bounded gap. Every verdict arrives as a
//! [`reset_ipsec::GatewayEvent`] from `poll_events()`.
//!
//! Migrating from the PR 1/2 free-function style: where this example
//! previously hand-wired `Outbound::new(sa, store, k)` /
//! `Inbound::new(sa, store, k, w)` and matched on each
//! `rx.process(&wire)` result, the `GatewayBuilder` now owns suite,
//! save interval, window and stores in one place, `add_peer` installs
//! the SA pair, and the *event stream* replaces per-call result
//! matching. The layer types are still public — see the
//! `reset_ipsec` crate docs for the full migration table.

use reset_ipsec::{GatewayBuilder, GatewayEvent};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. One SA pair between two gateways; in production the keys come
    //    from IKE (see the vpn_gateway example). K = 25 is the paper's
    //    calibrated save interval.
    const SPI: u32 = 0x1001;
    let mut p = GatewayBuilder::in_memory()
        .save_interval(25)
        .window(64)
        .build();
    let mut q = GatewayBuilder::in_memory()
        .save_interval(25)
        .window(64)
        .build();
    p.add_peer(SPI, b"demo-master-secret");
    q.add_peer(SPI, b"demo-master-secret");

    // 2. Steady traffic; the adversary records every frame.
    let mut recorded = Vec::new();
    for i in 0..100u32 {
        let frame = p
            .protect(SPI, format!("packet {i}").as_bytes())?
            .expect("up");
        recorded.push(frame.wire.clone());
        q.push_wire(&frame.wire)?;
    }
    let delivered = q
        .poll_events()
        .iter()
        .filter(|e| matches!(e, GatewayEvent::Delivered { .. }))
        .count();
    assert_eq!(delivered, 100);
    // Let the background SAVE reach the disk.
    q.save_completed()?;
    println!(
        "sent and delivered {delivered} packets; receiver edge = {}",
        q.right_edge(SPI).expect("installed")
    );

    // 3. The receiver gateway is reset: volatile windows gone.
    q.reset();
    println!("receiver reset! (window and counters forgotten)");

    // 4. Recover: FETCH the saved edge, leap by 2K, SAVE synchronously.
    q.recover()?;
    assert!(matches!(
        q.poll_events()[..],
        [GatewayEvent::Recovered { .. }]
    ));
    println!(
        "receiver recovered; leaped right edge = {}",
        q.right_edge(SPI).expect("installed")
    );

    // 5. The adversary replays the entire recorded history. Nothing is
    //    accepted — every frame authenticates but bounces off the window.
    for wire in &recorded {
        q.push_wire(wire)?;
    }
    let events = q.poll_events();
    assert!(
        events
            .iter()
            .all(|e| matches!(e, GatewayEvent::ReplayDropped { .. })),
        "a replay got through: {events:?}"
    );
    println!(
        "adversary replayed {} frames: all {} rejected",
        recorded.len(),
        events.len()
    );

    // 6. Fresh traffic resumes; at most 2K packets are sacrificed while
    //    the sender's counter catches up with the leaped edge.
    let mut sacrificed = 0;
    loop {
        let frame = p.protect(SPI, b"post-reset data")?.expect("up");
        q.push_wire(&frame.wire)?;
        match q.poll_events().pop().expect("one event per frame") {
            GatewayEvent::Delivered { seq, .. } => {
                println!(
                    "traffic resumed at {seq} after sacrificing {sacrificed} packets (bound: {})",
                    2 * 25
                );
                break;
            }
            _ => sacrificed += 1,
        }
        assert!(sacrificed <= 2 * 25, "condition (ii) violated");
    }
    println!("convergence achieved: no replay accepted, loss bounded by 2K");
    Ok(())
}

//! Quickstart: an SA pair surviving a receiver reset via SAVE/FETCH.
//!
//! ```text
//! cargo run -p reset-harness --example quickstart
//! ```
//!
//! The scenario of the paper in ~60 lines: sender `p` streams packets to
//! receiver `q` through a real ESP datapath (HMAC ICV, keystream
//! encryption, anti-replay window). `q` is reset mid-stream; thanks to
//! the periodic SAVE and the FETCH + `2K` leap at wake-up, replayed
//! traffic is rejected and fresh traffic resumes after a bounded gap.

use reset_ipsec::{Inbound, Outbound, RxResult, SaKeys, SecurityAssociation};
use reset_stable::MemStable;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. One security association; in production these keys come from
    //    IKE (see the vpn_gateway example).
    let keys = SaKeys::derive(b"demo-master-secret", b"p->q");
    let sa = SecurityAssociation::new(0x1001, keys);
    let k = 25; // the paper's calibrated save interval
    let mut p = Outbound::new(sa.clone(), MemStable::new(), k);
    let mut q = Inbound::new(sa, MemStable::new(), k, 64);

    // 2. Steady traffic; the adversary records everything.
    let mut recorded = Vec::new();
    for i in 0..100u32 {
        let wire = p.protect(format!("packet {i}").as_bytes())?.expect("up");
        recorded.push(wire.clone());
        assert!(q.process(&wire)?.is_delivered());
    }
    // Let the background SAVE reach the disk.
    q.save_completed()?;
    println!(
        "sent and delivered 100 packets; receiver edge = {}",
        q.seq_state().right_edge()
    );

    // 3. The receiver is reset: volatile window gone.
    q.reset();
    println!("receiver reset! (window and counters forgotten)");

    // 4. Wake up: FETCH the saved edge, leap by 2K, SAVE synchronously.
    q.wake_up()?;
    println!(
        "receiver woke up; leaped right edge = {}",
        q.seq_state().right_edge()
    );

    // 5. The adversary replays the entire recorded history. Nothing is
    //    accepted.
    let mut rejected = 0;
    for wire in &recorded {
        match q.process(wire)? {
            RxResult::AntiReplay { .. } => rejected += 1,
            other => panic!("replay got through: {other:?}"),
        }
    }
    println!(
        "adversary replayed {} packets: all {} rejected",
        recorded.len(),
        rejected
    );

    // 6. Fresh traffic resumes; at most 2K packets are sacrificed while
    //    the sender's counter catches up with the leaped edge.
    let mut sacrificed = 0;
    loop {
        let wire = p.protect(b"post-reset data")?.expect("up");
        match q.process(&wire)? {
            RxResult::Delivered { seq, .. } => {
                println!(
                    "traffic resumed at {seq} after sacrificing {sacrificed} packets (bound: {})",
                    2 * k
                );
                break;
            }
            _ => sacrificed += 1,
        }
        assert!(sacrificed <= 2 * k, "condition (ii) violated");
    }
    println!("convergence achieved: no replay accepted, loss bounded by 2K");
    Ok(())
}

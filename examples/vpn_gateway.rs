//! A VPN gateway with many SAs rebooting: renegotiate everything (the
//! IETF remedy) vs the `Gateway` engine's SAVE/FETCH recovery (the
//! paper's).
//!
//! ```text
//! cargo run --release -p system-tests --example vpn_gateway
//! ```
//!
//! Establishes N SA pairs through the real (simplified) ISAKMP handshake
//! with OAKLEY group-1 Diffie–Hellman, installs them into one
//! [`reset_ipsec::Gateway`], pushes traffic through each, reboots the
//! gateway, and times both recovery strategies on this host.

use std::time::Instant;

use bytes::Bytes;
use reset_crypto::oakley_group1;
use reset_ipsec::{run_handshake, CostModel, GatewayBuilder, GatewayEvent};
use reset_stable::{Durability, WalStable};
use reset_telemetry::Telemetry;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let n_sas = 8u32;
    println!("=== gateway with {n_sas} SAs (each established via ISAKMP + OAKLEY group 1) ===");

    // 1. Establish N SAs the expensive way, timing it, and install each
    //    negotiated SA pair into the engine.
    let mut gw = GatewayBuilder::in_memory()
        .save_interval(25)
        .window(64)
        .build();
    let t0 = Instant::now();
    let mut total_cost = None;
    for i in 0..n_sas {
        let pair = run_handshake(
            oakley_group1(),
            b"gateway-psk",
            format!("initiator-secret-{i}").as_bytes(),
            format!("responder-secret-{i}").as_bytes(),
            0x1000 + i,
            0x2000 + i,
        )?;
        gw.install_pair(pair.sa_i2r);
        total_cost = Some(pair.cost);
    }
    let establish_elapsed = t0.elapsed();
    println!(
        "established {n_sas} SAs in {establish_elapsed:?} ({} messages, {} modexps each)",
        total_cost.map(|c| c.messages).unwrap_or(0),
        total_cost.map(|c| c.modexps).unwrap_or(0),
    );

    // 2. Traffic on every SA (sealed and received by this host — the
    //    tunnel loops back for the demo); background saves land.
    for spi in 0x1000..0x1000 + n_sas {
        for _ in 0..60 {
            let frame = gw.protect(spi, b"tunnel payload")?.expect("up");
            gw.push_wire(&frame.wire)?;
        }
    }
    let delivered = gw
        .poll_events()
        .iter()
        .filter(|e| matches!(e, GatewayEvent::Delivered { .. }))
        .count();
    assert_eq!(delivered as u32, 60 * n_sas);
    gw.save_completed()?;
    println!("pushed 60 packets through each SA");

    // 3. The gateway reboots.
    gw.reset();
    println!("gateway rebooted: all volatile counters lost");

    // 4a. The paper's path: one engine call — FETCH + leap + SAVE for
    //     every SA.
    let t1 = Instant::now();
    let recovered = gw.recover()?;
    let recover_elapsed = t1.elapsed();
    assert!(matches!(
        gw.poll_events()[..],
        [GatewayEvent::Recovered { .. }]
    ));
    println!("SAVE/FETCH recover: {recovered} SA directions in {recover_elapsed:?}");

    // 4b. The IETF path (for comparison): a full re-handshake per SA.
    let t2 = Instant::now();
    for i in 0..n_sas {
        let _ = run_handshake(
            oakley_group1(),
            b"gateway-psk",
            format!("initiator-secret2-{i}").as_bytes(),
            format!("responder-secret2-{i}").as_bytes(),
            0x3000 + i,
            0x4000 + i,
        )?;
    }
    let rehandshake_elapsed = t2.elapsed();
    println!("IETF re-establishment:  {n_sas} handshakes in {rehandshake_elapsed:?}");

    // 5. The paper-era estimate (Pentium III + WAN) for context.
    if let Some(cost) = total_cost {
        let est = cost.estimate_ns(&CostModel::paper_era()) as f64 / 1e6;
        println!("paper-era estimate: {est:.1} ms per handshake vs 0.2 ms per SAVE/FETCH recovery");
    }

    let speedup = rehandshake_elapsed.as_nanos() as f64 / recover_elapsed.as_nanos().max(1) as f64;
    println!(
        "\nresult: SAVE/FETCH recovery is {speedup:.0}x faster than renegotiating {n_sas} SAs"
    );
    assert!(speedup > 2.0, "recovery must win decisively");

    // 6. And the recovered SAs still work.
    let frame = gw.protect(0x1000, b"after reboot")?.expect("up");
    gw.push_wire(&frame.wire)?;
    println!("recovered SA verified: traffic flows again without renegotiation");

    // 7. Fleet scale-out: the same reboot story on a 256-SA sharded
    //    gateway. SAs are partitioned by SPI hash across worker shards,
    //    each owned permanently by a long-lived pool thread spawned
    //    here, at build time; the batched receive path and recover()
    //    are jobs on the shards' work queues, and every SA wakes up
    //    through FETCH + 2K — still no renegotiation anywhere.
    let fleet_sas = 256u32;
    // One constant for both the builder and the 2K assertions below —
    // the sacrifice bound is a function of this exact save interval.
    let k = 25u64;
    let shards = std::thread::available_parallelism().map_or(4, |p| p.get());
    println!("\n=== fleet scale-out: {fleet_sas} SAs on a {shards}-shard gateway ===");
    let mut fleet = GatewayBuilder::in_memory_sharded(shards)
        .save_interval(k)
        .window(64)
        .build_sharded();
    for spi in 1..=fleet_sas {
        fleet.add_peer(spi, b"fleet-master");
    }
    let frames: Vec<Bytes> = (0..8)
        .flat_map(|_| {
            (1..=fleet_sas)
                .map(|spi| {
                    fleet
                        .protect(spi, b"fleet payload")
                        .unwrap()
                        .expect("up")
                        .wire
                })
                .collect::<Vec<_>>()
        })
        .collect();
    let t3 = Instant::now();
    fleet.push_wire_batch(&frames)?;
    let drain_elapsed = t3.elapsed();
    let delivered = fleet
        .poll_events()
        .iter()
        .filter(|e| matches!(e, GatewayEvent::Delivered { .. }))
        .count();
    assert_eq!(delivered, frames.len());
    println!(
        "drained {} frames across {fleet_sas} SAs in {drain_elapsed:?} ({} ns/frame)",
        frames.len(),
        drain_elapsed.as_nanos() / frames.len() as u128
    );
    fleet.save_completed()?;
    fleet.reset();
    let t4 = Instant::now();
    let recovered = fleet.recover()?;
    let fleet_recover = t4.elapsed();
    assert_eq!(recovered, 2 * fleet_sas as usize);
    assert!(matches!(
        fleet.poll_events()[..],
        [GatewayEvent::Recovered { .. }]
    ));
    println!(
        "shard-parallel SAVE/FETCH reboot: {recovered} SA directions in {fleet_recover:?} \
         (vs one IKE handshake per SA for the IETF remedy)"
    );
    // The paper's condition (ii) on the recovered fleet: the leap may
    // sacrifice at most 2K fresh frames per SA before traffic flows.
    let mut sacrificed = 0u64;
    loop {
        let frame = fleet.protect(1, b"fleet after reboot")?.expect("up");
        fleet.push_wire(&frame.wire)?;
        match fleet.poll_events().pop() {
            Some(GatewayEvent::Delivered { .. }) => break,
            Some(GatewayEvent::ReplayDropped { .. }) => {
                sacrificed += 1;
                assert!(sacrificed <= 2 * k, "sacrifice exceeded the 2K bound");
            }
            other => panic!("unexpected post-reboot verdict: {other:?}"),
        }
    }
    println!(
        "fleet verified: traffic flows again after sacrificing {sacrificed} frame(s) \
         to the leap (bound: 2K = {})",
        2 * k
    );

    // 8. Pipelined receive: submit_batch hands a chunk to the worker
    //    shards and returns immediately, so the next chunk is sealed
    //    while the previous one is verified — on a multi-core host the
    //    seal cost hides behind the shards' work. drain_events is the
    //    one barrier at the end.
    let chunks = 8usize;
    let per_chunk = 512usize;
    let t5 = Instant::now();
    for _ in 0..chunks {
        let chunk: Vec<Bytes> = (0..per_chunk)
            .map(|i| {
                let spi = 1 + (i as u32 % fleet_sas);
                fleet
                    .protect(spi, b"pipelined payload")
                    .unwrap()
                    .expect("up")
                    .wire
            })
            .collect();
        fleet.submit_batch(&chunk); // shards chew while we seal the next chunk
    }
    let events = fleet.drain_events()?;
    let pipelined_elapsed = t5.elapsed();
    assert_eq!(events.len(), chunks * per_chunk, "one verdict per frame");
    let delivered = events
        .iter()
        .filter(|e| matches!(e, GatewayEvent::Delivered { .. }))
        .count();
    // SPIs other than 1 are still inside their post-reboot sacrifice
    // windows, so a bounded prefix of each SA's stream is dropped —
    // condition (ii) again, never more than 2K per SA.
    let sacrificed = events
        .iter()
        .filter(|e| matches!(e, GatewayEvent::ReplayDropped { .. }))
        .count();
    assert_eq!(delivered + sacrificed, chunks * per_chunk);
    assert!(sacrificed <= fleet_sas as usize * 2 * k as usize);
    assert!(delivered > 0);
    println!(
        "pipelined seal+drain: {} frames in {pipelined_elapsed:?} ({} ns/frame) via \
         submit_batch/drain_events over {shards} shard worker(s); {delivered} delivered, \
         {sacrificed} sacrificed to the fleet's remaining leap windows",
        chunks * per_chunk,
        pipelined_elapsed.as_nanos() / (chunks * per_chunk) as u128
    );

    // 9. Choosing the store backend. Everything above ran on MemStable,
    //    which only survives the *simulated* reboot of reset(): drop the
    //    process and the counters are gone. reset-stable ships three
    //    backends behind the same StableStore trait:
    //
    //      MemStable   volatile      tests/benchmarks; dies with the process
    //      FileStable  file per slot small SADBs; Durability::PowerLoss adds
    //                                file+dir fsync per SAVE
    //      WalStable   shared log    fleets: a SAVE is one 37-byte CRC'd
    //                                generation-stamped append to a log the
    //                                whole shard shares (>=5x cheaper per
    //                                slot than file-per-slot at 1024 SAs;
    //                                ~300x measured), compacted in place
    //
    //    Here the reboot is real: the gateway is dropped, then rebuilt
    //    from nothing but the WAL's on-disk bytes.
    println!("\n=== durable reboot: counters outlive the gateway via a shared WAL ===");
    let wal_dir = std::env::temp_dir().join(format!("vpn-gateway-wal-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&wal_dir);
    std::fs::create_dir_all(&wal_dir)?;
    let wal_path = wal_dir.join("gateway.wal");
    let spi = 9u32;
    let replayed_wire;
    {
        let wal = WalStable::open(&wal_path, Durability::ProcessCrash)?;
        let mut durable = GatewayBuilder::with_stores(move |_spi, _dir| wal.clone())
            .save_interval(k)
            .window(64)
            .build();
        durable.add_peer(spi, b"durable-master");
        let mut last = None;
        for _ in 0..60 {
            let frame = durable.protect(spi, b"durable payload")?.expect("up");
            durable.push_wire(&frame.wire)?;
            last = Some(frame.wire);
        }
        durable.save_completed()?;
        replayed_wire = last.expect("sent frames");
        // The gateway is dropped here: unlike reset(), nothing volatile
        // survives. Only the WAL file does.
    }
    // The reborn gateway carries a telemetry handle: every event kind,
    // recovery latency and WAL append below is counted by the engine
    // itself, and the final tallies print from one snapshot instead of
    // hand-kept counters.
    let telemetry = Telemetry::new();
    let wal = WalStable::open(&wal_path, Durability::ProcessCrash)?;
    wal.attach_telemetry(&telemetry);
    let mut reborn = GatewayBuilder::with_stores(move |_spi, _dir| wal.clone())
        .save_interval(k)
        .window(64)
        .telemetry(telemetry.clone())
        .build();
    reborn.add_peer(spi, b"durable-master");
    // A rebuilt SA must not trust its zeroed counters: FETCH + leap
    // first, exactly as after any other reset.
    reborn.reset();
    reborn.recover()?;
    reborn.poll_events();
    // The adversary kept a pre-reboot frame; the leaped window has
    // moved past the entire old conversation, so it dies as a replay.
    reborn.push_wire(&replayed_wire)?;
    assert!(
        matches!(
            reborn.poll_events()[..],
            [GatewayEvent::ReplayDropped { .. }]
        ),
        "pre-reboot traffic must stay dead after a durable restart"
    );
    // Fresh traffic flows within the 2K sacrifice bound, and the
    // outbound counter provably leaped past everything ever sent.
    let seq = loop {
        let frame = reborn.protect(spi, b"after durable reboot")?.expect("up");
        reborn.push_wire(&frame.wire)?;
        match reborn.poll_events().pop() {
            Some(GatewayEvent::Delivered { .. }) => break frame.seq.value(),
            Some(GatewayEvent::ReplayDropped { .. }) => {}
            other => panic!("unexpected post-reboot verdict: {other:?}"),
        }
    };
    assert!(seq > 60, "counter must resume above all pre-reboot traffic");
    println!(
        "rebuilt the gateway from {} alone: pre-reboot replay rejected, fresh \
         traffic delivered at seq {seq}",
        wal_path.display()
    );

    // 10. The engine counted all of it — one snapshot replaces every
    //     hand-kept tally. The replayed frame and the leap's sacrificed
    //     fresh frames are both window rejections; the bound covers
    //     them together.
    let snap = telemetry.snapshot();
    let sacrificed = snap.event("replay_dropped").saturating_sub(1);
    assert!(sacrificed <= 2 * k, "sacrifice exceeded the 2K bound");
    println!("\n=== final telemetry snapshot (reborn gateway) ===");
    for (name, count) in snap.events.iter().filter(|(_, c)| *c > 0) {
        println!("  event {name:<16} {count}");
    }
    println!(
        "  recoveries        {} (mean {:.1} us)",
        snap.recover_ns.count,
        snap.recover_ns.mean() / 1e3
    );
    println!(
        "  wal               {} appends ({} bytes), {} compaction(s)",
        snap.wal_appends, snap.wal_append_bytes, snap.wal_compactions
    );
    for class in &snap.classes {
        println!(
            "  class {:<24} installs={} recoveries={}",
            class.label, class.installs, class.recoveries
        );
    }
    println!(
        "  sacrificed to the leap: {sacrificed} frame(s) (bound 2K = {})",
        2 * k
    );
    assert_eq!(snap.event("delivered"), 1, "one fresh frame delivered");
    assert!(snap.recover_ns.count >= 1, "recovery latency recorded");
    assert!(snap.wal_appends > 0, "WAL appends recorded");
    let _ = std::fs::remove_dir_all(&wal_dir);
    Ok(())
}

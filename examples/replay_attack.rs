//! The §3 replay attack, run against both protocols.
//!
//! ```text
//! cargo run -p reset-harness --example replay_attack
//! ```
//!
//! Uses the deterministic scenario runner: the receiver is reset
//! mid-stream and the adversary replays the entire recorded history at
//! the instant it restarts. Under the naive baseline every replayed
//! packet is accepted; under SAVE/FETCH none are, and the fresh-message
//! sacrifice stays within the paper's `2K` bound.

use reset_harness::{run_scenario, AdversaryPlan, Protocol, ScenarioConfig};
use reset_sim::SimTime;

fn attack(protocol: Protocol) -> reset_harness::ScenarioOutcome {
    run_scenario(ScenarioConfig {
        seed: 42,
        protocol,
        receiver_resets: vec![SimTime::from_millis(4)],
        adversary: AdversaryPlan::ReplayAllOnReceiverRestart,
        ..ScenarioConfig::default()
    })
}

fn main() {
    println!("=== The Section 3 attack: reset the receiver, replay everything ===\n");

    let base = attack(Protocol::Baseline);
    println!("baseline (no SAVE/FETCH):");
    println!("  messages sent:        {}", base.monitor.sent);
    println!("  replays injected:     {}", base.injected);
    println!(
        "  REPLAYS ACCEPTED:     {}   <-- unbounded, grows with traffic",
        base.monitor.replays_accepted
    );
    println!(
        "  violations recorded:  {}\n",
        base.monitor.violations.len()
    );

    let sf = attack(Protocol::SaveFetch);
    println!("SAVE/FETCH (K = 25):");
    println!("  messages sent:        {}", sf.monitor.sent);
    println!("  replays injected:     {}", sf.injected);
    println!(
        "  replays accepted:     {}   <-- the paper's guarantee",
        sf.monitor.replays_accepted
    );
    println!("  replays rejected:     {}", sf.monitor.replays_rejected);
    println!(
        "  fresh sacrificed:     {}   (bound 2K = 50)",
        sf.monitor.fresh_discarded
    );
    println!("  clean (no violation): {}", sf.monitor.clean());

    assert!(base.monitor.replays_accepted > 500);
    assert_eq!(sf.monitor.replays_accepted, 0);
    assert!(sf.monitor.fresh_discarded <= 50);
    println!("\nresult: the attack devastates the baseline and bounces off SAVE/FETCH.");
}

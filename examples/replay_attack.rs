//! The §3 replay attack, run against both protocols — over the abstract
//! model *and* over real ESP frames in both cipher suites.
//!
//! ```text
//! cargo run -p system-tests --example replay_attack
//! ```
//!
//! Uses the deterministic scenario runner: the receiver is reset
//! mid-stream and the adversary replays the entire recorded history at
//! the instant it restarts. Under the naive baseline every replayed
//! packet is accepted; under SAVE/FETCH none are, and the fresh-message
//! sacrifice stays within the paper's `2K` bound. With
//! [`Transport::Esp`] the experiment runs through a real
//! [`reset_ipsec::Gateway`] pair: the adversary replays recorded
//! *ciphertext*, and the verdict is identical for every suite — the
//! defence is the window, not the transform.

use reset_harness::{run_scenario, AdversaryPlan, Protocol, ScenarioConfig, Transport};
use reset_ipsec::CryptoSuite;
use reset_sim::SimTime;

fn attack(protocol: Protocol, transport: Transport) -> reset_harness::ScenarioOutcome {
    run_scenario(ScenarioConfig {
        seed: 42,
        protocol,
        transport,
        receiver_resets: vec![SimTime::from_millis(4)],
        adversary: AdversaryPlan::ReplayAllOnReceiverRestart,
        ..ScenarioConfig::default()
    })
}

fn transport_name(t: Transport) -> String {
    match t {
        Transport::Model => "abstract model".to_string(),
        Transport::Esp {
            suite,
            sa_count,
            shards,
        } => format!("ESP frames, {suite:?}, {sa_count} SA(s) x {shards} shard(s)"),
    }
}

fn main() {
    println!("=== The Section 3 attack: reset the receiver, replay everything ===");

    let transports = [
        Transport::Model,
        Transport::esp(CryptoSuite::HmacSha256WithKeystream),
        Transport::esp(CryptoSuite::ChaCha20Poly1305),
        // The same attack against a 64-SA fleet on a 4-shard gateway
        // (four persistent pool workers per side, spawned once at
        // scenario start): the adversary's history spans every SA, the
        // reset strikes the whole fleet, and the verdict must not
        // change.
        Transport::esp_fleet(CryptoSuite::ChaCha20Poly1305, 64, 4),
    ];
    for transport in transports {
        println!("\n--- transport: {} ---", transport_name(transport));

        let base = attack(Protocol::Baseline, transport);
        println!("baseline (no SAVE/FETCH):");
        println!("  messages sent:        {}", base.monitor.sent);
        println!("  replays injected:     {}", base.injected);
        println!(
            "  REPLAYS ACCEPTED:     {}   <-- unbounded, grows with traffic",
            base.monitor.replays_accepted
        );
        println!("  violations recorded:  {}", base.monitor.violations.len());

        let sf = attack(Protocol::SaveFetch, transport);
        println!("SAVE/FETCH (K = 25):");
        println!("  messages sent:        {}", sf.monitor.sent);
        println!("  replays injected:     {}", sf.injected);
        println!(
            "  replays accepted:     {}   <-- the paper's guarantee",
            sf.monitor.replays_accepted
        );
        println!("  replays rejected:     {}", sf.monitor.replays_rejected);
        println!(
            "  fresh sacrificed:     {}   (bound per SA: 2K = 50)",
            sf.monitor.fresh_discarded
        );
        println!("  clean (no violation): {}", sf.monitor.clean());

        assert!(base.monitor.replays_accepted > 500);
        assert_eq!(sf.monitor.replays_accepted, 0);
        // The paper's condition (ii) is per-SA: each SA of the fleet
        // sacrifices at most 2K fresh messages to the leap.
        assert!(sf.per_sa.iter().all(|r| r.fresh_discarded <= 50));
    }
    println!(
        "\nresult: the attack devastates the baseline and bounces off SAVE/FETCH — \
         on the model and on real ciphertext in every suite."
    );
}

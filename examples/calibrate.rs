//! Calibrate the SAVE interval for this machine, the §4 way.
//!
//! ```text
//! cargo run --release -p system-tests --example calibrate
//! ```
//!
//! The paper picks `K ≥ ⌈t_save / t_msg⌉` — the maximum number of
//! messages that can be sent while one SAVE executes — and illustrates it
//! on a Pentium III (100 µs write-to-file, 4 µs per message ⇒ K ≥ 25).
//! This example measures both quantities *on the current host* using the
//! real file-backed store and the real ESP datapath, then derives K.

use std::time::Instant;

use reset_harness::experiments::t4;
use reset_ipsec::GatewayBuilder;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("=== SAVE-interval calibration on this host ===\n");

    // 1. t_save: median of 500 real write-to-file SAVEs.
    let t_save_ns = t4::measure_file_save_ns(500);
    println!(
        "t_save (median of 500 file writes): {:.1} us",
        t_save_ns as f64 / 1e3
    );

    // 2. t_msg: time to produce one protected 1000-byte packet through
    //    the Gateway engine (seal under the default AEAD suite + counter
    //    bookkeeping), the analogue of the paper's "sending a 1000-byte
    //    message".
    let mut gw = GatewayBuilder::in_memory()
        .save_interval(u64::MAX >> 1)
        .build();
    gw.add_peer(1, b"calibration-master");
    let payload = vec![0xAB; 1000];
    // Warm up.
    for _ in 0..100 {
        let _ = gw.protect(1, &payload)?;
    }
    let n = 2_000u32;
    let t0 = Instant::now();
    for _ in 0..n {
        let _ = gw.protect(1, &payload)?;
    }
    let t_msg_ns = (t0.elapsed().as_nanos() as u64 / n as u64).max(1);
    println!(
        "t_msg  (avg over {n} ESP seals of 1000B): {:.2} us",
        t_msg_ns as f64 / 1e3
    );

    // 3. The paper's rule.
    let k = t4::k_min(t_save_ns, t_msg_ns);
    println!("\nK >= ceil(t_save / t_msg) = ceil({t_save_ns} / {t_msg_ns}) = {k}");
    println!("(the paper's Pentium III: ceil(100us / 4us) = 25)");

    // 4. What that K costs and risks.
    println!("\nwith K = {k}:");
    println!(
        "  SAVE overhead: one write per {k} packets ({:.2}% of datapath time)",
        100.0 * t_save_ns as f64 / (k as f64 * t_msg_ns as f64)
    );
    println!(
        "  worst-case waste after a sender reset: 2K = {} sequence numbers",
        2 * k
    );
    println!(
        "  worst-case fresh loss after a receiver reset: 2K = {} messages",
        2 * k
    );
    Ok(())
}

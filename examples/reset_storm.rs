//! Reset storm: repeated crashes of both peers under lossy traffic and
//! continuous replay noise — over real ESP frames, at fleet scale.
//!
//! ```text
//! cargo run -p system-tests --example reset_storm
//! ```
//!
//! Stress-cases the convergence theorem on the sharded `Gateway`
//! engine: a 64-SA fleet on a 4-shard [`reset_ipsec::ShardedGateway`]
//! pair — four persistent pool workers per side, spawned once when the
//! scenario builds its gateways and serving every frame and recovery
//! job of the run — eight resets (both sides, overlapping), 5% loss,
//! 5% duplication, and an adversary injecting recorded ciphertext
//! every 200 µs — including the §4 "double reset before the first
//! SAVE" pattern (two resets back to back). Every reset strikes the
//! whole fleet, so each wake-up submits the shard-parallel recovery
//! halves to all four workers over their work queues. The monitor
//! checks after every event that no replay is accepted on any SA and
//! all losses stay bounded.

use reset_channel::LinkConfig;
use reset_harness::{run_scenario, AdversaryPlan, Protocol, ScenarioConfig, Transport};
use reset_ipsec::CryptoSuite;
use reset_sim::{SimDuration, SimTime};

fn main() {
    let k = 25u64;
    let sa_count = 64u32;
    let shards = 4usize;
    let cfg = ScenarioConfig {
        seed: 7,
        protocol: Protocol::SaveFetch,
        transport: Transport::esp_fleet(CryptoSuite::default(), sa_count, shards),
        kp: k,
        kq: k,
        duration: SimDuration::from_millis(40),
        link: LinkConfig {
            drop_prob: 0.05,
            duplicate_prob: 0.05,
            ..LinkConfig::perfect()
        },
        // Overlapping storms, including back-to-back resets of the same
        // side (the double-crash case the synchronous wake-up SAVE
        // exists for).
        sender_resets: vec![
            SimTime::from_millis(5),
            SimTime::from_micros(5_400), // strikes during the wake-up
            SimTime::from_millis(20),
            SimTime::from_millis(31),
        ],
        receiver_resets: vec![
            SimTime::from_millis(10),
            SimTime::from_micros(10_400),
            SimTime::from_millis(25),
            SimTime::from_millis(31), // simultaneous with a sender reset
        ],
        downtime: SimDuration::from_micros(300),
        adversary: AdversaryPlan::PeriodicRandom {
            every: SimDuration::from_micros(200),
            count: 3,
        },
        ..ScenarioConfig::default()
    };
    let out = run_scenario(cfg);

    println!(
        "=== reset storm over {} of real {:?} ESP traffic, {sa_count} SAs x {shards} shards ===",
        out.end_time,
        CryptoSuite::default()
    );
    println!("messages sent:           {}", out.monitor.sent);
    println!("delivered:               {}", out.monitor.fresh_delivered);
    println!("sender resets:           {}", out.sender_resets);
    println!("receiver resets:         {}", out.receiver_resets);
    println!(
        "link drops / dups:       {} / {}",
        out.link.dropped, out.link.duplicated
    );
    println!("adversary injections:    {}", out.injected);
    println!("replays rejected:        {}", out.monitor.replays_rejected);
    println!("replays ACCEPTED:        {}", out.monitor.replays_accepted);
    println!(
        "fresh discarded:         {} (per-SA bound: resets x 2K = {})",
        out.monitor.fresh_discarded,
        out.receiver_resets * 2 * k
    );
    println!(
        "seqs lost to leaps:      {} (fleet bound: resets x 2K x SAs = {})",
        out.monitor.seqs_lost_to_leaps,
        out.sender_resets * 2 * k * sa_count as u64
    );
    println!("dropped while down:      {}", out.dropped_down);
    println!("violations:              {:?}", out.monitor.violations);

    assert_eq!(
        out.monitor.replays_accepted, 0,
        "no replay ever accepted on any SA"
    );
    assert!(out.monitor.clean(), "convergence theorem held fleet-wide");
    // The paper's bounds are per SA: each SA sacrifices at most 2K per
    // reset of each side.
    for (i, r) in out.per_sa.iter().enumerate() {
        assert_eq!(r.replays_accepted, 0, "SA {}", i + 1);
        assert!(
            r.fresh_discarded <= (out.receiver_resets + out.sender_resets) * 2 * k,
            "SA {}: {} fresh discarded",
            i + 1,
            r.fresh_discarded
        );
    }
    println!(
        "\nresult: eight overlapping fleet-wide resets, zero replays accepted on any of the \
         {sa_count} SAs, all losses bounded."
    );
}

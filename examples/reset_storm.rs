//! Reset storm: repeated crashes of both peers under lossy traffic and
//! continuous replay noise — over real ESP frames.
//!
//! ```text
//! cargo run -p system-tests --example reset_storm
//! ```
//!
//! Stress-cases the convergence theorem on the `Gateway` engine: eight
//! resets (both sides, overlapping), 5% loss, 5% duplication, and an
//! adversary injecting recorded ciphertext every 200 µs — including the
//! §4 "double reset before the first SAVE" pattern (two resets back to
//! back). The monitor checks after every event that no replay is
//! accepted and all losses stay bounded.

use reset_channel::LinkConfig;
use reset_harness::{run_scenario, AdversaryPlan, Protocol, ScenarioConfig, Transport};
use reset_ipsec::CryptoSuite;
use reset_sim::{SimDuration, SimTime};

fn main() {
    let k = 25u64;
    let cfg = ScenarioConfig {
        seed: 7,
        protocol: Protocol::SaveFetch,
        transport: Transport::Esp {
            suite: CryptoSuite::default(),
        },
        kp: k,
        kq: k,
        duration: SimDuration::from_millis(40),
        link: LinkConfig {
            drop_prob: 0.05,
            duplicate_prob: 0.05,
            ..LinkConfig::perfect()
        },
        // Overlapping storms, including back-to-back resets of the same
        // side (the double-crash case the synchronous wake-up SAVE
        // exists for).
        sender_resets: vec![
            SimTime::from_millis(5),
            SimTime::from_micros(5_400), // strikes during the wake-up
            SimTime::from_millis(20),
            SimTime::from_millis(31),
        ],
        receiver_resets: vec![
            SimTime::from_millis(10),
            SimTime::from_micros(10_400),
            SimTime::from_millis(25),
            SimTime::from_millis(31), // simultaneous with a sender reset
        ],
        downtime: SimDuration::from_micros(300),
        adversary: AdversaryPlan::PeriodicRandom {
            every: SimDuration::from_micros(200),
            count: 3,
        },
        ..ScenarioConfig::default()
    };
    let out = run_scenario(cfg);

    println!(
        "=== reset storm over {} of real {:?} ESP traffic ===",
        out.end_time,
        CryptoSuite::default()
    );
    println!("messages sent:           {}", out.monitor.sent);
    println!("delivered:               {}", out.monitor.fresh_delivered);
    println!("sender resets:           {}", out.sender_resets);
    println!("receiver resets:         {}", out.receiver_resets);
    println!(
        "link drops / dups:       {} / {}",
        out.link.dropped, out.link.duplicated
    );
    println!("adversary injections:    {}", out.injected);
    println!("replays rejected:        {}", out.monitor.replays_rejected);
    println!("replays ACCEPTED:        {}", out.monitor.replays_accepted);
    println!(
        "fresh discarded:         {} (resets x 2K = {})",
        out.monitor.fresh_discarded,
        out.receiver_resets * 2 * k
    );
    println!(
        "seqs lost to leaps:      {} (resets x 2K = {})",
        out.monitor.seqs_lost_to_leaps,
        out.sender_resets * 2 * k
    );
    println!("dropped while down:      {}", out.dropped_down);
    println!("violations:              {:?}", out.monitor.violations);

    assert_eq!(out.monitor.replays_accepted, 0, "no replay ever accepted");
    assert!(out.monitor.clean(), "convergence theorem held");
    assert!(out.monitor.fresh_discarded <= out.receiver_resets * 2 * k + out.sender_resets * 2 * k);
    println!("\nresult: eight overlapping resets, zero replays accepted, all losses bounded.");
}

//! Integration: §6 prolonged-reset recovery across the whole stack —
//! DPD, grace periods, secured notifies, and gateway-scale recovery.

use reset_ipsec::{
    rekey, CryptoSuite, DpdAction, DpdConfig, IpsecPeer, PeerEvent, RekeyRequest, SaKeys, Sadb,
    SecurityAssociation,
};
use reset_stable::MemStable;
use system_tests::{drive_traffic, peer_pair};

#[test]
fn full_section6_timeline() {
    let dpd = DpdConfig {
        idle_timeout_ns: 1_000,
        probe_interval_ns: 500,
        max_probes: 2,
        grace_period_ns: 100_000,
    };
    let keys_ab = SaKeys::derive(b"s6", b"a->b");
    let keys_ba = SaKeys::derive(b"s6", b"b->a");
    let mut a = IpsecPeer::new(
        "A",
        SecurityAssociation::new(1, keys_ab.clone()),
        SecurityAssociation::new(2, keys_ba.clone()),
        MemStable::new(),
        MemStable::new(),
        10,
        64,
        dpd,
    );
    let mut b = IpsecPeer::new(
        "B",
        SecurityAssociation::new(2, keys_ba),
        SecurityAssociation::new(1, keys_ab),
        MemStable::new(),
        MemStable::new(),
        10,
        64,
        dpd,
    );

    // Traffic up to t=0; then B crashes.
    for i in 0..20u64 {
        let w = b.send_data(b"keepalive").unwrap().unwrap();
        a.handle_wire(&w, i).unwrap();
    }
    b.save_completed_out().unwrap();
    b.reset();

    // A probes, then enters grace; SAs stay alive.
    assert_eq!(a.dpd_mut().poll(2_000), DpdAction::SendProbe);
    assert_eq!(a.dpd_mut().poll(2_600), DpdAction::SendProbe);
    assert_eq!(a.dpd_mut().poll(3_200), DpdAction::PeerPresumedDown);
    assert!(a.dpd().in_grace());
    assert!(a.dpd().sas_alive());

    // B recovers within grace; A accepts and leaves grace.
    let notify = b.recover().unwrap();
    assert!(matches!(
        a.handle_wire(&notify, 10_000).unwrap(),
        PeerEvent::PeerRecovered { .. }
    ));
    assert!(!a.dpd().in_grace());
}

#[test]
fn grace_expiry_without_recovery_tears_down() {
    let dpd = DpdConfig {
        idle_timeout_ns: 1_000,
        probe_interval_ns: 500,
        max_probes: 1,
        grace_period_ns: 5_000,
    };
    let keys = SaKeys::derive(b"s6", b"x");
    let mut a = IpsecPeer::new(
        "A",
        SecurityAssociation::new(1, keys.clone()),
        SecurityAssociation::new(2, keys),
        MemStable::new(),
        MemStable::new(),
        10,
        64,
        dpd,
    );
    a.dpd_mut().on_traffic(0);
    assert_eq!(a.dpd_mut().poll(1_500), DpdAction::SendProbe);
    assert_eq!(a.dpd_mut().poll(2_100), DpdAction::PeerPresumedDown);
    // No recovery arrives: grace runs out, the paper's bounded wait ends.
    assert_eq!(a.dpd_mut().poll(8_000), DpdAction::TearDown);
    assert!(!a.dpd().sas_alive());
}

#[test]
fn both_peers_reset_and_both_recover() {
    let (mut a, mut b) = peer_pair(10, 64);
    drive_traffic(&mut a, &mut b, 25);
    drive_traffic(&mut b, &mut a, 25);
    a.save_completed_out().unwrap();
    a.save_completed_in().unwrap();
    b.save_completed_out().unwrap();
    b.save_completed_in().unwrap();

    a.reset();
    b.reset();
    let notify_a = a.recover().unwrap();
    let notify_b = b.recover().unwrap();
    // Each accepts the other's notify (leaps exceed all pre-reset seqs).
    assert!(matches!(
        b.handle_wire(&notify_a, 1).unwrap(),
        PeerEvent::PeerRecovered { .. }
    ));
    assert!(matches!(
        a.handle_wire(&notify_b, 1).unwrap(),
        PeerEvent::PeerRecovered { .. }
    ));
    // Bidirectional traffic converges again within 2K each way.
    fn converge(x: &mut IpsecPeer<MemStable>, y: &mut IpsecPeer<MemStable>) {
        let mut sacrificed = 0;
        loop {
            let w = x.send_data(b"resume").unwrap().unwrap();
            match y.handle_wire(&w, 2).unwrap() {
                PeerEvent::Data(_) => break,
                PeerEvent::Rejected => sacrificed += 1,
                other => panic!("{other:?}"),
            }
            assert!(sacrificed <= 20, "2K bound per direction");
        }
    }
    converge(&mut a, &mut b);
    converge(&mut b, &mut a);
}

#[test]
fn naive_reset_to_one_scheme_would_be_replayable() {
    // The paper's concluding remark: a special "let's both reset to 1"
    // message could itself be replayed. Our recovery notify is an
    // ordinary protected packet whose *sequence number* proves freshness,
    // so the attack surface is exactly the anti-replay window. Show that
    // even 1000 replays of old notifies never move the peer's window.
    let (mut a, mut b) = peer_pair(5, 64);
    drive_traffic(&mut b, &mut a, 15);
    b.save_completed_out().unwrap();

    let mut notifies = Vec::new();
    for _ in 0..3 {
        b.reset();
        notifies.push(b.recover().unwrap());
    }
    // Deliver them in order; each later notify has a strictly higher seq.
    let mut last_seq = 0;
    for n in &notifies {
        match a.handle_wire(n, 5).unwrap() {
            PeerEvent::PeerRecovered { seq } => {
                assert!(seq.value() > last_seq);
                last_seq = seq.value();
            }
            other => panic!("{other:?}"),
        }
    }
    // Massive replay of all old notifies: every copy rejected.
    let edge = a.inbound().seq_state().right_edge();
    for _ in 0..1_000 {
        for n in &notifies {
            assert_eq!(a.handle_wire(n, 6).unwrap(), PeerEvent::Rejected);
        }
    }
    assert_eq!(a.inbound().seq_state().right_edge(), edge);
}

#[test]
fn recovery_after_suite_change_converges_and_blocks_stale_suite_replays() {
    // A gateway rekeys one SA from the legacy suite to the AEAD suite,
    // then the whole host resets. SAVE/FETCH recovery must rescue the
    // *migrated* SA (counters only — the new suite and keys live in the
    // SADB, exactly the paper's point that only counters change per
    // packet), while frames recorded under the old suite stay dead.
    let spi = 0x900u32;
    let keys0 = SaKeys::derive(b"rec-mig", b"gen0");
    let sa0 = SecurityAssociation::new(spi, keys0).with_suite(CryptoSuite::HmacSha256WithKeystream);
    let mut db: Sadb<MemStable> = Sadb::new();
    db.install_outbound(sa0.clone(), MemStable::new(), 10);
    db.install_inbound(sa0, MemStable::new(), 10, 64);
    let mut stale = Vec::new();
    for i in 0..20u32 {
        let w = db
            .protect(spi, format!("old {i}").as_bytes())
            .unwrap()
            .unwrap();
        stale.push(w.clone());
        assert!(db.process(&w).unwrap().is_delivered());
    }

    // Rekey in place: tear down both directions, install the AEAD SA
    // under the same SPI with fresh stores (new number space).
    let migrated = rekey(&RekeyRequest {
        skeyid: b"rec-mig-skeyid".to_vec(),
        nonce_i: [1; 16],
        nonce_r: [2; 16],
        new_spi: spi,
        suite: CryptoSuite::ChaCha20Poly1305,
    })
    .sa;
    assert!(db.remove(spi).is_some());
    db.install_outbound(migrated.clone(), MemStable::new(), 10);
    db.install_inbound(migrated, MemStable::new(), 10, 64);

    // Traffic on the migrated SA, durably saved, then a host reset.
    for i in 0..15u32 {
        let w = db
            .protect(spi, format!("new {i}").as_bytes())
            .unwrap()
            .unwrap();
        assert!(db.process(&w).unwrap().is_delivered());
    }
    db.outbound_mut(spi).unwrap().save_completed().unwrap();
    db.inbound_mut(spi).unwrap().save_completed().unwrap();
    db.reset_all();
    assert_eq!(db.recover_all().unwrap(), 2);

    // Stale-suite recordings fail authentication outright (and do not
    // touch the window), post-recovery or not.
    for w in &stale {
        assert!(db.process(w).is_err(), "stale-suite frame accepted");
    }
    // Fresh AEAD traffic converges within the 2K + 2K leap budget.
    let mut tries = 0;
    loop {
        let w = db.protect(spi, b"post-recovery").unwrap().unwrap();
        if db.process(&w).unwrap().is_delivered() {
            break;
        }
        tries += 1;
        assert!(tries <= 40, "migrated SA never converged");
    }
}

#[test]
fn gateway_scale_recovery_mixed_suites_all_converge() {
    // Like gateway_scale_recovery_all_sas_converge, but the SAs cycle
    // through every negotiable suite — recovery is suite-agnostic.
    let n = 9u32;
    let mut db: Sadb<MemStable> = Sadb::new();
    for spi in 1..=n {
        let suite = CryptoSuite::ALL[(spi as usize - 1) % CryptoSuite::ALL.len()];
        let keys = SaKeys::derive(b"gw-mixed", &spi.to_be_bytes());
        let sa = SecurityAssociation::new(spi, keys).with_suite(suite);
        db.install_outbound(sa.clone(), MemStable::new(), 10);
        db.install_inbound(sa, MemStable::new(), 10, 64);
    }
    for spi in 1..=n {
        for _ in 0..(spi * 2) {
            let w = db.protect(spi, b"t").unwrap().unwrap();
            db.process(&w).unwrap();
        }
        db.outbound_mut(spi).unwrap().save_completed().unwrap();
        db.inbound_mut(spi).unwrap().save_completed().unwrap();
    }
    db.reset_all();
    assert_eq!(db.recover_all().unwrap(), 2 * n as usize);
    for spi in 1..=n {
        let mut tries = 0;
        loop {
            let w = db.protect(spi, b"post").unwrap().unwrap();
            if db.process(&w).unwrap().is_delivered() {
                break;
            }
            tries += 1;
            assert!(tries <= 40, "spi {spi} never converged");
        }
    }
}

#[test]
fn gateway_scale_recovery_all_sas_converge() {
    let n = 20u32;
    let mut db: Sadb<MemStable> = Sadb::new();
    for spi in 1..=n {
        let keys = SaKeys::derive(b"gw", &spi.to_be_bytes());
        let sa = SecurityAssociation::new(spi, keys);
        db.install_outbound(sa.clone(), MemStable::new(), 10);
        db.install_inbound(sa, MemStable::new(), 10, 64);
    }
    // Mixed traffic volume per SA so counters diverge.
    for spi in 1..=n {
        for _ in 0..(spi * 3) {
            let w = db.protect(spi, b"t").unwrap().unwrap();
            db.process(&w).unwrap();
        }
        db.outbound_mut(spi).unwrap().save_completed().unwrap();
        db.inbound_mut(spi).unwrap().save_completed().unwrap();
    }
    db.reset_all();
    assert_eq!(db.recover_all().unwrap(), 2 * n as usize);
    // Every SA converges within its own 2K + 2K.
    for spi in 1..=n {
        let mut tries = 0;
        loop {
            let w = db.protect(spi, b"post").unwrap().unwrap();
            if db.process(&w).unwrap().is_delivered() {
                break;
            }
            tries += 1;
            assert!(tries <= 40, "spi {spi} never converged");
        }
    }
}

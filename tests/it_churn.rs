//! Long-haul churn soak and the adversary zoo, strategy by strategy.
//!
//! This is the CI entry point for [`reset_harness::run_churn`]: a live
//! fleet under continuous SA churn, staggered reboots, reset storms,
//! mid-flight rekeys and link faults, with §3's attack surface replayed
//! by an adversary zoo. Each zoo strategy also gets its own test
//! proving the invariant it targets: **zero replay acceptance**, per
//! strategy, not just in aggregate.
//!
//! Override the soak seed with `CHURN_SEED=<u64>` to reproduce or
//! explore (the seed in use is always printed), and set
//! `CHURN_REPORT=<path>` to write the machine-readable
//! `reset-report/v1` JSON document the CI lane archives.

use reset_harness::{run_churn, AdversaryZoo, ChurnConfig};

fn churn_seed() -> u64 {
    match std::env::var("CHURN_SEED") {
        Ok(s) => s
            .parse()
            .unwrap_or_else(|_| panic!("CHURN_SEED must be a u64, got {s:?}")),
        Err(_) => 0x50AC_2026,
    }
}

/// One zoo strategy at a time: the run must stay clean, and the
/// strategy must actually have fired.
fn run_single_strategy(zoo: AdversaryZoo, seed_salt: u64) -> reset_harness::ChurnReport {
    let cfg = ChurnConfig {
        adversaries: zoo,
        ..ChurnConfig::quick(churn_seed() ^ seed_salt)
    };
    let report = run_churn(cfg);
    assert_eq!(
        report.totals.replays_accepted, 0,
        "seed {:#x}: replay accepted",
        report.seed
    );
    assert!(
        report.clean(),
        "seed {:#x}: {:?}",
        report.seed,
        report.verdicts
    );
    report
}

#[test]
fn delayed_replay_across_reset_never_lands() {
    let zoo = AdversaryZoo {
        delayed_replay: true,
        ..AdversaryZoo::NONE
    };
    let report = run_single_strategy(zoo, 0xDE1A);
    assert!(report.delayed_replays > 0, "strategy never fired");
    assert!(
        report.totals.replays_rejected > 0,
        "the 2K leap must actually have rejected the stash"
    );
}

#[test]
fn highest_seq_replay_never_lands() {
    let zoo = AdversaryZoo {
        highest_seq: true,
        ..AdversaryZoo::NONE
    };
    let report = run_single_strategy(zoo, 0x415E);
    assert!(report.highest_seq_replays > 0, "strategy never fired");
}

#[test]
fn single_shard_replay_flood_never_lands() {
    let zoo = AdversaryZoo {
        shard_flood: true,
        ..AdversaryZoo::NONE
    };
    let report = run_single_strategy(zoo, 0xF100);
    assert!(report.shard_flood_replays > 0, "strategy never fired");
    // The flood aims at one canonical partition, so the receiver's
    // telemetry must show per-shard load skew — the evidence ROADMAP
    // item 2(iv)'s occupancy-aware rebalancing consumes.
    let frames = report.telemetry.shard_frames();
    let (min, max) = (
        frames.iter().min().copied().unwrap_or(0),
        frames.iter().max().copied().unwrap_or(0),
    );
    assert!(max > min, "flood produced no shard skew: {frames:?}");
}

#[test]
fn cross_sa_reflection_dies_at_authentication() {
    let zoo = AdversaryZoo {
        reflection: true,
        ..AdversaryZoo::NONE
    };
    let report = run_single_strategy(zoo, 0x5EF1);
    assert!(report.reflections > 0, "strategy never fired");
}

#[test]
fn duplicate_trains_never_double_deliver() {
    let zoo = AdversaryZoo {
        duplicates: true,
        ..AdversaryZoo::NONE
    };
    let report = run_single_strategy(zoo, 0xD0B1);
    assert!(report.duplicate_injections > 0, "strategy never fired");
}

#[test]
fn churn_verdicts_are_shard_count_invariant() {
    // The soak schedule never reads shard-dependent state and per-SPI
    // event subsequences are identical at any shard count, so every
    // per-SA verdict — and the fleet totals — must be *identical* at
    // shards 1 and 4. Only the telemetry's per-shard attribution may
    // differ.
    let run = |shards: usize| {
        run_churn(ChurnConfig {
            shards,
            ..ChurnConfig::quick(churn_seed())
        })
    };
    let one = run(1);
    let four = run(4);
    assert_eq!(one.verdicts, four.verdicts);
    assert_eq!(one.totals, four.totals);
    assert_eq!(one.timeline, four.timeline);
    assert_eq!(one.delayed_replays, four.delayed_replays);
    assert_eq!(one.shard_flood_replays, four.shard_flood_replays);
    assert_eq!(one.telemetry.shards.len(), 1);
    assert_eq!(four.telemetry.shards.len(), 4);
    assert_eq!(one.telemetry.total_frames(), four.telemetry.total_frames());
    assert!(one.clean(), "seed {:#x}", one.seed);
}

/// The CI `churn-soak` lane entry: ten simulated hours of churn with
/// the full zoo, every §3 invariant asserted per SA, and the unified
/// JSON report written for archiving when `CHURN_REPORT` is set.
#[test]
fn long_haul_soak_holds_every_invariant() {
    let seed = churn_seed();
    eprintln!("churn soak: seed={seed:#x} (override with CHURN_SEED=<u64>)");
    let cfg = ChurnConfig::soak(seed);
    let report = run_churn(cfg);
    eprintln!(
        "churn soak: {} SAs ({} retired), {} delivered, {} rejected, \
         {} storms, {} rekeys over {:.1} simulated hours",
        report.verdicts.len(),
        report.leaves,
        report.totals.delivered,
        report.totals.replays_rejected,
        report.storms,
        report.rekeys,
        report.sim_ns as f64 / 3.6e12
    );
    assert!(report.clean(), "seed {seed:#x}: {:?}", report.verdicts);
    assert_eq!(report.totals.replays_accepted, 0, "seed {seed:#x}");
    assert!(report.storms >= 3, "soak must include ≥3 reset storms");
    assert!(report.sim_ns >= (10.0 * 3.6e12) as u64 - 1, "≥10 sim hours");
    assert!(report.rekeys > 0 && report.joins > 0 && report.leaves > 0);
    assert!(
        report.delayed_replays > 0
            && report.highest_seq_replays > 0
            && report.shard_flood_replays > 0
            && report.reflections > 0
            && report.duplicate_injections > 0,
        "every zoo strategy must fire in the soak"
    );
    // Recovery latency histogram covered every storm.
    assert!(report.telemetry.recover_ns.count >= report.storms);
    if let Ok(path) = std::env::var("CHURN_REPORT") {
        let json = report.to_run_report().render_json();
        std::fs::write(&path, &json).expect("write CHURN_REPORT");
        eprintln!("churn soak: report written to {path}");
    }
}

//! Integration: the paper's processes under APN semantics, including an
//! exhaustive interleaving exploration that *finds the §3 attack* on the
//! baseline automatically — and proves (to the explored depth) that
//! SAVE/FETCH admits no such path.

use anti_replay::apn_model::{original_system, savefetch_system, PaperProc, P, Q};
use reset_apn::{Schedule, System};
use reset_sim::DetRng;

/// The safety predicate: the receiver must never have delivered more
/// messages than the sender sent distinct sequence numbers. Under the
/// no-reuse SAVE/FETCH discipline, `delivered > sent` can only happen by
/// accepting a replayed copy.
fn savefetch_safe(sys: &System<PaperProc>) -> bool {
    let p = sys.proc(P).as_sf_sender().expect("sf sender");
    let q = sys.proc(Q).as_sf_receiver().expect("sf receiver");
    q.stats().delivered <= p.stats().sent
}

fn baseline_safe(sys: &System<PaperProc>) -> bool {
    let q = sys.proc(Q).as_orig_receiver().expect("orig receiver");
    let delivered = q.total_delivered();
    // For the baseline, the sender may reuse sequence numbers after a
    // reset; ground truth is distinct seqs over all incarnations, which
    // equals max(counter progress), conservatively bounded by sent.
    // Double delivery beyond total sends = replay definitely accepted.
    delivered <= sent_baseline(sys)
}

fn sent_baseline(sys: &System<PaperProc>) -> u64 {
    match sys.proc(P) {
        PaperProc::OrigP(p) => p.total_sent(),
        _ => unreachable!("baseline sender"),
    }
}

/// All environment moves the explorer may interleave with protocol steps.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum EnvMove {
    ResetP,
    WakeP,
    ResetQ,
    WakeQ,
    /// Adversary duplicates the front message of the p→q channel (a
    /// replayed copy of recorded traffic).
    DupFront,
}

fn apply_env(sys: &mut System<PaperProc>, mv: EnvMove) {
    match mv {
        EnvMove::ResetP => sys.inject_reset(P),
        EnvMove::WakeP => sys.inject_wakeup(P),
        EnvMove::ResetQ => sys.inject_reset(Q),
        EnvMove::WakeQ => sys.inject_wakeup(Q),
        EnvMove::DupFront => sys.duplicate(P, Q, 0),
    }
}

/// Depth-first exploration of protocol steps × environment moves.
/// Returns a violating trace if the predicate ever fails.
fn explore(
    sys: &System<PaperProc>,
    safe: fn(&System<PaperProc>) -> bool,
    depth: usize,
    budget: &mut usize,
) -> Option<Vec<String>> {
    if !safe(sys) {
        return Some(vec!["<violation>".into()]);
    }
    if depth == 0 || *budget == 0 {
        return None;
    }
    *budget -= 1;
    // Protocol steps.
    for step in sys.enabled() {
        let mut next = sys.clone();
        next.fire(step);
        if let Some(mut trace) = explore(&next, safe, depth - 1, budget) {
            trace.insert(0, format!("step p{}a{}", step.proc, step.action));
            return Some(trace);
        }
    }
    // Environment moves. Wake only makes sense after a reset; the hooks
    // are no-ops / idempotent otherwise, so just try all.
    for mv in [
        EnvMove::ResetP,
        EnvMove::WakeP,
        EnvMove::ResetQ,
        EnvMove::WakeQ,
        EnvMove::DupFront,
    ] {
        let mut next = sys.clone();
        apply_env(&mut next, mv);
        if let Some(mut trace) = explore(&next, safe, depth - 1, budget) {
            trace.insert(0, format!("{mv:?}"));
            return Some(trace);
        }
    }
    None
}

#[test]
fn exhaustive_exploration_finds_the_attack_on_the_baseline() {
    // With the baseline, some interleaving of {send, deliver, reset,
    // duplicate} double-delivers: the §3 replay acceptance, discovered
    // by search rather than scripted.
    let sys = original_system(4, Schedule::RoundRobin);
    let mut budget = 200_000;
    let violation = explore(&sys, baseline_safe, 7, &mut budget);
    assert!(
        violation.is_some(),
        "exploration should find the §3 replay acceptance"
    );
    let trace = violation.expect("checked");
    // The trace must involve a reset and a duplication (the attack's
    // ingredients).
    let rendered = trace.join(" -> ");
    assert!(
        rendered.contains("ResetQ") || rendered.contains("ResetP"),
        "{rendered}"
    );
    assert!(rendered.contains("DupFront"), "{rendered}");
}

#[test]
fn exhaustive_exploration_savefetch_is_safe_to_depth() {
    // The same search against SAVE/FETCH (wake-up modelled atomically by
    // the hook) finds no violation within the same depth.
    let sys = savefetch_system(2, 2, 4, Schedule::RoundRobin);
    let mut budget = 200_000;
    let violation = explore(&sys, savefetch_safe, 7, &mut budget);
    assert!(
        violation.is_none(),
        "SAVE/FETCH violated at depth 7: {violation:?}"
    );
}

#[test]
fn random_walks_with_fault_injection_stay_safe() {
    // Longer horizons than the exhaustive search can reach: 200 random
    // walks of 400 mixed steps (protocol + faults + duplications).
    for seed in 0..200u64 {
        let mut rng = DetRng::new(seed);
        let mut sys = savefetch_system(3, 3, 8, Schedule::Random(DetRng::new(seed ^ 0xFF)));
        for _ in 0..400 {
            match rng.below(12) {
                0 => sys.inject_reset(P),
                1 => sys.inject_wakeup(P),
                2 => sys.inject_reset(Q),
                3 => sys.inject_wakeup(Q),
                4 => {
                    let len = sys.channel(P, Q).len();
                    if len > 0 {
                        sys.duplicate(P, Q, (rng.below(len as u64)) as usize);
                    }
                }
                5 => {
                    let len = sys.channel(P, Q).len();
                    if len > 0 {
                        sys.lose(P, Q, (rng.below(len as u64)) as usize);
                    }
                }
                6 => {
                    sys.reorder_front(P, Q, rng.below(4) as usize);
                }
                _ => {
                    let _ = sys.step();
                }
            }
            assert!(savefetch_safe(&sys), "seed {seed}: safety violated");
        }
        // Liveness probe: after waking everyone up, traffic flows again.
        sys.inject_wakeup(P);
        sys.inject_wakeup(Q);
        let before = sys
            .proc(Q)
            .as_sf_receiver()
            .expect("receiver")
            .stats()
            .delivered;
        sys.run(5_000);
        let after = sys
            .proc(Q)
            .as_sf_receiver()
            .expect("receiver")
            .stats()
            .delivered;
        assert!(after > before, "seed {seed}: no convergence after storm");
    }
}

#[test]
fn weak_fairness_keeps_background_saves_completing() {
    // Under the round-robin scheduler the save-completion action fires
    // regularly, so the durable counter tracks the live one within 2K.
    let mut sys = savefetch_system(5, 5, 16, Schedule::RoundRobin);
    sys.run(2_000);
    let p = sys.proc(P).as_sf_sender().expect("sender");
    let durable = p.store().iter().next().map(|(_, v)| v).unwrap_or(0);
    let live = p.next_seq().value();
    assert!(
        live - durable <= 2 * 5,
        "durable {durable} trails live {live} too far"
    );
}

#[test]
fn literal_paper_actions_under_round_robin_converge_after_reset() {
    let mut sys = savefetch_system(4, 4, 16, Schedule::RoundRobin);
    sys.run(500);
    let edge_before = sys.proc(Q).as_sf_receiver().expect("q").right_edge();

    // Reset q; replay the §3 attack using channel duplication before the
    // wake-up (messages still in flight get copied).
    sys.inject_reset(Q);
    for _ in 0..8 {
        sys.duplicate(P, Q, 0);
    }
    sys.inject_wakeup(Q);
    sys.run(3_000);

    let q = sys.proc(Q).as_sf_receiver().expect("q");
    let p = sys.proc(P).as_sf_sender().expect("p");
    assert!(q.right_edge() >= edge_before, "leap covered the old edge");
    assert!(savefetch_safe(&sys));
    assert!(
        p.stats().sent >= q.stats().delivered,
        "no phantom deliveries"
    );
}

//! Property-based tests of the core invariants (proptest).
//!
//! Random adversaries are stronger than hand-written ones: these
//! properties throw arbitrary streams, fault schedules and corruptions at
//! the window, the SAVE/FETCH processes, the wire codec and the bignum,
//! and check the paper's invariants on every generated case.

use proptest::prelude::*;
use std::collections::HashSet;

use anti_replay::{AntiReplayWindow, SeqNum, SfReceiver, SfSender};
use reset_stable::{MemStable, SlotId};

// ---------------------------------------------------------------------
// Anti-replay window
// ---------------------------------------------------------------------

proptest! {
    /// Discrimination holds for ANY stream: no sequence number is ever
    /// delivered (Fresh) twice, regardless of order or duplication.
    #[test]
    fn window_never_delivers_twice(
        w in 1u64..200,
        stream in prop::collection::vec(1u64..500, 1..400),
    ) {
        let mut win = AntiReplayWindow::new(w);
        let mut delivered = HashSet::new();
        for s in stream {
            if win.check_and_accept(SeqNum::new(s)).is_deliverable() {
                prop_assert!(delivered.insert(s), "seq {s} delivered twice");
            }
        }
    }

    /// w-Delivery: a stream whose reorder degree stays below w delivers
    /// every distinct message exactly once.
    #[test]
    fn window_delivers_all_with_bounded_reorder(
        w in 4u64..128,
        n in 1u64..300,
        seed in any::<u64>(),
    ) {
        // Shuffle within chunks of w/2: displacement < w guaranteed.
        let mut rng = reset_sim::DetRng::new(seed);
        let mut seqs: Vec<u64> = (1..=n).collect();
        for chunk in seqs.chunks_mut((w as usize / 2).max(1)) {
            rng.shuffle(chunk);
        }
        let degrees = reset_channel::reorder_degrees(&seqs);
        prop_assume!(degrees.iter().all(|&d| d < w));
        let mut win = AntiReplayWindow::new(w);
        let mut delivered = 0;
        for &s in &seqs {
            if win.check_and_accept(SeqNum::new(s)).is_deliverable() {
                delivered += 1;
            }
        }
        prop_assert_eq!(delivered, n);
    }

    /// check() never mutates: any interleaving of checks between accepts
    /// leaves the same final state as the accepts alone.
    #[test]
    fn window_check_is_pure(
        w in 1u64..64,
        accepts in prop::collection::vec(1u64..200, 0..60),
        probes in prop::collection::vec(1u64..200, 0..60),
    ) {
        let mut a = AntiReplayWindow::new(w);
        let mut b = AntiReplayWindow::new(w);
        for (i, &s) in accepts.iter().enumerate() {
            if a.check(SeqNum::new(s)).is_deliverable() {
                a.accept(SeqNum::new(s));
            }
            if let Some(&p) = probes.get(i) {
                let _ = a.check(SeqNum::new(p));
            }
            if b.check(SeqNum::new(s)).is_deliverable() {
                b.accept(SeqNum::new(s));
            }
        }
        prop_assert_eq!(a, b);
    }
}

// ---------------------------------------------------------------------
// SAVE/FETCH processes under random fault schedules
// ---------------------------------------------------------------------

/// Operations a random schedule may perform on the sender, constrained
/// to the paper's premise (a SAVE completes within K subsequent sends).
#[derive(Debug, Clone)]
enum SenderOp {
    Send,
    Complete,
    ResetAndWake,
}

fn sender_ops() -> impl Strategy<Value = Vec<SenderOp>> {
    prop::collection::vec(
        prop_oneof![
            6 => Just(SenderOp::Send),
            2 => Just(SenderOp::Complete),
            1 => Just(SenderOp::ResetAndWake),
        ],
        1..200,
    )
}

proptest! {
    /// Freshness + bounded waste for arbitrary schedules respecting the
    /// premise: every wake-up resumes strictly above all used sequence
    /// numbers and skips at most 2K.
    #[test]
    fn sender_wakeups_always_fresh(k in 2u64..40, ops in sender_ops()) {
        let mut p = SfSender::new(MemStable::new(), SlotId::sender(1), k);
        let mut max_used = 0u64;
        let mut sends_since_issue = 0u64;
        for op in ops {
            match op {
                SenderOp::Send => {
                    // Enforce the premise: a pending SAVE must complete
                    // within K sends of being issued.
                    if p.pending_save().is_some() && sends_since_issue >= k - 1 {
                        p.save_completed().expect("mem store");
                        sends_since_issue = 0;
                    }
                    let had_pending = p.pending_save().is_some();
                    if let Some(s) = p.send_next().expect("mem store") {
                        max_used = max_used.max(s.value());
                        if p.pending_save().is_some() {
                            sends_since_issue = if had_pending { sends_since_issue + 1 } else { 0 };
                        }
                    }
                }
                SenderOp::Complete => {
                    p.save_completed().expect("mem store");
                    sends_since_issue = 0;
                }
                SenderOp::ResetAndWake => {
                    let old_next = p.next_seq();
                    let was_running = p.phase() == anti_replay::Phase::Running;
                    p.reset();
                    let resumed = p.wake_up().expect("mem store");
                    prop_assert!(
                        resumed.value() > max_used,
                        "resumed {} <= max_used {}",
                        resumed.value(),
                        max_used
                    );
                    if was_running {
                        let lost = resumed.value().saturating_sub(old_next.value());
                        prop_assert!(lost <= 2 * k, "lost {lost} > 2K");
                    }
                    sends_since_issue = 0;
                }
            }
        }
    }

    /// The receiver under random in-order traffic + resets never accepts
    /// a replay of anything previously delivered.
    #[test]
    fn receiver_never_reaccepts_after_wakeup(
        k in 2u64..30,
        resets in prop::collection::vec(1u64..500, 0..4),
        total in 50u64..500,
    ) {
        let w = 4 * k + 32;
        let mut q = SfReceiver::new(MemStable::new(), SlotId::receiver(1), k, w);
        let mut delivered: Vec<u64> = Vec::new();
        let mut reset_points: Vec<u64> = resets;
        reset_points.sort_unstable();
        reset_points.dedup();
        let mut next_reset = 0usize;
        let mut since_issue = 0u64;
        for s in 1..=total {
            // Premise: complete pending saves within K receives.
            if q.pending_save().is_some() {
                since_issue += 1;
                if since_issue >= k - 1 {
                    q.save_completed().expect("mem store");
                    since_issue = 0;
                }
            }
            if next_reset < reset_points.len() && s == reset_points[next_reset] {
                q.reset();
                q.wake_up().expect("mem store");
                next_reset += 1;
                since_issue = 0;
                // The §3 attack at the worst moment: replay everything.
                for &old in &delivered {
                    let out = q.receive(SeqNum::new(old)).expect("mem store");
                    prop_assert!(!out.is_delivered(), "replayed {old} accepted after wakeup");
                }
            }
            if q.receive(SeqNum::new(s)).expect("mem store").is_delivered() {
                delivered.push(s);
            }
        }
    }
}

// ---------------------------------------------------------------------
// Differential testing: reference window vs RFC 6479 block window
// ---------------------------------------------------------------------

proptest! {
    /// The two window implementations, run side by side behind identical
    /// SAVE/FETCH receivers over the same random stream + reset schedule,
    /// are equally SAFE: neither ever delivers a sequence number the
    /// other knows to be a replay of an already-delivered number.
    #[test]
    fn window_implementations_differentially_safe(
        k in 2u64..20,
        stream in prop::collection::vec(1u64..300, 10..250),
        reset_at in prop::collection::vec(5usize..240, 0..3),
    ) {
        use anti_replay::BlockWindow;
        use reset_stable::MemStable;
        let w_bits = 4 * k + 32;
        let mut ref_rx = SfReceiver::new(MemStable::new(), SlotId::receiver(1), k, w_bits);
        let mut blk_rx = SfReceiver::with_window(
            MemStable::new(),
            SlotId::receiver(1),
            k,
            BlockWindow::new(w_bits),
        );
        let mut delivered_ref = HashSet::new();
        let mut delivered_blk = HashSet::new();
        let resets: HashSet<usize> = reset_at.into_iter().collect();
        for (i, &s) in stream.iter().enumerate() {
            if resets.contains(&i) {
                for rx_reset in [true, false] {
                    if rx_reset {
                        ref_rx.save_completed().expect("mem store");
                        ref_rx.reset();
                        ref_rx.wake_up().expect("mem store");
                    } else {
                        blk_rx.save_completed().expect("mem store");
                        blk_rx.reset();
                        blk_rx.wake_up().expect("mem store");
                    }
                }
            }
            ref_rx.save_completed().expect("mem store");
            blk_rx.save_completed().expect("mem store");
            let seq = SeqNum::new(s);
            if ref_rx.receive(seq).expect("mem store").is_delivered() {
                prop_assert!(delivered_ref.insert(s), "reference re-delivered {s}");
            }
            if blk_rx.receive(seq).expect("mem store").is_delivered() {
                prop_assert!(delivered_blk.insert(s), "block re-delivered {s}");
            }
        }
        // The block window's effective size is the requested size rounded
        // UP to whole blocks, so on a clean (reset-free) run it delivers a
        // superset of what the smaller reference window delivers — and the
        // per-implementation no-re-delivery assertions above are the
        // safety core for both.
        if resets.is_empty() {
            for s in &delivered_ref {
                prop_assert!(
                    delivered_blk.contains(s),
                    "reference delivered {s} that the (larger) block window refused"
                );
            }
        }
    }
}

// ---------------------------------------------------------------------
// Wire codec + crypto
// ---------------------------------------------------------------------

proptest! {
    /// seal/open round-trips arbitrary payloads and parameters.
    #[test]
    fn wire_round_trip(
        spi in any::<u32>(),
        seq in 1u64..u32::MAX as u64,
        payload in prop::collection::vec(any::<u8>(), 0..512),
        key in prop::collection::vec(any::<u8>(), 1..64),
    ) {
        let wire = reset_wire::seal(spi, seq, &payload, &key, false).expect("seal");
        let pkt = reset_wire::open(&wire, &key, None).expect("open");
        prop_assert_eq!(pkt.spi, spi);
        prop_assert_eq!(pkt.seq_lo, seq as u32);
        prop_assert_eq!(&pkt.payload[..], &payload[..]);
    }

    /// Any single-bit corruption is rejected.
    #[test]
    fn wire_rejects_any_bit_flip(
        payload in prop::collection::vec(any::<u8>(), 0..128),
        bit in any::<u16>(),
    ) {
        let wire = reset_wire::seal(7, 42, &payload, b"key", false).expect("seal");
        let mut bad = wire.to_vec();
        let pos = (bit as usize) % (bad.len() * 8);
        bad[pos / 8] ^= 1 << (pos % 8);
        prop_assert!(reset_wire::open(&bad, b"key", None).is_err());
    }

    /// ESN inference reconstructs any in-window 64-bit sequence number
    /// from its low 32 bits.
    #[test]
    fn esn_inference_round_trips(
        edge in 0u64..(1u64 << 40),
        delta in -2000i64..2000,
    ) {
        let seq = edge.saturating_add_signed(delta);
        let inferred = reset_wire::infer_esn(seq as u32, edge);
        prop_assert_eq!(inferred, seq);
    }

    /// Stable-store records survive round trips and reject corruption.
    #[test]
    fn record_round_trip_and_corruption(
        slot in any::<u64>(),
        value in any::<u64>(),
        flip in any::<u16>(),
    ) {
        use reset_stable::{decode_record, encode_record, RECORD_LEN};
        let slot = SlotId::raw(slot);
        let rec = encode_record(slot, value);
        prop_assert_eq!(decode_record(slot, &rec).expect("decode"), value);
        let mut bad = rec;
        let pos = (flip as usize) % (RECORD_LEN * 8);
        bad[pos / 8] ^= 1 << (pos % 8);
        prop_assert!(decode_record(slot, &bad).is_err());
    }

    /// prf_plus output length is exact and prefix-stable.
    #[test]
    fn prf_plus_properties(
        key in prop::collection::vec(any::<u8>(), 0..64),
        seed in prop::collection::vec(any::<u8>(), 0..64),
        len_a in 0usize..200,
        len_b in 0usize..200,
    ) {
        let a = reset_crypto::prf_plus(&key, &seed, len_a);
        let b = reset_crypto::prf_plus(&key, &seed, len_b);
        prop_assert_eq!(a.len(), len_a);
        let shared = len_a.min(len_b);
        prop_assert_eq!(&a[..shared], &b[..shared]);
    }

    /// BigUint modular arithmetic agrees with u128 reference math.
    #[test]
    fn bignum_matches_u128(
        a in 1u64..u64::MAX,
        b in 1u64..u64::MAX,
        m in 2u64..(1u64 << 32),
    ) {
        use reset_crypto::BigUint;
        let big = BigUint::from_u64(a).mod_mul(&BigUint::from_u64(b), &BigUint::from_u64(m));
        let expect = ((a as u128 * b as u128) % m as u128) as u64;
        prop_assert_eq!(big, BigUint::from_u64(expect));
    }

    /// Keystream en/decryption is an involution and never the identity on
    /// non-empty input (w.h.p.).
    #[test]
    fn keystream_involution(
        key in prop::collection::vec(any::<u8>(), 1..32),
        nonce in any::<u64>(),
        mut data in prop::collection::vec(any::<u8>(), 1..256),
    ) {
        let orig = data.clone();
        reset_crypto::xor_keystream(&key, nonce, &mut data);
        reset_crypto::xor_keystream(&key, nonce, &mut data);
        prop_assert_eq!(data, orig);
    }
}

//! Property-style tests of the core invariants.
//!
//! Random adversaries are stronger than hand-written ones: these
//! properties throw arbitrary streams, fault schedules and corruptions at
//! the window, the SAVE/FETCH processes, the wire codec and the bignum,
//! and check the paper's invariants on every generated case. Cases are
//! generated from the repository's own seeded [`DetRng`] (the offline
//! build has no proptest), so every run is bit-for-bit reproducible from
//! the literal seeds below.

use std::collections::{BTreeMap, HashMap, HashSet, VecDeque};

use anti_replay::{AntiReplayWindow, BlockWindow, SeqNum, SfReceiver, SfSender};
use bytes::Bytes;
use reset_ipsec::{
    CryptoSuite, Gateway, GatewayBuilder, GatewayEvent, SaKeys, SecurityAssociation, ShardedGateway,
};
use reset_sim::DetRng;
use reset_stable::{MemStable, SlotId};

const CASES: u64 = 48;

fn bytes(gen: &mut DetRng, len: usize) -> Vec<u8> {
    (0..len).map(|_| gen.next_u64() as u8).collect()
}

// ---------------------------------------------------------------------
// Anti-replay window
// ---------------------------------------------------------------------

/// Discrimination holds for ANY stream: no sequence number is ever
/// delivered (Fresh) twice, regardless of order or duplication.
#[test]
fn window_never_delivers_twice() {
    let mut gen = DetRng::new(0x17_0001);
    for case in 0..CASES {
        let w = 1 + gen.below(199);
        let n = 1 + gen.below(399) as usize;
        let mut win = AntiReplayWindow::new(w);
        let mut delivered = HashSet::new();
        for _ in 0..n {
            let s = 1 + gen.below(499);
            if win.check_and_accept(SeqNum::new(s)).is_deliverable() {
                assert!(delivered.insert(s), "case {case}: seq {s} delivered twice");
            }
        }
    }
}

/// w-Delivery: a stream whose reorder degree stays below w delivers
/// every distinct message exactly once.
#[test]
fn window_delivers_all_with_bounded_reorder() {
    let mut gen = DetRng::new(0x17_0002);
    for case in 0..CASES {
        let w = 4 + gen.below(124);
        let n = 1 + gen.below(299);
        // Shuffle within chunks of w/2: displacement < w guaranteed.
        let mut seqs: Vec<u64> = (1..=n).collect();
        for chunk in seqs.chunks_mut((w as usize / 2).max(1)) {
            gen.shuffle(chunk);
        }
        let degrees = reset_channel::reorder_degrees(&seqs);
        if !degrees.iter().all(|&d| d < w) {
            continue; // premise violated by this draw; skip like prop_assume
        }
        let mut win = AntiReplayWindow::new(w);
        let mut delivered = 0;
        for &s in &seqs {
            if win.check_and_accept(SeqNum::new(s)).is_deliverable() {
                delivered += 1;
            }
        }
        assert_eq!(delivered, n, "case {case} (w={w})");
    }
}

/// check() never mutates: any interleaving of checks between accepts
/// leaves the same final state as the accepts alone.
#[test]
fn window_check_is_pure() {
    let mut gen = DetRng::new(0x17_0003);
    for case in 0..CASES {
        let w = 1 + gen.below(63);
        let n = gen.below(60) as usize;
        let accepts: Vec<u64> = (0..n).map(|_| 1 + gen.below(199)).collect();
        let probes: Vec<u64> = (0..n).map(|_| 1 + gen.below(199)).collect();
        let mut a = AntiReplayWindow::new(w);
        let mut b = AntiReplayWindow::new(w);
        for (i, &s) in accepts.iter().enumerate() {
            if a.check(SeqNum::new(s)).is_deliverable() {
                a.accept(SeqNum::new(s));
            }
            if let Some(&p) = probes.get(i) {
                let _ = a.check(SeqNum::new(p));
            }
            if b.check(SeqNum::new(s)).is_deliverable() {
                b.accept(SeqNum::new(s));
            }
        }
        assert_eq!(a, b, "case {case}");
    }
}

/// The three-way oracle test guarding the word-level slide rewrite:
/// [`AntiReplayWindow`], [`BlockWindow`] and a naive HashSet-of-seen
/// model make identical deliver/reject decisions over 100k packets with
/// reorder, duplication and large jumps.
#[test]
fn window_implementations_match_hashset_oracle_100k() {
    // Oracle: remembers every in-window delivery exactly; rejects left
    // of the window, duplicates inside it.
    struct Oracle {
        w: u64,
        right: u64,
        seen: HashSet<u64>,
    }
    impl Oracle {
        fn deliver(&mut self, s: u64) -> bool {
            let fresh = if s > self.right {
                true
            } else if s as u128 + self.w as u128 <= self.right as u128 {
                false
            } else {
                !self.seen.contains(&s)
            };
            if fresh {
                self.seen.insert(s);
                self.right = self.right.max(s);
                // Stale entries are never consulted (the staleness test
                // runs first), so prune only occasionally for memory.
                if self.seen.len() as u64 >= 2 * self.w {
                    let left = (self.right + 1).saturating_sub(self.w);
                    self.seen.retain(|&x| x >= left);
                }
            }
            fresh
        }
    }

    let w = 4096u64; // multiple of 64: BlockWindow's effective size == w
    let mut blk = BlockWindow::new(w);
    assert_eq!(blk.effective_size(), w);
    let mut reference = AntiReplayWindow::new(w);
    let mut oracle = Oracle {
        w,
        right: 0,
        seen: HashSet::new(),
    };

    let mut gen = DetRng::new(0x17_0004);
    let mut next = 1u64;
    let mut history: Vec<u64> = Vec::new();
    let mut packets = 0u64;
    while packets < 100_000 {
        // One burst per loop: in-order run, shuffled run, replay burst,
        // or a large jump past the whole window.
        match gen.below(8) {
            0..=2 => {
                // In-order run.
                for _ in 0..gen.range_inclusive(1, 64) {
                    history.push(next);
                    next += 1;
                }
            }
            3..=4 => {
                // Reordered run: shuffle a chunk of fresh numbers.
                let len = gen.range_inclusive(2, 512) as usize;
                let mut chunk: Vec<u64> = (next..next + len as u64).collect();
                next += len as u64;
                gen.shuffle(&mut chunk);
                history.extend_from_slice(&chunk);
            }
            5..=6 => {
                // Replay burst: duplicates of recent or ancient traffic.
                for _ in 0..gen.range_inclusive(1, 128) {
                    if history.is_empty() {
                        break;
                    }
                    let idx = gen.below(history.len() as u64) as usize;
                    let replayed = history[idx];
                    history.push(replayed);
                }
            }
            _ => {
                // Large jump: leap far beyond the window, then continue.
                next += w + gen.below(3 * w);
                history.push(next);
                next += 1;
            }
        }
        while packets < 100_000 {
            let Some(&s) = history.get(packets as usize) else {
                break;
            };
            let seq = SeqNum::new(s);
            let d_ref = reference.check_and_accept(seq).is_deliverable();
            let d_blk = blk.check_and_accept(seq).is_deliverable();
            let d_oracle = oracle.deliver(s);
            assert_eq!(
                d_ref, d_oracle,
                "packet {packets}: reference vs oracle on seq {s}"
            );
            assert_eq!(
                d_blk, d_oracle,
                "packet {packets}: block vs oracle on seq {s}"
            );
            packets += 1;
        }
    }
    assert!(oracle.right > w, "stream actually exercised sliding");
}

// ---------------------------------------------------------------------
// SAVE/FETCH processes under random fault schedules
// ---------------------------------------------------------------------

/// Freshness + bounded waste for arbitrary schedules respecting the
/// premise (a SAVE completes within K subsequent sends): every wake-up
/// resumes strictly above all used sequence numbers and skips at most 2K.
#[test]
fn sender_wakeups_always_fresh() {
    let mut gen = DetRng::new(0x17_0005);
    for _ in 0..CASES {
        let k = 2 + gen.below(38);
        let n_ops = 1 + gen.below(199);
        let mut p = SfSender::new(MemStable::new(), SlotId::sender(1), k);
        let mut max_used = 0u64;
        let mut sends_since_issue = 0u64;
        for _ in 0..n_ops {
            match gen.below(9) {
                0..=5 => {
                    // Enforce the premise: a pending SAVE must complete
                    // within K sends of being issued.
                    if p.pending_save().is_some() && sends_since_issue >= k - 1 {
                        p.save_completed().expect("mem store");
                        sends_since_issue = 0;
                    }
                    let had_pending = p.pending_save().is_some();
                    if let Some(s) = p.send_next().expect("mem store") {
                        max_used = max_used.max(s.value());
                        if p.pending_save().is_some() {
                            sends_since_issue = if had_pending {
                                sends_since_issue + 1
                            } else {
                                0
                            };
                        }
                    }
                }
                6..=7 => {
                    p.save_completed().expect("mem store");
                    sends_since_issue = 0;
                }
                _ => {
                    let old_next = p.next_seq();
                    let was_running = p.phase() == anti_replay::Phase::Running;
                    p.reset();
                    let resumed = p.wake_up().expect("mem store");
                    assert!(
                        resumed.value() > max_used,
                        "resumed {} <= max_used {}",
                        resumed.value(),
                        max_used
                    );
                    if was_running {
                        let lost = resumed.value().saturating_sub(old_next.value());
                        assert!(lost <= 2 * k, "lost {lost} > 2K");
                    }
                    sends_since_issue = 0;
                }
            }
        }
    }
}

/// The receiver under random in-order traffic + resets never accepts
/// a replay of anything previously delivered.
#[test]
fn receiver_never_reaccepts_after_wakeup() {
    let mut gen = DetRng::new(0x17_0006);
    for _ in 0..CASES {
        let k = 2 + gen.below(28);
        let total = 50 + gen.below(450);
        let n_resets = gen.below(4) as usize;
        let mut reset_points: Vec<u64> = (0..n_resets).map(|_| 1 + gen.below(499)).collect();
        reset_points.sort_unstable();
        reset_points.dedup();
        let w = 4 * k + 32;
        let mut q = SfReceiver::new(MemStable::new(), SlotId::receiver(1), k, w);
        let mut delivered: Vec<u64> = Vec::new();
        let mut next_reset = 0usize;
        let mut since_issue = 0u64;
        for s in 1..=total {
            // Premise: complete pending saves within K receives.
            if q.pending_save().is_some() {
                since_issue += 1;
                if since_issue >= k - 1 {
                    q.save_completed().expect("mem store");
                    since_issue = 0;
                }
            }
            if next_reset < reset_points.len() && s == reset_points[next_reset] {
                q.reset();
                q.wake_up().expect("mem store");
                next_reset += 1;
                since_issue = 0;
                // The §3 attack at the worst moment: replay everything.
                for &old in &delivered {
                    let out = q.receive(SeqNum::new(old)).expect("mem store");
                    assert!(!out.is_delivered(), "replayed {old} accepted after wakeup");
                }
            }
            if q.receive(SeqNum::new(s)).expect("mem store").is_delivered() {
                delivered.push(s);
            }
        }
    }
}

// ---------------------------------------------------------------------
// Differential testing: reference window vs RFC 6479 block window
// ---------------------------------------------------------------------

/// The two window implementations, run side by side behind identical
/// SAVE/FETCH receivers over the same random stream + reset schedule,
/// are equally SAFE: neither ever delivers a sequence number twice.
#[test]
fn window_implementations_differentially_safe() {
    let mut gen = DetRng::new(0x17_0007);
    for _ in 0..CASES {
        let k = 2 + gen.below(18);
        let n = 10 + gen.below(240) as usize;
        let stream: Vec<u64> = (0..n).map(|_| 1 + gen.below(299)).collect();
        let resets: HashSet<usize> = (0..gen.below(3))
            .map(|_| 5 + gen.below(235) as usize)
            .collect();
        let w_bits = 4 * k + 32;
        let mut ref_rx = SfReceiver::new(MemStable::new(), SlotId::receiver(1), k, w_bits);
        let mut blk_rx = SfReceiver::with_window(
            MemStable::new(),
            SlotId::receiver(1),
            k,
            BlockWindow::new(w_bits),
        );
        let mut delivered_ref = HashSet::new();
        let mut delivered_blk = HashSet::new();
        for (i, &s) in stream.iter().enumerate() {
            if resets.contains(&i) {
                ref_rx.save_completed().expect("mem store");
                ref_rx.reset();
                ref_rx.wake_up().expect("mem store");
                blk_rx.save_completed().expect("mem store");
                blk_rx.reset();
                blk_rx.wake_up().expect("mem store");
            }
            ref_rx.save_completed().expect("mem store");
            blk_rx.save_completed().expect("mem store");
            let seq = SeqNum::new(s);
            if ref_rx.receive(seq).expect("mem store").is_delivered() {
                assert!(delivered_ref.insert(s), "reference re-delivered {s}");
            }
            if blk_rx.receive(seq).expect("mem store").is_delivered() {
                assert!(delivered_blk.insert(s), "block re-delivered {s}");
            }
        }
        // The block window's effective size is the requested size rounded
        // UP to whole blocks, so on a clean (reset-free) run it delivers a
        // superset of what the smaller reference window delivers.
        if resets.is_empty() {
            for s in &delivered_ref {
                assert!(
                    delivered_blk.contains(s),
                    "reference delivered {s} that the (larger) block window refused"
                );
            }
        }
    }
}

// ---------------------------------------------------------------------
// Wire codec + crypto
// ---------------------------------------------------------------------

/// seal/open round-trips arbitrary payloads and parameters.
#[test]
fn wire_round_trip() {
    let mut gen = DetRng::new(0x17_0008);
    for _ in 0..CASES {
        let spi = gen.next_u64() as u32;
        let seq = 1 + gen.below(u32::MAX as u64 - 1);
        let payload_len = gen.below(512) as usize;
        let payload = bytes(&mut gen, payload_len);
        let key_len = 1 + gen.below(63) as usize;
        let key = bytes(&mut gen, key_len);
        let wire = reset_wire::seal(spi, seq, &payload, &key, false).expect("seal");
        let pkt = reset_wire::open(&wire, &key, None).expect("open");
        assert_eq!(pkt.spi, spi);
        assert_eq!(pkt.seq_lo, seq as u32);
        assert_eq!(&pkt.payload[..], &payload[..]);
    }
}

/// Any single-bit corruption is rejected.
#[test]
fn wire_rejects_any_bit_flip() {
    let mut gen = DetRng::new(0x17_0009);
    for _ in 0..CASES {
        let payload_len = gen.below(128) as usize;
        let payload = bytes(&mut gen, payload_len);
        let wire = reset_wire::seal(7, 42, &payload, b"key", false).expect("seal");
        let mut bad = wire.to_vec();
        let pos = gen.below((bad.len() * 8) as u64) as usize;
        bad[pos / 8] ^= 1 << (pos % 8);
        assert!(reset_wire::open(&bad, b"key", None).is_err());
    }
}

/// ESN inference reconstructs any in-window 64-bit sequence number
/// from its low 32 bits.
#[test]
fn esn_inference_round_trips() {
    let mut gen = DetRng::new(0x17_000A);
    for _ in 0..CASES * 8 {
        let edge = gen.below(1u64 << 40);
        let delta = gen.below(4000) as i64 - 2000;
        let seq = edge.saturating_add_signed(delta);
        let inferred = reset_wire::infer_esn(seq as u32, edge);
        assert_eq!(inferred, seq, "edge {edge} delta {delta}");
    }
}

/// Stable-store records survive round trips and reject corruption.
#[test]
fn record_round_trip_and_corruption() {
    use reset_stable::{decode_record, encode_record, RECORD_LEN};
    let mut gen = DetRng::new(0x17_000B);
    for _ in 0..CASES * 4 {
        let slot = SlotId::raw(gen.next_u64());
        let value = gen.next_u64();
        let rec = encode_record(slot, value);
        assert_eq!(decode_record(slot, &rec).expect("decode"), value);
        let mut bad = rec;
        let pos = gen.below((RECORD_LEN * 8) as u64) as usize;
        bad[pos / 8] ^= 1 << (pos % 8);
        assert!(decode_record(slot, &bad).is_err());
    }
}

/// prf_plus output length is exact and prefix-stable.
#[test]
fn prf_plus_properties() {
    let mut gen = DetRng::new(0x17_000C);
    for _ in 0..CASES {
        let key_len = gen.below(64) as usize;
        let key = bytes(&mut gen, key_len);
        let seed_len = gen.below(64) as usize;
        let seed = bytes(&mut gen, seed_len);
        let len_a = gen.below(200) as usize;
        let len_b = gen.below(200) as usize;
        let a = reset_crypto::prf_plus(&key, &seed, len_a);
        let b = reset_crypto::prf_plus(&key, &seed, len_b);
        assert_eq!(a.len(), len_a);
        let shared = len_a.min(len_b);
        assert_eq!(&a[..shared], &b[..shared]);
    }
}

/// BigUint modular arithmetic agrees with u128 reference math.
#[test]
fn bignum_matches_u128() {
    use reset_crypto::BigUint;
    let mut gen = DetRng::new(0x17_000D);
    for _ in 0..CASES * 4 {
        let a = 1 + gen.next_u64() % (u64::MAX - 1);
        let b = 1 + gen.next_u64() % (u64::MAX - 1);
        let m = 2 + gen.below((1u64 << 32) - 2);
        let big = BigUint::from_u64(a).mod_mul(&BigUint::from_u64(b), &BigUint::from_u64(m));
        let expect = ((a as u128 * b as u128) % m as u128) as u64;
        assert_eq!(big, BigUint::from_u64(expect), "{a} * {b} mod {m}");
    }
}

// ---------------------------------------------------------------------
// Sharded fleet reset storms: the §3 invariant per SA, with a
// DetRng-driven schedule shrinker
// ---------------------------------------------------------------------

/// One step of a randomized storm schedule against a sharded receiver
/// fleet. Schedules are plain data so a failing one can be *shrunk* to
/// a minimal counterexample before being reported.
#[derive(Debug, Clone, PartialEq, Eq)]
enum StormOp {
    /// Protect and push one fresh frame per listed SA (repeats allowed),
    /// as a single batch — the batch fans out shard-parallel.
    Burst(Vec<u32>),
    /// The adversary replays recorded ciphertext: each pick indexes the
    /// recorded history modulo its current length.
    Replay(Vec<u64>),
    /// Background SAVEs reach the disk (the §4 premise).
    SaveDone,
    /// The receiver fleet crashes and runs the shard-parallel
    /// SAVE/FETCH recovery (saves completed first, modelling the
    /// premise that a SAVE lands within K receives).
    ResetRecover,
}

const STORM_SAS: u32 = 24;
const STORM_SHARDS: usize = 4;
const STORM_K: u64 = 10;

fn storm_sa(spi: u32) -> SecurityAssociation {
    SecurityAssociation::new(spi, SaKeys::derive(b"storm-master", &spi.to_be_bytes()))
        .with_suite(CryptoSuite::default())
}

/// Executes one schedule and checks, per SA, the §3 invariant online:
/// no sequence number is ever delivered twice (0 replays accepted
/// post-FETCH), and the fresh frames sacrificed to leaps stay within
/// `2K x resets`. Returns the first violation, rendered.
fn run_storm(ops: &[StormOp]) -> Result<(), String> {
    let mut tx: Gateway<MemStable> = GatewayBuilder::in_memory().save_interval(STORM_K).build();
    let mut rx: ShardedGateway<MemStable> = GatewayBuilder::in_memory_sharded(STORM_SHARDS)
        .save_interval(STORM_K)
        .window(64)
        .build_sharded();
    for spi in 1..=STORM_SAS {
        tx.install_outbound(storm_sa(spi));
        rx.install_inbound(storm_sa(spi));
    }
    let mut recorded: Vec<Bytes> = Vec::new();
    let mut delivered: HashMap<u32, HashSet<u64>> = HashMap::new();
    let mut fresh_lost: HashMap<u32, u64> = HashMap::new();
    let mut resets = 0u64;

    // Consumes one batch's events, correlating each event back to the
    // pushed frame through per-SPI FIFO tags (true = fresh).
    let check = |rx: &mut ShardedGateway<MemStable>,
                 batch: &[Bytes],
                 mut tags: BTreeMap<u32, VecDeque<bool>>,
                 delivered: &mut HashMap<u32, HashSet<u64>>,
                 fresh_lost: &mut HashMap<u32, u64>,
                 resets: u64|
     -> Result<(), String> {
        rx.push_wire_batch(batch).map_err(|e| e.to_string())?;
        for ev in rx.poll_events() {
            match ev {
                GatewayEvent::Delivered { spi, seq, .. } => {
                    let _fresh = tags.get_mut(&spi).and_then(|q| q.pop_front());
                    if !delivered.entry(spi).or_default().insert(seq.value()) {
                        return Err(format!(
                            "SA {spi}: seq {} delivered twice after {resets} reset(s) — \
                             replay accepted post-FETCH",
                            seq.value()
                        ));
                    }
                }
                GatewayEvent::ReplayDropped { spi, seq, .. } => {
                    let fresh = tags
                        .get_mut(&spi)
                        .and_then(|q| q.pop_front())
                        .unwrap_or(false);
                    let seen = delivered
                        .get(&spi)
                        .is_some_and(|s| s.contains(&seq.value()));
                    if fresh && !seen {
                        let lost = fresh_lost.entry(spi).or_default();
                        *lost += 1;
                        if *lost > 2 * STORM_K * resets {
                            return Err(format!(
                                "SA {spi}: {lost} fresh frames sacrificed after {resets} \
                                 reset(s) — exceeds the 2K bound {}",
                                2 * STORM_K * resets
                            ));
                        }
                    }
                }
                GatewayEvent::AuthFailed { spi } | GatewayEvent::UnknownSa { spi } => {
                    return Err(format!("SA {spi}: genuine frame failed authentication"));
                }
                _ => {}
            }
        }
        Ok(())
    };

    for op in ops {
        match op {
            StormOp::Burst(spis) => {
                let mut batch = Vec::with_capacity(spis.len());
                let mut tags: BTreeMap<u32, VecDeque<bool>> = BTreeMap::new();
                for &spi in spis {
                    let f = tx
                        .protect(spi, b"storm payload")
                        .map_err(|e| e.to_string())?
                        .expect("tx never resets");
                    recorded.push(f.wire.clone());
                    batch.push(f.wire);
                    tags.entry(spi).or_default().push_back(true);
                }
                check(
                    &mut rx,
                    &batch,
                    tags,
                    &mut delivered,
                    &mut fresh_lost,
                    resets,
                )?;
            }
            StormOp::Replay(picks) => {
                if recorded.is_empty() {
                    continue;
                }
                let mut batch = Vec::with_capacity(picks.len());
                let mut tags: BTreeMap<u32, VecDeque<bool>> = BTreeMap::new();
                for &p in picks {
                    let wire = recorded[(p % recorded.len() as u64) as usize].clone();
                    let spi = reset_wire::peek_spi(&wire).expect("recorded frames carry SPIs");
                    tags.entry(spi).or_default().push_back(false);
                    batch.push(wire);
                }
                check(
                    &mut rx,
                    &batch,
                    tags,
                    &mut delivered,
                    &mut fresh_lost,
                    resets,
                )?;
            }
            StormOp::SaveDone => {
                rx.save_completed().map_err(|e| e.to_string())?;
                tx.save_completed().map_err(|e| e.to_string())?;
            }
            StormOp::ResetRecover => {
                // Premise: pending SAVEs land before the crash strikes.
                rx.save_completed().map_err(|e| e.to_string())?;
                rx.reset();
                rx.recover().map_err(|e| e.to_string())?;
                resets += 1;
                rx.poll_events(); // Recovered + DroppedDown noise
            }
        }
    }
    Ok(())
}

fn generate_storm_schedule(seed: u64) -> Vec<StormOp> {
    let mut gen = DetRng::new(seed);
    let n_ops = 30 + gen.below(40);
    (0..n_ops)
        .map(|_| match gen.below(12) {
            0..=6 => {
                let n = 1 + gen.below(48);
                StormOp::Burst(
                    (0..n)
                        .map(|_| 1 + gen.below(STORM_SAS as u64) as u32)
                        .collect(),
                )
            }
            7..=8 => {
                let n = 1 + gen.below(32);
                StormOp::Replay((0..n).map(|_| gen.next_u64()).collect())
            }
            9 => StormOp::SaveDone,
            _ => StormOp::ResetRecover,
        })
        .collect()
}

/// Greedy delta-debugging shrink: repeatedly delete the largest chunk
/// whose removal keeps the schedule failing, halving the chunk size
/// until single-op deletions no longer help. Deterministic; the result
/// is 1-minimal (no single op can be removed).
fn shrink_schedule<T: Clone>(ops: &[T], fails: &dyn Fn(&[T]) -> bool) -> Vec<T> {
    let mut cur = ops.to_vec();
    let mut chunk = (cur.len() / 2).max(1);
    loop {
        let mut shrunk = false;
        let mut start = 0;
        while start < cur.len() {
            let end = (start + chunk).min(cur.len());
            let mut cand = cur.clone();
            cand.drain(start..end);
            if !cand.is_empty() && fails(&cand) {
                cur = cand;
                shrunk = true;
                // Retry the same offset: the next chunk slid into it.
            } else {
                start = end;
            }
        }
        if chunk == 1 {
            if !shrunk {
                return cur;
            }
        } else if !shrunk {
            chunk = (chunk / 2).max(1);
        }
    }
}

/// The fleet reset-storm property: for every seeded schedule of
/// concurrent batched pushes, adversary replays and shard-parallel
/// `reset`/`recover_all` cycles, the §3 invariant holds on every SA —
/// 0 replays accepted post-FETCH and at most `2K x resets` fresh frames
/// sacrificed. A failing schedule is shrunk to a minimal
/// counterexample before being reported.
#[test]
fn sharded_fleet_storm_holds_section3_invariant_per_sa() {
    let mut gen = DetRng::new(0x17_0010);
    for case in 0..12u64 {
        let seed = gen.next_u64();
        let schedule = generate_storm_schedule(seed);
        if run_storm(&schedule).is_err() {
            let fails = |ops: &[StormOp]| run_storm(ops).is_err();
            let minimal = shrink_schedule(&schedule, &fails);
            let verdict = run_storm(&minimal).expect_err("shrunk schedules keep failing");
            panic!(
                "case {case} (seed {seed:#x}): §3 invariant violated: {verdict}\n\
                 minimal schedule ({} of {} ops):\n{minimal:#?}",
                minimal.len(),
                schedule.len()
            );
        }
    }
}

/// The shrinker itself, exercised on a synthetic failure predicate
/// (the real property holding would leave it dead code): it must find
/// the exact 3-op core of a 60-op schedule.
#[test]
fn schedule_shrinker_finds_minimal_counterexample() {
    let schedule = generate_storm_schedule(0x17_0011);
    assert!(schedule.len() >= 30);
    // Synthetic bug: "fails" whenever ≥ 2 resets and ≥ 1 replay remain.
    let fails = |ops: &[StormOp]| {
        let resets = ops.iter().filter(|o| **o == StormOp::ResetRecover).count();
        let replays = ops
            .iter()
            .filter(|o| matches!(o, StormOp::Replay(_)))
            .count();
        resets >= 2 && replays >= 1
    };
    // Ensure the generated schedule actually triggers it.
    let mut schedule = schedule;
    schedule.push(StormOp::ResetRecover);
    schedule.push(StormOp::Replay(vec![1]));
    schedule.push(StormOp::ResetRecover);
    assert!(fails(&schedule));
    let minimal = shrink_schedule(&schedule, &fails);
    assert_eq!(minimal.len(), 3, "minimal core: two resets + one replay");
    assert!(fails(&minimal));
    assert_eq!(
        minimal
            .iter()
            .filter(|o| **o == StormOp::ResetRecover)
            .count(),
        2
    );
}

/// Keystream en/decryption is an involution.
#[test]
fn keystream_involution() {
    let mut gen = DetRng::new(0x17_000E);
    for _ in 0..CASES {
        let key_len = 1 + gen.below(31) as usize;
        let key = bytes(&mut gen, key_len);
        let nonce = gen.next_u64();
        let data_len = 1 + gen.below(255) as usize;
        let mut data = bytes(&mut gen, data_len);
        let orig = data.clone();
        reset_crypto::xor_keystream(&key, nonce, &mut data);
        assert_ne!(data, orig, "keystream must actually transform");
        reset_crypto::xor_keystream(&key, nonce, &mut data);
        assert_eq!(data, orig);
    }
}

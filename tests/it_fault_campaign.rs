//! Seeded fault-injection campaign across suites and shard counts.
//!
//! This is the CI entry point for [`reset_harness::run_campaign`]: every
//! store behind the receiving fleet misbehaves on a seeded schedule
//! (failed and torn SAVEs, corrupt and rolled-back FETCHes, erase
//! failures) while a recording adversary replays through resets. The
//! campaign itself asserts the §3 invariants — zero replays accepted,
//! sacrifice ≤ 2K·resets per SA, no counter rollback — with the seed in
//! every panic message.
//!
//! Override the seed with `FAULT_CAMPAIGN_SEED=<u64>` to reproduce or
//! explore; the seed in use is always printed.

use reset_harness::{run_campaign, CampaignConfig};

fn campaign_seed() -> u64 {
    match std::env::var("FAULT_CAMPAIGN_SEED") {
        Ok(s) => s
            .parse()
            .unwrap_or_else(|_| panic!("FAULT_CAMPAIGN_SEED must be a u64, got {s:?}")),
        Err(_) => CampaignConfig::default().seed,
    }
}

#[test]
fn fault_campaign_sweeps_suites_and_shards() {
    let cfg = CampaignConfig {
        seed: campaign_seed(),
        ..CampaignConfig::default()
    };
    eprintln!(
        "fault campaign: seed={:#x} ({} suites x {:?} shards)",
        cfg.seed,
        cfg.suites.len(),
        cfg.shard_counts
    );
    let report = run_campaign(&cfg);
    eprintln!("fault campaign report: {report:?}");

    assert_eq!(report.runs, cfg.suites.len() * cfg.shard_counts.len());
    assert!(report.resets > 0, "schedule must inject resets: {report:?}");
    assert!(report.delivered > 0, "fresh traffic must flow: {report:?}");
    assert!(
        report.replays_rejected > 0,
        "the adversary must be exercised: {report:?}"
    );
}

#[test]
fn fault_campaign_survives_a_hostile_disk() {
    // Crank the per-operation fault rate to 35%: recovery now fails
    // closed routinely, SAs get replaced mid-run, and the invariants
    // must still hold end to end.
    let cfg = CampaignConfig {
        seed: campaign_seed() ^ 0xD15C,
        fault_per_mille: 350,
        ..CampaignConfig::default()
    };
    eprintln!("hostile-disk campaign: seed={:#x}", cfg.seed);
    let report = run_campaign(&cfg);
    eprintln!("hostile-disk report: {report:?}");

    assert!(
        report.failed_closed > 0,
        "a hostile disk must trip fail-closed recovery: {report:?}"
    );
    assert!(report.delivered > 0, "{report:?}");
}

//! Million-SA fleet smoke test (ROADMAP item 2: "a million tunnels").
//!
//! Gated behind `IT_FLEET_1M=1` because installing 10^6 SA pairs takes
//! real time and memory; the CI scaling lane opts in explicitly. The
//! test checks the control-plane property the hierarchical timer wheel
//! exists for: an *idle* `tick` costs the same whether the SADB holds a
//! thousand SAs or a million, because tick work is proportional to the
//! number of *due* timers, not to fleet size. The pre-wheel
//! implementation swept every DPD detector and every SA on every tick,
//! so this assertion was impossible to meet.
//!
//! After the timing check, a 4096-frame batch is drained through the
//! million-SA gateway to prove the datapath still delivers under the
//! slab SADB at full fleet size.

use bytes::Bytes;
use reset_ipsec::{
    DpdConfig, Gateway, GatewayBuilder, GatewayEvent, SaKeys, SaLifetime, SecurityAssociation,
};
use reset_stable::MemStable;
use std::time::Instant;

const MASTER: &[u8] = b"fleet-master-secret";

/// Install `n` SA pairs with shared keys (one derivation, not `n` —
/// key uniqueness is irrelevant to timer-wheel scaling).
fn build_fleet(n: u32) -> Gateway<MemStable> {
    let keys = SaKeys::derive(MASTER, b"fleet-shared");
    let mut gw = GatewayBuilder::in_memory()
        .save_interval(64)
        .dpd(DpdConfig::default())
        .rekey_after(SaLifetime {
            max_packets: 1_000_000,
            max_bytes: u64::MAX,
        })
        .build();
    for spi in 1..=n {
        gw.install_pair(SecurityAssociation::new(spi, keys.clone()));
    }
    // First tick arms every DPD detector and populates the wheel; this
    // is the one fleet-proportional tick and stays outside the timed
    // region.
    gw.tick(1_000);
    gw.poll_events();
    gw
}

/// Median-of-5 wall time for `rounds` idle ticks.
fn time_idle_ticks(gw: &mut Gateway<MemStable>, rounds: u64) -> std::time::Duration {
    let mut samples = Vec::new();
    let mut now = 1_000u64;
    for _ in 0..5 {
        let start = Instant::now();
        for _ in 0..rounds {
            now += 1;
            gw.tick(now);
        }
        samples.push(start.elapsed());
    }
    samples.sort();
    samples[2]
}

#[test]
fn million_sa_idle_tick_costs_the_same_as_a_thousand() {
    if std::env::var("IT_FLEET_1M").is_err() {
        eprintln!(
            "million_sa_idle_tick_costs_the_same_as_a_thousand: SKIPPED \
             (set IT_FLEET_1M=1 to install 10^6 SA pairs and assert flat idle-tick cost)"
        );
        return;
    }

    const ROUNDS: u64 = 100_000;
    let mut small = build_fleet(1_000);
    let t_small = time_idle_ticks(&mut small, ROUNDS);
    drop(small);

    let mut fleet = build_fleet(1_000_000);
    let t_fleet = time_idle_ticks(&mut fleet, ROUNDS);
    eprintln!(
        "idle tick x{ROUNDS}: 1k SAs {:?}, 1M SAs {:?}",
        t_small, t_fleet
    );

    // ISSUE acceptance: idle tick on 1M SAs within 2x of 1k SAs. The
    // additive floor absorbs scheduler noise when both medians are
    // near-zero.
    let budget = t_small * 2 + std::time::Duration::from_millis(10);
    assert!(
        t_fleet <= budget,
        "idle tick over 1M SAs took {t_fleet:?}, budget {budget:?} \
         (2x the 1k-SA fleet's {t_small:?} + 10ms noise floor): \
         tick cost must track due timers, not fleet size"
    );

    // Datapath smoke at full fleet size: a 4096-frame batch across the
    // first 1024 SPIs drains through the slab SADB and delivers.
    let keys = SaKeys::derive(MASTER, b"fleet-shared");
    let mut tx = GatewayBuilder::in_memory().save_interval(64).build();
    for spi in 1..=1_024u32 {
        tx.install_pair(SecurityAssociation::new(spi, keys.clone()));
    }
    let wires: Vec<Bytes> = (0..4_096u32)
        .map(|i| {
            let spi = 1 + (i % 1_024);
            tx.protect(spi, format!("fleet frame {i}").as_bytes())
                .unwrap()
                .unwrap()
                .wire
        })
        .collect();
    fleet.push_wire_batch(&wires).unwrap();
    let delivered = fleet
        .poll_events()
        .into_iter()
        .filter(|e| matches!(e, GatewayEvent::Delivered { .. }))
        .count();
    assert_eq!(delivered, 4_096, "all batch frames deliver at 1M-SA scale");
}

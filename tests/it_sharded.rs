//! Parallel-vs-sequential differential suite for the sharded gateway.
//!
//! The [`reset_ipsec::ShardedGateway`] contract has two halves, both
//! locked here against a plain [`reset_ipsec::Gateway`] fed the exact
//! same 10k-frame randomized wire stream (fresh traffic across a 64-SA
//! fleet, replays, corruptions, garbage, truncations, and mid-run
//! reset/recover cycles with frames buffered during the wake-up):
//!
//! * **shards = 1** — the merged event stream is *bit-identical* to the
//!   single gateway's: same events, same global order.
//! * **shards ∈ {2, 4, 8}** — the global interleaving may differ (events
//!   merge in stable shard-then-arrival order), but the **per-SPI event
//!   subsequences** and the **global verdict counts** are exactly equal.
//!   Per-SA order is the unit the paper's guarantees are stated in, so
//!   this is the equivalence that matters.
//!
//! Both cipher suites run the whole matrix, seeded; failures print the
//! seed and diverging SPI.
//!
//! Since the persistent worker-pool runtime landed, the sharded side of
//! every differential runs on long-lived worker threads fed over
//! per-shard work queues — the same differential therefore also locks
//! the pool's completion-barrier event merge. Additional lifecycle
//! coverage here: drop-with-work-in-flight shuts down cleanly, a
//! panicking shard job surfaces as [`reset_ipsec::IpsecError`]
//! (`WorkerPanicked`) on the caller instead of hanging, and the
//! env-gated `shard_scaling_meets_multicore_floor` measures the ≥1.5×
//! 4-shard throughput floor on hosts with ≥4 cores (the CI scaling
//! lane sets `IT_SHARD_SCALING=1` after checking `nproc`).
//!
//! Set `IT_SHARDED_SOAK=<n>` to multiply the frame count (the CI soak
//! lane runs the suite at 5× with the thread-heavy 8-shard config).

use bytes::Bytes;
use reset_ipsec::{
    CryptoSuite, Gateway, GatewayBuilder, GatewayEvent, SaKeys, SecurityAssociation, ShardedGateway,
};
use reset_sim::DetRng;
use reset_stable::MemStable;

/// The two real transforms (auth-only adds nothing over the HMAC one
/// for routing/merging semantics).
const SUITES: [CryptoSuite; 2] = [
    CryptoSuite::HmacSha256WithKeystream,
    CryptoSuite::ChaCha20Poly1305,
];

const N_SAS: u32 = 64;
const BASE_FRAMES: usize = 10_000;

/// Non-contiguous SPIs: the hash router must cope with arbitrary
/// allocation patterns, not just 1..=N.
fn fleet_spis() -> Vec<u32> {
    (0..N_SAS).map(|i| 0x2000 + i * 37 + (i % 5)).collect()
}

fn frames_target() -> usize {
    match std::env::var("IT_SHARDED_SOAK") {
        Ok(v) => BASE_FRAMES * v.parse::<usize>().unwrap_or(1).max(1),
        Err(_) => BASE_FRAMES,
    }
}

fn sa_for(suite: CryptoSuite, spi: u32) -> SecurityAssociation {
    let keys = SaKeys::derive(b"differential-master", &spi.to_be_bytes());
    SecurityAssociation::new(spi, keys).with_suite(suite)
}

fn tx_gateway(suite: CryptoSuite) -> Gateway<MemStable> {
    let mut tx = GatewayBuilder::in_memory()
        .suite(suite)
        .save_interval(10)
        .build();
    for spi in fleet_spis() {
        tx.install_outbound(sa_for(suite, spi));
    }
    tx
}

fn rx_reference(suite: CryptoSuite) -> Gateway<MemStable> {
    let mut rx = GatewayBuilder::in_memory()
        .suite(suite)
        .save_interval(10)
        .window(64)
        .build();
    for spi in fleet_spis() {
        rx.install_inbound(sa_for(suite, spi));
    }
    rx
}

fn rx_sharded(suite: CryptoSuite, shards: usize) -> ShardedGateway<MemStable> {
    let mut rx = GatewayBuilder::in_memory_sharded(shards)
        .suite(suite)
        .save_interval(10)
        .window(64)
        .build_sharded();
    for spi in fleet_spis() {
        rx.install_inbound(sa_for(suite, spi));
    }
    rx
}

/// One randomized chunked wire stream: mostly fresh fleet traffic with
/// replays, single-byte corruptions, garbage and truncations mixed in.
/// Returned as chunks (NIC-queue drains of random size).
fn generate_chunks(suite: CryptoSuite, seed: u64, total: usize) -> Vec<Vec<Bytes>> {
    let mut gen = DetRng::new(seed);
    let mut tx = tx_gateway(suite);
    let spis = fleet_spis();
    let mut recorded: Vec<Bytes> = Vec::new();
    let mut chunks: Vec<Vec<Bytes>> = Vec::new();
    let mut chunk: Vec<Bytes> = Vec::new();
    let mut produced = 0usize;
    while produced < total {
        let wire: Bytes = match gen.below(10) {
            0..=5 => {
                let spi = *gen.pick(&spis);
                let payload_len = gen.below(48) as usize;
                let mut payload = vec![0u8; payload_len];
                gen.fill_bytes(&mut payload);
                let f = tx.protect(spi, &payload).unwrap().expect("tx up");
                recorded.push(f.wire.clone());
                f.wire
            }
            6 if !recorded.is_empty() => {
                let idx = gen.below(recorded.len() as u64) as usize;
                recorded[idx].clone()
            }
            7 if !recorded.is_empty() => {
                let idx = gen.below(recorded.len() as u64) as usize;
                let mut bad = recorded[idx].to_vec();
                let pos = gen.below(bad.len() as u64) as usize;
                bad[pos] ^= 1 << gen.below(8);
                Bytes::from(bad)
            }
            8 => {
                let len = gen.below(24) as usize;
                let mut junk = vec![0u8; len];
                gen.fill_bytes(&mut junk);
                Bytes::from(junk)
            }
            _ if !recorded.is_empty() => {
                let idx = gen.below(recorded.len() as u64) as usize;
                let cut = gen.below(recorded[idx].len() as u64 + 1) as usize;
                recorded[idx].slice(..cut)
            }
            _ => Bytes::new(),
        };
        chunk.push(wire);
        produced += 1;
        if chunk.len() as u64 > gen.below(64) {
            chunks.push(std::mem::take(&mut chunk));
        }
    }
    if !chunk.is_empty() {
        chunks.push(chunk);
    }
    chunks
}

/// The receiver verbs the differential drives — implemented for both
/// the plain engine and the sharded one so one driver exercises both.
trait Rx {
    fn push(&mut self, chunk: &[Bytes]);
    fn poll(&mut self) -> Vec<GatewayEvent>;
    fn save(&mut self);
    fn crash(&mut self);
    fn begin(&mut self);
    fn finish(&mut self);
}

impl Rx for Gateway<MemStable> {
    fn push(&mut self, chunk: &[Bytes]) {
        self.push_wire_batch(chunk).unwrap();
    }
    fn poll(&mut self) -> Vec<GatewayEvent> {
        self.poll_events()
    }
    fn save(&mut self) {
        self.save_completed().unwrap();
    }
    fn crash(&mut self) {
        self.reset();
    }
    fn begin(&mut self) {
        self.begin_recover().unwrap();
    }
    fn finish(&mut self) {
        self.finish_recover().unwrap();
    }
}

impl Rx for ShardedGateway<MemStable> {
    fn push(&mut self, chunk: &[Bytes]) {
        self.push_wire_batch(chunk).unwrap();
    }
    fn poll(&mut self) -> Vec<GatewayEvent> {
        self.poll_events()
    }
    fn save(&mut self) {
        self.save_completed().unwrap();
    }
    fn crash(&mut self) {
        self.reset();
    }
    fn begin(&mut self) {
        self.begin_recover().unwrap();
    }
    fn finish(&mut self) {
        self.finish_recover().unwrap();
    }
}

/// Drives one receiver through the chunk stream with two reset/recover
/// cycles, frames arriving mid-wake-up on the second one. Returns every
/// event emitted, in order.
fn drive<R: Rx>(rx: &mut R, chunks: &[Vec<Bytes>]) -> Vec<GatewayEvent> {
    let mut events = Vec::new();
    let n = chunks.len();
    let (r1, r2) = (n / 3, 2 * n / 3);
    for (i, chunk) in chunks.iter().enumerate() {
        if i == r1 {
            // Atomic reset/recover between two chunks.
            rx.save();
            rx.crash();
            rx.begin();
            rx.finish();
        }
        if i == r2 {
            // Split recovery: this chunk arrives during the wake-up and
            // is buffered, resolving at finish.
            rx.save();
            rx.crash();
            rx.begin();
        }
        rx.push(chunk);
        if i == r2 {
            rx.finish();
        }
        events.extend(rx.poll());
    }
    events
}

fn run_reference(suite: CryptoSuite, chunks: &[Vec<Bytes>]) -> Vec<GatewayEvent> {
    drive(&mut rx_reference(suite), chunks)
}

fn run_sharded(suite: CryptoSuite, shards: usize, chunks: &[Vec<Bytes>]) -> Vec<GatewayEvent> {
    drive(&mut rx_sharded(suite, shards), chunks)
}

/// The SPI an event anchors to (`None` for the fleet-wide `Recovered`).
fn event_spi(ev: &GatewayEvent) -> Option<u32> {
    match ev {
        GatewayEvent::Delivered { spi, .. }
        | GatewayEvent::ReplayDropped { spi, .. }
        | GatewayEvent::AuthFailed { spi }
        | GatewayEvent::UnknownSa { spi }
        | GatewayEvent::Buffered { spi }
        | GatewayEvent::DroppedDown { spi }
        | GatewayEvent::RekeyStarted { spi }
        | GatewayEvent::RekeyCompleted { spi, .. }
        | GatewayEvent::ProbeDue { spi }
        | GatewayEvent::PeerDead { spi }
        | GatewayEvent::FailedClosed { spi, .. } => Some(*spi),
        GatewayEvent::Recovered { .. } => None,
    }
}

/// A stable name for an event's verdict class (global count comparison).
fn verdict_class(ev: &GatewayEvent) -> &'static str {
    match ev {
        GatewayEvent::Delivered { .. } => "delivered",
        GatewayEvent::ReplayDropped { .. } => "replay_dropped",
        GatewayEvent::AuthFailed { .. } => "auth_failed",
        GatewayEvent::UnknownSa { .. } => "unknown_sa",
        GatewayEvent::Buffered { .. } => "buffered",
        GatewayEvent::DroppedDown { .. } => "dropped_down",
        GatewayEvent::Recovered { .. } => "recovered",
        GatewayEvent::RekeyStarted { .. } => "rekey_started",
        GatewayEvent::RekeyCompleted { .. } => "rekey_completed",
        GatewayEvent::ProbeDue { .. } => "probe_due",
        GatewayEvent::PeerDead { .. } => "peer_dead",
        GatewayEvent::FailedClosed { .. } => "failed_closed",
    }
}

fn per_spi_streams(events: &[GatewayEvent]) -> std::collections::BTreeMap<u32, Vec<GatewayEvent>> {
    let mut map: std::collections::BTreeMap<u32, Vec<GatewayEvent>> = Default::default();
    for ev in events {
        if let Some(spi) = event_spi(ev) {
            map.entry(spi).or_default().push(ev.clone());
        }
    }
    map
}

fn verdict_counts(events: &[GatewayEvent]) -> std::collections::BTreeMap<&'static str, usize> {
    let mut map: std::collections::BTreeMap<&'static str, usize> = Default::default();
    for ev in events {
        *map.entry(verdict_class(ev)).or_default() += 1;
    }
    map
}

fn recovered_sas_total(events: &[GatewayEvent]) -> usize {
    events
        .iter()
        .filter_map(|ev| match ev {
            GatewayEvent::Recovered { sas } => Some(*sas),
            _ => None,
        })
        .sum()
}

/// The headline differential: 10k randomized frames, both suites,
/// shards ∈ {1, 2, 4, 8}, vs the plain `Gateway`.
#[test]
fn sharded_event_stream_matches_gateway_for_all_shard_counts() {
    let total = frames_target();
    for suite in SUITES {
        let seed = 0x5A_0001 ^ suite.wire_id() as u64;
        let chunks = generate_chunks(suite, seed, total);
        let reference = run_reference(suite, &chunks);
        // One final verdict per frame: frames buffered mid-wake-up emit
        // `Buffered` at push time *plus* their resolved verdict after
        // `finish_recover`, so exclude the transient `Buffered` marks.
        assert_eq!(
            reference
                .iter()
                .filter(|e| event_spi(e).is_some() && !matches!(e, GatewayEvent::Buffered { .. }))
                .count(),
            total,
            "{suite:?}: one verdict per frame"
        );
        let ref_per_spi = per_spi_streams(&reference);
        let ref_counts = verdict_counts(&reference);
        for shards in [1usize, 2, 4, 8] {
            let sharded = run_sharded(suite, shards, &chunks);
            if shards == 1 {
                assert_eq!(
                    reference, sharded,
                    "{suite:?} seed {seed}: single shard must be bit-identical"
                );
            }
            let got_per_spi = per_spi_streams(&sharded);
            assert_eq!(
                ref_per_spi.keys().collect::<Vec<_>>(),
                got_per_spi.keys().collect::<Vec<_>>(),
                "{suite:?} shards={shards}: SPI coverage differs"
            );
            for (spi, ref_stream) in &ref_per_spi {
                assert_eq!(
                    ref_stream,
                    &got_per_spi[spi],
                    "{suite:?} seed {seed} shards={shards}: per-SPI stream diverged at spi {spi:#x}"
                );
            }
            assert_eq!(
                ref_counts,
                verdict_counts(&sharded),
                "{suite:?} seed {seed} shards={shards}: global verdict counts"
            );
            assert_eq!(
                recovered_sas_total(&reference),
                recovered_sas_total(&sharded),
                "{suite:?} shards={shards}: recovered SA totals"
            );
        }
        // The stream actually exercised every verdict class.
        for class in [
            "delivered",
            "replay_dropped",
            "auth_failed",
            "unknown_sa",
            "buffered",
        ] {
            assert!(
                ref_counts.get(class).copied().unwrap_or(0) > 0,
                "{suite:?}: stream never produced {class}: {ref_counts:?}"
            );
        }
    }
}

/// Malformed-input hardening: every way of truncating or corrupting
/// bytes must come back as exactly one `AuthFailed`/`UnknownSa` event
/// per frame — never a panic, never a missing event — through the full
/// peek_spi → shard routing → `push_wire_batch` path at several shard
/// counts.
#[test]
fn malformed_frames_become_events_never_panics() {
    let suite = CryptoSuite::default();
    let spis = fleet_spis();
    let mut tx = tx_gateway(suite);
    let genuine = tx.protect(spis[0], b"golden frame").unwrap().unwrap().wire;

    // Deterministic table: every truncation of a genuine frame, header
    // field mutations, declared-length lies, runts and empties.
    let mut table: Vec<Bytes> = Vec::new();
    for cut in 0..=genuine.len() {
        table.push(genuine.slice(..cut));
    }
    for i in 0..genuine.len() {
        let mut bad = genuine.to_vec();
        bad[i] ^= 0xFF;
        table.push(Bytes::from(bad));
    }
    // Declared payload length lies (field at offset 8..12).
    for lie in [0u32, 1, 0xFFFF_FFFF, genuine.len() as u32] {
        let mut bad = genuine.to_vec();
        bad[8..12].copy_from_slice(&lie.to_be_bytes());
        table.push(Bytes::from(bad));
    }
    table.push(Bytes::new());
    table.push(Bytes::copy_from_slice(&[0xFF]));
    // Random garbage, seeded.
    let mut gen = DetRng::new(0x5A_0002);
    for _ in 0..500 {
        let len = gen.below(80) as usize;
        let mut junk = vec![0u8; len];
        gen.fill_bytes(&mut junk);
        table.push(Bytes::from(junk));
    }

    for shards in [1usize, 2, 4, 8] {
        let mut rx = rx_sharded(suite, shards);
        rx.push_wire_batch(&table).unwrap();
        let events = rx.poll_events();
        assert_eq!(
            events.len(),
            table.len(),
            "shards={shards}: exactly one event per malformed frame"
        );
        for (i, ev) in events.iter().enumerate() {
            assert!(
                matches!(
                    ev,
                    GatewayEvent::AuthFailed { .. }
                        | GatewayEvent::UnknownSa { .. }
                        | GatewayEvent::Delivered { .. }
                ),
                "shards={shards} event {i}: unexpected {ev:?}"
            );
        }
        // Only the one uncorrupted prefix (the full-length "truncation")
        // may deliver.
        let delivered = events
            .iter()
            .filter(|e| matches!(e, GatewayEvent::Delivered { .. }))
            .count();
        assert_eq!(delivered, 1, "shards={shards}: the intact copy only");
        // And the gateway is still healthy afterwards.
        let fresh = tx.protect(spis[1], b"still alive").unwrap().unwrap();
        rx.push_wire(&fresh.wire).unwrap();
        assert!(matches!(
            rx.poll_events()[..],
            [GatewayEvent::Delivered { .. }]
        ));
    }
}

/// Seal a frame under one suite, push it at a fleet negotiated under
/// the other: must surface as `AuthFailed`, not a parse confusion, on
/// the sharded path too (the suites disagree about IV/ICV layout).
#[test]
fn cross_suite_frames_fail_authentication_through_shard_routing() {
    let spis = fleet_spis();
    let mut tx_legacy = tx_gateway(CryptoSuite::HmacSha256WithKeystream);
    let mut rx_aead = rx_sharded(CryptoSuite::ChaCha20Poly1305, 4);
    let frames: Vec<Bytes> = spis
        .iter()
        .take(16)
        .map(|&spi| {
            tx_legacy
                .protect(spi, b"wrong suite")
                .unwrap()
                .unwrap()
                .wire
        })
        .collect();
    rx_aead.push_wire_batch(&frames).unwrap();
    let events = rx_aead.poll_events();
    assert_eq!(events.len(), 16);
    assert!(events
        .iter()
        .all(|e| matches!(e, GatewayEvent::AuthFailed { .. })));
}

// ----------------------------------------------------------------------
// Worker-pool lifecycle
// ----------------------------------------------------------------------

/// Dropping a pooled fleet with whole batches still queued on the
/// workers must drain and join cleanly — no hang (the test would time
/// out), no panic, no abort.
#[test]
fn dropping_fleet_with_queued_batches_shuts_down_cleanly() {
    let suite = CryptoSuite::default();
    let mut tx = tx_gateway(suite);
    let spis = fleet_spis();
    let frames: Vec<Bytes> = (0..6)
        .flat_map(|_| {
            spis.iter()
                .map(|&spi| tx.protect(spi, b"in flight").unwrap().unwrap().wire)
                .collect::<Vec<_>>()
        })
        .collect();
    for shards in [1usize, 4, 8] {
        let mut rx = rx_sharded(suite, shards);
        // Pipeline several submissions and drop without draining.
        for chunk in frames.chunks(96) {
            rx.submit_batch(chunk);
        }
        drop(rx);
    }
}

/// A store that FETCHes normally until armed, then panics — injected
/// through the public `GatewayBuilder::with_stores` factory so the
/// panic fires *inside a shard worker's job* during `begin_recover`.
struct PanicOnLoad {
    inner: MemStable,
    armed: std::sync::Arc<std::sync::atomic::AtomicBool>,
}

impl reset_stable::StableStore for PanicOnLoad {
    fn store(
        &mut self,
        slot: reset_stable::SlotId,
        value: u64,
    ) -> Result<(), reset_stable::StableError> {
        self.inner.store(slot, value)
    }
    fn load(&self, slot: reset_stable::SlotId) -> Result<Option<u64>, reset_stable::StableError> {
        if self.armed.load(std::sync::atomic::Ordering::Relaxed) {
            panic!("injected store panic on FETCH of {slot}");
        }
        self.inner.load(slot)
    }
    fn erase(&mut self, slot: reset_stable::SlotId) -> Result<(), reset_stable::StableError> {
        self.inner.erase(slot)
    }
}

/// A panicking shard job must come back to the caller as
/// `IpsecError::WorkerPanicked` — an error, not a hang and not a
/// caller-side abort — and the pool must still shut down cleanly
/// afterwards.
#[test]
fn panicking_shard_job_surfaces_as_error_not_hang() {
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::Arc;

    let armed = Arc::new(AtomicBool::new(false));
    let factory_armed = Arc::clone(&armed);
    let mut rx = reset_ipsec::GatewayBuilder::with_stores(move |_, _| PanicOnLoad {
        inner: MemStable::new(),
        armed: Arc::clone(&factory_armed),
    })
    .shards(4)
    .save_interval(10)
    .build_sharded();
    let suite = CryptoSuite::default();
    let mut tx = tx_gateway(suite);
    for spi in fleet_spis() {
        rx.install_inbound(sa_for(suite, spi));
    }
    let frames: Vec<Bytes> = fleet_spis()
        .iter()
        .map(|&spi| tx.protect(spi, b"healthy traffic").unwrap().unwrap().wire)
        .collect();
    rx.push_wire_batch(&frames).unwrap();
    assert_eq!(rx.poll_events().len(), frames.len());

    // Arm the trap: the next FETCH — executed by the shard workers
    // inside begin_recover jobs — panics.
    armed.store(true, Ordering::Relaxed);
    rx.reset();
    let err = rx.begin_recover().expect_err("armed FETCH must fail");
    match &err {
        reset_ipsec::IpsecError::WorkerPanicked { message, .. } => {
            assert!(
                message.contains("injected store panic"),
                "panic message lost: {message}"
            );
        }
        other => panic!("expected WorkerPanicked, got {other:?}"),
    }
    // The workers caught the panic and keep serving; disarm and the
    // fleet recovers normally, then drops cleanly.
    armed.store(false, Ordering::Relaxed);
    rx.begin_recover().unwrap();
    rx.finish_recover().unwrap();
    assert!(matches!(
        rx.poll_events()[..],
        [GatewayEvent::Recovered { .. }]
    ));
}

// ----------------------------------------------------------------------
// Multi-core scaling floor (env-gated: the CI scaling lane)
// ----------------------------------------------------------------------

/// Measured wall-clock for draining `batches` pre-sealed 4096-frame
/// NIC-queue bursts through a 256-SA fleet at `shards` shards.
fn drain_elapsed(shards: usize, batches: &[Vec<Bytes>]) -> std::time::Duration {
    let mut rx = reset_ipsec::GatewayBuilder::in_memory_sharded(shards)
        .save_interval(64)
        .window(64)
        .build_sharded();
    for spi in 1..=256u32 {
        let keys = SaKeys::derive(b"scaling-master", &spi.to_be_bytes());
        rx.install_inbound(SecurityAssociation::new(spi, keys).with_suite(CryptoSuite::default()));
    }
    // Warm up on the first two batches (pool queues, caches, arenas).
    for batch in &batches[..2] {
        rx.push_wire_batch(batch).unwrap();
        rx.poll_events();
    }
    let t = std::time::Instant::now();
    for batch in &batches[2..] {
        rx.push_wire_batch(batch).unwrap();
        rx.poll_events();
    }
    t.elapsed()
}

/// The assertion PR 4's one-core container could never run: on a host
/// with ≥4 cores, 4 worker shards must deliver ≥1.5× the aggregate
/// receive throughput of 1 shard on a 256-SA fleet. Gated on
/// `IT_SHARD_SCALING=1` — the CI scaling lane sets it after checking
/// `nproc`, so single-core runners skip with a notice instead of
/// recording a physically impossible failure.
#[test]
fn shard_scaling_meets_multicore_floor() {
    if std::env::var("IT_SHARD_SCALING").is_err() {
        eprintln!(
            "shard_scaling_meets_multicore_floor: SKIPPED (set IT_SHARD_SCALING=1 on a \
             >=4-core host to run the 4-shard >=1.5x throughput assertion)"
        );
        return;
    }
    let cores = std::thread::available_parallelism().map_or(1, |p| p.get());
    assert!(
        cores >= 4,
        "IT_SHARD_SCALING set on a {cores}-core host: the 4-shard speedup floor needs >=4 cores"
    );
    // Pre-seal everything so only the receive path is on the clock:
    // 26 batches x 4096 frames, 16 per SA per batch, seqs advancing so
    // every batch delivers fresh.
    let mut tx: Gateway<MemStable> = GatewayBuilder::in_memory().save_interval(64).build();
    for spi in 1..=256u32 {
        let keys = SaKeys::derive(b"scaling-master", &spi.to_be_bytes());
        tx.install_outbound(SecurityAssociation::new(spi, keys).with_suite(CryptoSuite::default()));
    }
    let payload = [0x5Au8; 64];
    let batches: Vec<Vec<Bytes>> = (0..26)
        .map(|_| {
            (0..4096)
                .map(|i| {
                    let spi = 1 + (i as u32 % 256);
                    tx.protect(spi, &payload).unwrap().expect("tx up").wire
                })
                .collect()
        })
        .collect();
    let one = drain_elapsed(1, &batches);
    let four = drain_elapsed(4, &batches);
    let speedup = one.as_nanos() as f64 / four.as_nanos().max(1) as f64;
    eprintln!(
        "shard scaling on {cores} cores: 1 shard {one:?}, 4 shards {four:?} => {speedup:.2}x"
    );
    assert!(
        speedup >= 1.5,
        "4 shards on {cores} cores delivered only {speedup:.2}x over 1 shard \
         (floor: 1.5x); 1 shard {one:?}, 4 shards {four:?}"
    );
}

//! Integration: rekeying interacts correctly with SAVE/FETCH.
//!
//! The paper separates two lifecycle events that legacy practice
//! conflated: a *reset* (only counters lost — rescue with SAVE/FETCH)
//! and a *rekey* (keys exhausted or grace expired — renegotiate). These
//! tests drive both through the full datapath and check they compose.

use reset_ipsec::{
    rekey, rekey_due, CryptoSuite, Inbound, Outbound, RekeyRequest, SaKeys, SaLifetime,
    SecurityAssociation,
};
use reset_stable::{MemStable, SlotId, StableStore};

fn fresh_pair(sa: &SecurityAssociation, k: u64) -> (Outbound<MemStable>, Inbound<MemStable>) {
    (
        Outbound::new(sa.clone(), MemStable::new(), k),
        Inbound::new(sa.clone(), MemStable::new(), k, 64),
    )
}

#[test]
fn rekey_at_lifetime_then_savefetch_reset_on_new_sa() {
    // Phase 1: run the first SA to its packet lifetime.
    let lifetime = SaLifetime {
        max_packets: 40,
        max_bytes: u64::MAX,
    };
    let keys = SaKeys::derive(b"phase1", b"gen0");
    let sa0 = SecurityAssociation::new(0x100, keys).with_lifetime(lifetime);
    let (mut tx0, mut rx0) = fresh_pair(&sa0, 10);
    let mut recorded_gen0 = Vec::new();
    for i in 0..40u32 {
        let w = tx0.protect(format!("g0-{i}").as_bytes()).unwrap().unwrap();
        recorded_gen0.push(w.clone());
        assert!(rx0.process(&w).unwrap().is_delivered());
    }
    assert!(tx0.protect(b"over").is_err(), "lifetime enforced");
    assert!(rekey_due(tx0.sa(), &lifetime));

    // Phase 2: quick-mode rekey to generation 1.
    let out = rekey(&RekeyRequest {
        skeyid: b"phase1-skeyid".to_vec(),
        nonce_i: [3; 16],
        nonce_r: [4; 16],
        new_spi: 0x101,
        suite: CryptoSuite::default(),
    });
    let (mut tx1, mut rx1) = fresh_pair(&out.sa, 10);

    // Generation-0 recordings are dead against generation 1 (different
    // SPI => unknown SA; respliced SPI => ICV failure).
    for w in &recorded_gen0 {
        assert!(rx1.process(w).is_err());
    }

    // Phase 3: traffic on gen 1, then a reset — SAVE/FETCH rescues the
    // *new* SA without another rekey.
    let mut recorded_gen1 = Vec::new();
    for i in 0..30u32 {
        let w = tx1.protect(format!("g1-{i}").as_bytes()).unwrap().unwrap();
        recorded_gen1.push(w.clone());
        assert!(rx1.process(&w).unwrap().is_delivered());
    }
    rx1.save_completed().unwrap();
    rx1.reset();
    rx1.wake_up().unwrap();
    for w in &recorded_gen1 {
        assert!(!rx1.process(w).unwrap().is_delivered(), "gen1 replay");
    }
    // Fresh gen-1 traffic converges within 2K.
    let mut sacrificed = 0;
    loop {
        let w = tx1.protect(b"post-reset").unwrap().unwrap();
        if rx1.process(&w).unwrap().is_delivered() {
            break;
        }
        sacrificed += 1;
        assert!(sacrificed <= 20);
    }
}

#[test]
fn rekey_reusing_spi_resets_counters_and_slots() {
    // Rekeying may reuse the SPI (new keys). The persistent slot then
    // belongs to the *old* SA's counters; a correct deployment erases it
    // at rekey so a later FETCH cannot resurrect stale state into the
    // new SA's number space.
    let keys0 = SaKeys::derive(b"phase1", b"old");
    let sa0 = SecurityAssociation::new(0x200, keys0);
    let mut store = MemStable::new();
    {
        let mut tx0 = Outbound::new(sa0, MemStable::new(), 5);
        for _ in 0..20 {
            tx0.protect(b"old").unwrap();
        }
        // Simulate the old counters having been persisted.
        store.store(SlotId::sender(0x200), 20).unwrap();
    }
    // Rekey with SPI reuse; tear down the old slot (SA teardown duty).
    store.erase(SlotId::sender(0x200)).unwrap();
    let out = rekey(&RekeyRequest {
        skeyid: b"phase1-skeyid".to_vec(),
        nonce_i: [7; 16],
        nonce_r: [8; 16],
        new_spi: 0x200,
        suite: CryptoSuite::default(),
    });
    let mut tx1 = Outbound::new(out.sa, store, 5);
    // A reset + wake on the brand-new SA must leap from zero (2K = 10),
    // not from the stale 20 + 10 = 30.
    tx1.reset();
    let resumed = tx1.wake_up().unwrap();
    assert_eq!(resumed.value(), 10, "stale slot would have given 30");
}

#[test]
fn rekey_to_aead_suite_delivers_in_order_and_rejects_stale_suite_frames() {
    // Generation 0 runs the legacy HMAC+keystream suite.
    let keys = SaKeys::derive(b"phase1", b"mig0");
    let sa0 =
        SecurityAssociation::new(0x400, keys).with_suite(CryptoSuite::HmacSha256WithKeystream);
    assert_eq!(sa0.suite(), CryptoSuite::HmacSha256WithKeystream);
    let (mut tx0, mut rx0) = fresh_pair(&sa0, 10);
    let mut recorded_gen0 = Vec::new();
    for i in 0..25u32 {
        let w = tx0.protect(format!("g0-{i}").as_bytes()).unwrap().unwrap();
        recorded_gen0.push(w.clone());
        assert!(rx0.process(&w).unwrap().is_delivered());
    }

    // Quick-mode rekey migrates the SA (same SPI) to ChaCha20-Poly1305.
    let out = rekey(&RekeyRequest {
        skeyid: b"phase1-skeyid".to_vec(),
        nonce_i: [9; 16],
        nonce_r: [10; 16],
        new_spi: 0x400,
        suite: CryptoSuite::ChaCha20Poly1305,
    });
    assert_eq!(out.sa.suite(), CryptoSuite::ChaCha20Poly1305);
    let (mut tx1, mut rx1) = fresh_pair(&out.sa, 10);

    // Every stale-suite frame fails authentication against the new SA —
    // wrong transform *and* wrong keys, counted as auth failures.
    for w in &recorded_gen0 {
        assert!(rx1.process(w).is_err(), "stale-suite frame accepted");
    }
    assert_eq!(rx1.auth_failures(), recorded_gen0.len() as u64);

    // Fresh AEAD traffic delivers strictly in order from sequence 1.
    let mut recorded_gen1 = Vec::new();
    for i in 0..30u64 {
        let w = tx1.protect(format!("g1-{i}").as_bytes()).unwrap().unwrap();
        recorded_gen1.push(w.clone());
        match rx1.process(&w).unwrap() {
            reset_ipsec::RxResult::Delivered { payload, seq } => {
                assert_eq!(payload, format!("g1-{i}").as_bytes());
                assert_eq!(seq.value(), i + 1, "in-order delivery after migration");
            }
            other => panic!("g1-{i}: {other:?}"),
        }
    }

    // SAVE/FETCH recovery still works on the migrated SA: reset, wake,
    // replays bounce, fresh traffic converges within 2K.
    rx1.save_completed().unwrap();
    rx1.reset();
    rx1.wake_up().unwrap();
    for w in &recorded_gen1 {
        assert!(!rx1.process(w).unwrap().is_delivered(), "gen1 replay");
    }
    let mut sacrificed = 0;
    loop {
        let w = tx1.protect(b"post-reset").unwrap().unwrap();
        if rx1.process(&w).unwrap().is_delivered() {
            break;
        }
        sacrificed += 1;
        assert!(sacrificed <= 20, "2K bound");
    }
}

#[test]
fn rekey_costs_stay_far_below_main_mode() {
    use reset_ipsec::CostModel;
    let quick = rekey(&RekeyRequest {
        skeyid: b"skeyid".to_vec(),
        nonce_i: [1; 16],
        nonce_r: [2; 16],
        new_spi: 9,
        suite: CryptoSuite::default(),
    })
    .cost;
    // From the t5 ledger: main mode = 6 msgs / 3 RTT / 4 modexps.
    assert!(quick.messages < 6);
    assert_eq!(quick.modexps, 0);
    let m = CostModel::paper_era();
    // Quick mode ≈ 2 RTTs (80 ms paper-era); main mode ≥ 160 ms.
    assert!(quick.estimate_ns(&m) < 100_000_000);
}

#[test]
fn chained_rekeys_always_separate_key_material() {
    let mut seen = std::collections::HashSet::new();
    for gen in 0u8..10 {
        let out = rekey(&RekeyRequest {
            skeyid: b"phase1-skeyid".to_vec(),
            nonce_i: [gen; 16],
            nonce_r: [gen ^ 0xFF; 16],
            new_spi: 0x300 + gen as u32,
            suite: CryptoSuite::default(),
        });
        assert!(
            seen.insert(out.sa.keys().auth.clone()),
            "generation {gen} repeated auth key"
        );
        assert!(
            seen.insert(out.sa.keys().enc.clone()),
            "generation {gen} repeated enc key"
        );
    }
}

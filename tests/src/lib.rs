//! Shared helpers for the cross-crate integration tests.
//!
//! These tests span the whole stack — protocol core, IPsec datapath,
//! channel faults, APN semantics, the experiment harness — so common
//! builders live here rather than being copy-pasted per test file.

use reset_ipsec::{DpdConfig, IpsecPeer, SaKeys, SecurityAssociation};
use reset_stable::MemStable;

/// Builds a bidirectional peer pair (`A ⇄ B`) with fresh in-memory
/// persistent stores, save interval `k` and window size `w`.
pub fn peer_pair(k: u64, w: u64) -> (IpsecPeer<MemStable>, IpsecPeer<MemStable>) {
    let keys_ab = SaKeys::derive(b"it-master", b"a->b");
    let keys_ba = SaKeys::derive(b"it-master", b"b->a");
    let a = IpsecPeer::new(
        "A",
        SecurityAssociation::new(0xA2B, keys_ab.clone()),
        SecurityAssociation::new(0xB2A, keys_ba.clone()),
        MemStable::new(),
        MemStable::new(),
        k,
        w,
        DpdConfig::default(),
    );
    let b = IpsecPeer::new(
        "B",
        SecurityAssociation::new(0xB2A, keys_ba),
        SecurityAssociation::new(0xA2B, keys_ab),
        MemStable::new(),
        MemStable::new(),
        k,
        w,
        DpdConfig::default(),
    );
    (a, b)
}

/// Drives `n` packets A→B, asserting delivery, and returns the recorded
/// wire bytes (what an adversary would have captured).
pub fn drive_traffic(
    a: &mut IpsecPeer<MemStable>,
    b: &mut IpsecPeer<MemStable>,
    n: u32,
) -> Vec<bytes::Bytes> {
    let mut recorded = Vec::new();
    for i in 0..n {
        let wire = a
            .send_data(format!("pkt-{i}").as_bytes())
            .expect("datapath")
            .expect("endpoint up");
        recorded.push(wire.clone());
        let ev = b.handle_wire(&wire, i as u64).expect("authenticated");
        assert!(
            matches!(ev, reset_ipsec::PeerEvent::Data(_)),
            "packet {i}: {ev:?}"
        );
    }
    recorded
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn helpers_build_working_pair() {
        let (mut a, mut b) = peer_pair(10, 64);
        let recorded = drive_traffic(&mut a, &mut b, 5);
        assert_eq!(recorded.len(), 5);
    }
}

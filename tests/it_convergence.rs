//! Integration: the §5 convergence theorem under the full timed stack.
//!
//! Exercises the scenario runner (simulator + channel + adversary +
//! latency-modelled stores + monitor) across fault schedules and
//! parameter sweeps that unit tests don't reach.

use reset_channel::LinkConfig;
use reset_harness::{run_scenario, AdversaryPlan, Protocol, ScenarioConfig, Workload};
use reset_sim::{SimDuration, SimTime};
use reset_stable::SaveLatencyModel;

/// Sweep seeds × reset times: the theorem must hold in every single run.
#[test]
fn condition_i_and_ii_over_seed_sweep() {
    for seed in 0..12u64 {
        let cfg = ScenarioConfig {
            seed,
            sender_resets: vec![SimTime::from_micros(2_500 + 113 * seed)],
            receiver_resets: vec![SimTime::from_micros(6_500 + 97 * seed)],
            adversary: AdversaryPlan::ReplayAllOnReceiverRestart,
            downtime: SimDuration::from_micros(150),
            ..ScenarioConfig::default()
        };
        let out = run_scenario(cfg);
        assert!(
            out.monitor.clean(),
            "seed {seed}: {:?}",
            out.monitor.violations
        );
        assert_eq!(out.monitor.replays_accepted, 0, "seed {seed}");
        assert!(
            out.monitor.fresh_discarded <= 2 * 25,
            "seed {seed}: {} fresh lost",
            out.monitor.fresh_discarded
        );
        assert!(
            out.monitor.seqs_lost_to_leaps <= 2 * 25,
            "seed {seed}: {} seqs lost",
            out.monitor.seqs_lost_to_leaps
        );
    }
}

/// The bounds hold regardless of where in the save cycle the reset lands
/// (fine-grained reset-time sweep, the timed analogue of fig1/fig2).
#[test]
fn bounds_hold_across_reset_phase_sweep() {
    for offset_us in (0..100).step_by(7) {
        let cfg = ScenarioConfig {
            seed: 1,
            receiver_resets: vec![SimTime::from_micros(4_000 + offset_us)],
            adversary: AdversaryPlan::ReplayAllOnReceiverRestart,
            ..ScenarioConfig::default()
        };
        let out = run_scenario(cfg);
        assert!(out.monitor.clean(), "offset {offset_us}us");
        assert_eq!(out.monitor.replays_accepted, 0, "offset {offset_us}us");
        assert!(out.monitor.fresh_discarded <= 50, "offset {offset_us}us");
    }
}

/// Bursty and Poisson workloads: the message-count save trigger keeps the
/// bounds regardless of traffic shape.
#[test]
fn bounds_hold_under_irregular_workloads() {
    let workloads = vec![
        Workload::bursty(
            SimDuration::from_micros(4),
            100,
            SimDuration::from_millis(1),
        ),
        Workload::poisson(SimDuration::from_micros(10)),
    ];
    for (i, workload) in workloads.into_iter().enumerate() {
        let cfg = ScenarioConfig {
            seed: 5 + i as u64,
            workload,
            duration: SimDuration::from_millis(30),
            sender_resets: vec![SimTime::from_millis(9)],
            receiver_resets: vec![SimTime::from_millis(18)],
            adversary: AdversaryPlan::ReplayAllOnReceiverRestart,
            ..ScenarioConfig::default()
        };
        let out = run_scenario(cfg);
        assert!(
            out.monitor.clean(),
            "workload {i}: {:?}",
            out.monitor.violations
        );
        assert_eq!(out.monitor.replays_accepted, 0, "workload {i}");
        assert!(out.monitor.fresh_discarded <= 2 * 25, "workload {i}");
    }
}

/// A slow device (save latency near the K·t_msg premise boundary) still
/// converges when K is calibrated to it.
#[test]
fn slow_device_with_calibrated_k_converges() {
    // Device: 400 µs per SAVE; messages every 4 µs ⇒ K must be ≥ 100.
    let k = 100u64;
    let cfg = ScenarioConfig {
        seed: 3,
        kp: k,
        kq: k,
        save_latency: SaveLatencyModel::fixed_ns(400_000),
        duration: SimDuration::from_millis(20),
        sender_resets: vec![SimTime::from_millis(7)],
        receiver_resets: vec![SimTime::from_millis(14)],
        adversary: AdversaryPlan::ReplayAllOnReceiverRestart,
        ..ScenarioConfig::default()
    };
    let out = run_scenario(cfg);
    assert!(out.monitor.clean(), "{:?}", out.monitor.violations);
    assert!(out.monitor.fresh_discarded <= 2 * k);
    assert!(out.monitor.seqs_lost_to_leaps <= 2 * k);
}

/// Jittered save latency (the paper notes SAVE duration varies with CPU
/// load) never breaks the bound as long as the worst case fits in K.
#[test]
fn jittered_save_latency_within_k_is_safe() {
    let cfg = ScenarioConfig {
        seed: 11,
        kp: 50,
        kq: 50,
        // Worst case 150 µs ⇒ ≤ 38 messages per SAVE < K = 50.
        save_latency: SaveLatencyModel {
            base_ns: 50_000,
            jitter_ns: 100_000,
        },
        sender_resets: vec![SimTime::from_millis(3), SimTime::from_millis(7)],
        adversary: AdversaryPlan::PeriodicRandom {
            every: SimDuration::from_micros(300),
            count: 2,
        },
        ..ScenarioConfig::default()
    };
    let out = run_scenario(cfg);
    assert!(out.monitor.clean(), "{:?}", out.monitor.violations);
    assert_eq!(
        out.monitor.fresh_discarded, 0,
        "in-order channel, sender resets only"
    );
}

/// The baseline violates in the very same runs where SAVE/FETCH holds —
/// the theorem is about the protocol, not an artifact of the harness.
#[test]
fn baseline_violates_where_savefetch_does_not() {
    for seed in 0..4u64 {
        let mk = |protocol| ScenarioConfig {
            seed,
            protocol,
            receiver_resets: vec![SimTime::from_millis(4)],
            adversary: AdversaryPlan::ReplayAllOnReceiverRestart,
            ..ScenarioConfig::default()
        };
        let base = run_scenario(mk(Protocol::Baseline));
        let sf = run_scenario(mk(Protocol::SaveFetch));
        assert!(base.monitor.replays_accepted > 100, "seed {seed}");
        assert!(!base.monitor.clean(), "seed {seed}");
        assert_eq!(sf.monitor.replays_accepted, 0, "seed {seed}");
        assert!(sf.monitor.clean(), "seed {seed}");
    }
}

/// Loss + duplication + resets + replay noise all at once, long run.
#[test]
fn kitchen_sink_long_run() {
    let cfg = ScenarioConfig {
        seed: 99,
        duration: SimDuration::from_millis(50),
        link: LinkConfig {
            drop_prob: 0.08,
            duplicate_prob: 0.08,
            ..LinkConfig::perfect()
        },
        sender_resets: vec![
            SimTime::from_millis(8),
            SimTime::from_millis(22),
            SimTime::from_millis(37),
        ],
        receiver_resets: vec![
            SimTime::from_millis(15),
            SimTime::from_millis(29),
            SimTime::from_millis(44),
        ],
        downtime: SimDuration::from_micros(400),
        adversary: AdversaryPlan::PeriodicRandom {
            every: SimDuration::from_micros(250),
            count: 2,
        },
        ..ScenarioConfig::default()
    };
    let out = run_scenario(cfg);
    assert!(out.monitor.clean(), "{:?}", out.monitor.violations);
    assert_eq!(out.monitor.replays_accepted, 0);
    assert!(
        out.monitor.sent > 8_000,
        "long run really ran: {}",
        out.monitor.sent
    );
    assert!(out.monitor.fresh_delivered > 6_000);
    assert_eq!(out.sender_resets, 3);
    assert_eq!(out.receiver_resets, 3);
}

//! Integration: the full ESP pipeline — IKE establishment through
//! datapath through reset recovery — with real crypto end to end.

use reset_crypto::{oakley_group2, toy_group};
use reset_ipsec::{
    run_handshake, CryptoSuite, Inbound, Outbound, RxResult, SaKeys, Sadb, SecurityAssociation,
};
use reset_stable::{Durability, FileStable, MemStable};

#[test]
fn ike_established_keys_drive_the_datapath() {
    // Keys negotiated by the handshake must actually interoperate on the
    // wire (initiator seals, responder opens).
    let pair = run_handshake(
        toy_group(),
        b"psk",
        b"init-secret",
        b"resp-secret",
        0x10,
        0x20,
    )
    .expect("handshake");
    let mut tx = Outbound::new(pair.sa_i2r.clone(), MemStable::new(), 25);
    let mut rx = Inbound::new(pair.sa_i2r, MemStable::new(), 25, 64);
    for i in 0..20u32 {
        let w = tx
            .protect(format!("ike-keyed {i}").as_bytes())
            .unwrap()
            .unwrap();
        match rx.process(&w).unwrap() {
            RxResult::Delivered { payload, .. } => {
                assert_eq!(payload, format!("ike-keyed {i}").as_bytes());
            }
            other => panic!("{other:?}"),
        }
    }
}

#[test]
fn oakley_group2_handshake_also_works() {
    // 1024-bit group: slower but must function identically.
    let pair = run_handshake(
        oakley_group2(),
        b"psk",
        b"initiator-secret-material",
        b"responder-secret-material",
        1,
        2,
    )
    .expect("group 2 handshake");
    assert_eq!(pair.cost.modexps, 4);
    assert_ne!(pair.sa_i2r.keys(), pair.sa_r2i.keys());
}

#[test]
fn auth_only_suite_end_to_end_with_resets() {
    let keys = SaKeys::derive(b"ikm", b"auth-only");
    let sa = SecurityAssociation::new(5, keys).with_suite(CryptoSuite::HmacSha256AuthOnly);
    let mut tx = Outbound::new(sa.clone(), MemStable::new(), 10);
    let mut rx = Inbound::new(sa, MemStable::new(), 10, 64);
    for _ in 0..30 {
        let w = tx.protect(b"cleartext but authentic").unwrap().unwrap();
        rx.process(&w).unwrap();
    }
    rx.save_completed().unwrap();
    rx.reset();
    rx.wake_up().unwrap();
    // Convergence: replay rejected, traffic resumes within 2K.
    let mut sacrificed = 0;
    loop {
        let w = tx.protect(b"resume").unwrap().unwrap();
        if rx.process(&w).unwrap().is_delivered() {
            break;
        }
        sacrificed += 1;
        assert!(sacrificed <= 20);
    }
}

#[test]
fn file_backed_stores_survive_process_style_reset() {
    // The "reset" here drops the endpoint objects entirely and rebuilds
    // them from the same directory — the closest a test can get to a
    // process crash + restart.
    let dir = std::env::temp_dir().join(format!(
        "it-esp-file-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    let keys = SaKeys::derive(b"ikm", b"file-backed");
    let sa = SecurityAssociation::new(0xF11E, keys);

    let recorded: Vec<_> = {
        let store_tx = FileStable::open(dir.join("tx"), Durability::ProcessCrash).unwrap();
        let store_rx = FileStable::open(dir.join("rx"), Durability::ProcessCrash).unwrap();
        let mut tx = Outbound::new(sa.clone(), store_tx, 10);
        let mut rx = Inbound::new(sa.clone(), store_rx, 10, 64);
        let mut rec = Vec::new();
        for i in 0..35u32 {
            let w = tx
                .protect(format!("persisted {i}").as_bytes())
                .unwrap()
                .unwrap();
            rec.push(w.clone());
            assert!(rx.process(&w).unwrap().is_delivered());
        }
        tx.save_completed().unwrap();
        rx.save_completed().unwrap();
        rec
        // tx and rx dropped here: the "crash".
    };

    // Restart: fresh endpoints over the same directories.
    let store_tx = FileStable::open(dir.join("tx"), Durability::ProcessCrash).unwrap();
    let store_rx = FileStable::open(dir.join("rx"), Durability::ProcessCrash).unwrap();
    let mut tx = Outbound::new(sa.clone(), store_tx, 10);
    let mut rx = Inbound::new(sa, store_rx, 10, 64);
    // Both consider themselves freshly constructed; put them through the
    // reset/wake cycle to adopt the persisted counters.
    tx.reset();
    tx.wake_up().unwrap();
    rx.reset();
    rx.wake_up().unwrap();

    // All pre-crash traffic is replay now.
    for w in &recorded {
        assert!(
            !rx.process(w).unwrap().is_delivered(),
            "replay across restart"
        );
    }
    // Fresh traffic converges within 2K + 2K.
    let mut tries = 0;
    loop {
        let w = tx.protect(b"post-restart").unwrap().unwrap();
        if rx.process(&w).unwrap().is_delivered() {
            break;
        }
        tries += 1;
        assert!(tries <= 40, "never converged");
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn sadb_mixed_suites_and_teardown() {
    let mut db: Sadb<MemStable> = Sadb::new();
    for spi in 1..=6u32 {
        let keys = SaKeys::derive(b"ikm", &spi.to_be_bytes());
        let mut sa = SecurityAssociation::new(spi, keys);
        if spi % 2 == 0 {
            sa = sa.with_suite(CryptoSuite::HmacSha256AuthOnly);
        }
        db.install_outbound(sa.clone(), MemStable::new(), 10);
        db.install_inbound(sa, MemStable::new(), 10, 64);
    }
    for spi in 1..=6u32 {
        let w = db.protect(spi, b"mixed").unwrap().unwrap();
        assert!(db.process(&w).unwrap().is_delivered(), "spi {spi}");
    }
    // Tear down half; they must stop working, others unaffected.
    for spi in [2u32, 4, 6] {
        let removed = db.remove(spi).expect("installed");
        assert!(removed.outbound.is_some() && removed.inbound.is_some());
    }
    assert!(db.protect(2, b"x").is_err());
    assert!(db.protect(1, b"x").unwrap().is_some());
}

#[test]
fn lifetime_expiry_blocks_protect() {
    use reset_ipsec::{IpsecError, SaLifetime};
    let keys = SaKeys::derive(b"ikm", b"short-life");
    let sa = SecurityAssociation::new(9, keys).with_lifetime(SaLifetime {
        max_packets: 5,
        max_bytes: u64::MAX,
    });
    let mut tx = Outbound::new(sa, MemStable::new(), 10);
    for _ in 0..5 {
        assert!(tx.protect(b"ok").unwrap().is_some());
    }
    assert!(matches!(
        tx.protect(b"over"),
        Err(IpsecError::LifetimeExpired { spi: 9 })
    ));
}

#[test]
fn esn_long_stream_with_mid_stream_resets() {
    // A long stream (tens of thousands of packets) with two receiver
    // resets; ESN reconstruction and the leap must stay aligned.
    let keys = SaKeys::derive(b"ikm", b"esn-long");
    let sa = SecurityAssociation::new(0xE54, keys);
    let k = 50;
    let mut tx = Outbound::new(sa.clone(), MemStable::new(), k);
    let mut rx = Inbound::new(sa, MemStable::new(), k, 128);
    let mut delivered = 0u64;
    for i in 0..30_000u64 {
        if i == 10_000 || i == 20_000 {
            rx.save_completed().unwrap();
            rx.reset();
            rx.wake_up().unwrap();
        }
        let w = tx.protect(b"esn").unwrap().unwrap();
        if rx.process(&w).unwrap().is_delivered() {
            delivered += 1;
        }
        if i % 100 == 0 {
            tx.save_completed().unwrap();
            rx.save_completed().unwrap();
        }
    }
    // Two resets cost at most 2 × 2K sacrificed packets.
    assert!(delivered >= 30_000 - 2 * (2 * k), "delivered {delivered}");
}

//! Real-process crash recovery: kill the process mid-campaign, reopen
//! the stores, and check that every acknowledged SAVE survived.
//!
//! The unit tests in `reset-stable` simulate crashes by dropping and
//! reopening handles inside one process. This test goes one step
//! further: it re-spawns the test binary as a **child process** that
//! populates a [`FileStable`] and a [`WalStable`] in a shared temp
//! directory and then dies via [`std::process::abort`] — no `Drop`
//! glue, no graceful shutdown, exactly the paper's "reset". The parent
//! then reopens both stores from the on-disk bytes alone and asserts
//! the last durable generation of every slot.
//!
//! A second scenario truncates the WAL mid-record (a torn tail, as left
//! by a power cut during an append) before reopening, asserting that
//! replay keeps every complete record and drops only the torn one.

use std::path::{Path, PathBuf};
use std::process::Command;
use std::{env, fs};

use reset_stable::{Durability, FileStable, SlotId, StableStore, WalStable, WAL_RECORD_LEN};

const CHILD_ENV: &str = "CRASH_RECOVERY_CHILD";
const DIR_ENV: &str = "CRASH_RECOVERY_DIR";

const SPIS: u32 = 8;
const ROUNDS: u64 = 5;

fn wal_path(dir: &Path) -> PathBuf {
    dir.join("fleet.wal")
}

fn file_dir(dir: &Path) -> PathBuf {
    dir.join("slots")
}

/// The work the child does before dying: a deterministic mini-campaign
/// over both backends, ending with an erase (tombstone) so recovery has
/// to honour deletions too.
fn populate(dir: &Path) {
    let mut files =
        FileStable::open(file_dir(dir), Durability::ProcessCrash).expect("open file store");
    let mut wal = WalStable::open(wal_path(dir), Durability::ProcessCrash).expect("open wal");

    for round in 1..=ROUNDS {
        for spi in 1..=SPIS {
            let value = round * 100 + u64::from(spi);
            files
                .store(SlotId::sender(spi), value)
                .expect("file store SAVE");
            wal.store(SlotId::sender(spi), value).expect("wal SAVE");
            wal.store(SlotId::receiver(spi), value + 7)
                .expect("wal SAVE");
        }
    }
    // A torn-down SA: stored, then erased. Must stay gone after crash.
    wal.store(SlotId::sender(99), 4242).expect("wal SAVE");
    wal.erase(SlotId::sender(99)).expect("wal erase");
}

/// Child entry point, disguised as a test. In a normal run (env unset)
/// it is a no-op pass; when the parent re-spawns the binary with
/// `CRASH_RECOVERY_CHILD=1` it populates the stores and aborts.
#[test]
fn crash_child() {
    if env::var(CHILD_ENV).is_err() {
        return;
    }
    let dir = PathBuf::from(env::var(DIR_ENV).expect("child needs CRASH_RECOVERY_DIR"));
    populate(&dir);
    // Die without unwinding or flushing anything.
    std::process::abort();
}

fn spawn_child_and_crash(dir: &Path) {
    let exe = env::current_exe().expect("test binary path");
    let status = Command::new(exe)
        .args(["crash_child", "--exact", "--nocapture", "--test-threads=1"])
        .env(CHILD_ENV, "1")
        .env(DIR_ENV, dir)
        .status()
        .expect("spawn child");
    assert!(!status.success(), "child must die by abort, got {status:?}");
}

fn fresh_dir(tag: &str) -> PathBuf {
    let d = env::temp_dir().join(format!("reset-crash-recovery-{tag}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&d);
    fs::create_dir_all(&d).expect("mkdir");
    d
}

fn assert_recovered(dir: &Path, torn_tail: bool) {
    let files =
        FileStable::open(file_dir(dir), Durability::ProcessCrash).expect("reopen file store");
    let wal = WalStable::open(wal_path(dir), Durability::ProcessCrash).expect("reopen wal");

    for spi in 1..=SPIS {
        let last = ROUNDS * 100 + u64::from(spi);
        assert_eq!(
            files.load(SlotId::sender(spi)).expect("file FETCH"),
            Some(last),
            "file-per-slot lost spi {spi} across the crash"
        );
        // The torn tail only ever claims the *last appended* record (the
        // erased slot's tombstone is appended after all counter SAVEs),
        // so every counter slot must still read its final round.
        assert_eq!(
            wal.load(SlotId::sender(spi)).expect("wal FETCH"),
            Some(last),
            "WAL lost sender slot {spi} across the crash"
        );
        assert_eq!(
            wal.load(SlotId::receiver(spi)).expect("wal FETCH"),
            Some(last + 7),
            "WAL lost receiver slot {spi} across the crash"
        );
    }
    if torn_tail {
        // The torn record was the tombstone for slot 99: replay must
        // drop it, resurfacing the last complete record for that slot.
        assert_eq!(
            wal.load(SlotId::sender(99)).expect("wal FETCH"),
            Some(4242),
            "a torn tombstone must not be applied"
        );
    } else {
        assert_eq!(
            wal.load(SlotId::sender(99)).expect("wal FETCH"),
            None,
            "erased slot resurrected by WAL replay"
        );
    }
}

#[test]
fn process_abort_preserves_every_acknowledged_save() {
    let dir = fresh_dir("abort");
    spawn_child_and_crash(&dir);
    assert_recovered(&dir, false);
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn torn_wal_tail_is_dropped_on_reopen() {
    let dir = fresh_dir("torn");
    spawn_child_and_crash(&dir);

    // Simulate a power cut mid-append: chop the WAL mid-way through its
    // final record (the slot-99 tombstone).
    let wal_file = wal_path(&dir);
    let len = fs::metadata(&wal_file).expect("wal metadata").len();
    assert!(len >= WAL_RECORD_LEN as u64, "wal too short to tear");
    let torn = len - (WAL_RECORD_LEN as u64) / 2;
    let f = fs::OpenOptions::new()
        .write(true)
        .open(&wal_file)
        .expect("open wal for tearing");
    f.set_len(torn).expect("truncate wal");
    drop(f);

    assert_recovered(&dir, true);

    // Recovery must also have truncated the torn tail away, so further
    // appends start on a clean record boundary.
    let healed = fs::metadata(&wal_file).expect("wal metadata").len();
    assert_eq!(
        healed % WAL_RECORD_LEN as u64,
        0,
        "reopen left a partial record on disk"
    );
    let _ = fs::remove_dir_all(&dir);
}

//! Differential: batched ICV verification must agree with per-packet
//! verification — bit for bit, verdict for verdict — on randomized,
//! corrupted, truncated and mixed-suite traffic.
//!
//! `CipherSuite::verify_batch` exists purely as an amortization (the
//! HMAC suite's two-pass verifier); it must never change results. These
//! tests pin that equivalence at three levels: the raw suite API, the
//! wire codec, and the full `Sadb` batch drain.

use bytes::Bytes;
use reset_crypto::{ChaCha20Poly1305Suite, CipherSuite, FrameToVerify, HmacKey, HmacSha256Suite};
use reset_ipsec::{CryptoSuite, IpsecError, RxReject, RxResult, SaKeys, Sadb, SecurityAssociation};
use reset_sim::DetRng;
use reset_stable::MemStable;
use reset_wire::{frame_overhead, seal_frame, verify_frame, verify_frame_with, HEADER_LEN};

fn suites() -> Vec<Box<dyn CipherSuite>> {
    vec![
        Box::new(HmacSha256Suite::with_keystream(
            b"differential-auth-key",
            b"differential-enc-key",
        )),
        Box::new(HmacSha256Suite::auth_only(b"differential-auth-key")),
        Box::new(ChaCha20Poly1305Suite::new([0xC7; 32])),
    ]
}

/// One randomized frame: which suite sealed it, the (possibly mutated)
/// wire bytes, and the ESN high half the receiver would infer.
struct TestFrame {
    suite_idx: usize,
    wire: Vec<u8>,
    esn_hi: Option<u32>,
}

/// Generates `n` frames across all suites; roughly a third are mutated
/// (flipped ICV bytes, flipped body bytes, truncations).
fn generate_frames(n: usize, seed: u64) -> Vec<TestFrame> {
    let suites = suites();
    let mut rng = DetRng::new(seed);
    let mut frames = Vec::with_capacity(n);
    for _ in 0..n {
        let suite_idx = rng.below(suites.len() as u64) as usize;
        let suite = suites[suite_idx].as_ref();
        let esn = rng.chance(0.5);
        let seq = 1 + if esn {
            rng.below(1 << 40)
        } else {
            rng.below(u32::MAX as u64)
        };
        let mut payload = vec![0u8; rng.below(120) as usize];
        rng.fill_bytes(&mut payload);
        let spi = 0x1000 + suite_idx as u32;
        let mut wire = seal_frame(spi, seq, &payload, suite, esn).unwrap().to_vec();
        match rng.below(9) {
            0 => {
                // Flip a bit inside the ICV.
                let idx = wire.len() - 1 - rng.below(suite.icv_len() as u64) as usize;
                wire[idx] ^= 1 << rng.below(8);
            }
            1 => {
                // Truncate anywhere, including into the header.
                wire.truncate(rng.below(wire.len() as u64 + 1) as usize);
            }
            2 => {
                // Flip a bit anywhere in the frame.
                let idx = rng.below(wire.len() as u64) as usize;
                wire[idx] ^= 1 << rng.below(8);
            }
            _ => {}
        }
        let esn_hi = esn.then_some((seq >> 32) as u32);
        frames.push(TestFrame {
            suite_idx,
            wire,
            esn_hi,
        });
    }
    frames
}

#[test]
fn verify_batch_agrees_with_sequential_on_10k_randomized_frames() {
    let frames = generate_frames(10_000, 0xD1FF_5EED);
    let suites = suites();
    let mut verified = 0usize;
    let mut rejected = 0usize;
    for (suite_idx, suite) in suites.iter().enumerate() {
        let suite = suite.as_ref();
        let overhead = frame_overhead(suite);
        let body_off = HEADER_LEN + suite.iv_len();
        // Sequential ground truth through the wire codec.
        let mine: Vec<&TestFrame> = frames.iter().filter(|f| f.suite_idx == suite_idx).collect();
        let sequential: Vec<bool> = mine
            .iter()
            .map(|f| verify_frame_with(&f.wire, suite, f.esn_hi).is_ok())
            .collect();
        // Batch path over the frames that parse (the wire layer rejects
        // the rest before any crypto — they must all be sequential
        // failures too).
        let mut items: Vec<FrameToVerify<'_>> = Vec::new();
        let mut item_of_frame: Vec<Option<usize>> = Vec::with_capacity(mine.len());
        for f in &mine {
            let well_framed = f.wire.len() >= overhead && {
                let declared = u32::from_be_bytes(f.wire[8..12].try_into().unwrap()) as usize;
                declared == f.wire.len() - overhead
            };
            if !well_framed {
                item_of_frame.push(None);
                continue;
            }
            let seq_lo = u32::from_be_bytes(f.wire[4..8].try_into().unwrap());
            let seq = match f.esn_hi {
                Some(hi) => ((hi as u64) << 32) | seq_lo as u64,
                None => seq_lo as u64,
            };
            let ct_end = f.wire.len() - suite.icv_len();
            items.push(FrameToVerify {
                seq,
                header: &f.wire[..body_off],
                ciphertext: &f.wire[body_off..ct_end],
                esn_hi: f.esn_hi,
                icv: &f.wire[ct_end..],
            });
            item_of_frame.push(Some(items.len() - 1));
        }
        let mut verdicts = Vec::new();
        suite.verify_batch(&items, &mut verdicts);
        assert_eq!(verdicts.len(), items.len());
        for (i, (f, seq_ok)) in mine.iter().zip(&sequential).enumerate() {
            match item_of_frame[i] {
                Some(slot) => assert_eq!(
                    verdicts[slot],
                    *seq_ok,
                    "{} frame {} (len {}) diverged",
                    suite.name(),
                    i,
                    f.wire.len()
                ),
                None => assert!(
                    !seq_ok,
                    "{} frame {}: malformed framing must fail sequentially",
                    suite.name(),
                    i
                ),
            }
            if *seq_ok {
                verified += 1;
            } else {
                rejected += 1;
            }
        }
    }
    // The mix must actually exercise both outcomes, heavily.
    assert!(verified > 5_000, "verified {verified}");
    assert!(rejected > 1_500, "rejected {rejected}");
}

#[test]
fn suite_codec_agrees_with_legacy_hmac_codec_on_randomized_frames() {
    // The HMAC suites share the 12-byte ICV layout with the legacy
    // `HmacKey` codec; both must return identical verdicts on everything.
    let frames = generate_frames(3_000, 0xBEEF);
    let suites = suites();
    let legacy = HmacKey::new(b"differential-auth-key");
    for f in frames.iter().filter(|f| f.suite_idx < 2) {
        let suite = suites[f.suite_idx].as_ref();
        let via_suite = verify_frame_with(&f.wire, suite, f.esn_hi);
        let via_legacy = verify_frame(&f.wire, &legacy, f.esn_hi);
        assert_eq!(via_suite, via_legacy, "suite {}", suite.name());
    }
}

#[test]
fn sadb_batch_drain_matches_sequential_on_mixed_suite_queue() {
    // Three SAs, one per suite, interleaved bursts with replays,
    // forgeries, runts and a foreign SPI — the batch drain (which uses
    // verify_batch per SA run) must agree with packet-at-a-time
    // processing result for result.
    let mut rng = DetRng::new(0x5ADB);
    let build_db = || {
        let mut db: Sadb<MemStable> = Sadb::new();
        for (spi, suite) in CryptoSuite::ALL.iter().enumerate() {
            let spi = spi as u32 + 1;
            let keys = SaKeys::derive(b"sadb-mixed", &spi.to_be_bytes());
            let sa = SecurityAssociation::new(spi, keys).with_suite(*suite);
            db.install_outbound(sa.clone(), MemStable::new(), 50);
            db.install_inbound(sa, MemStable::new(), 50, 256);
        }
        db
    };
    let mut db_batch = build_db();
    let mut db_seq = build_db();

    let mut queue: Vec<Bytes> = Vec::new();
    for round in 0..60u32 {
        let spi = 1 + rng.below(CryptoSuite::ALL.len() as u64) as u32;
        for i in 0..(1 + rng.below(6)) {
            let payload = format!("r{round} s{spi} p{i}");
            queue.push(db_batch.protect(spi, payload.as_bytes()).unwrap().unwrap());
            // Keep the sequential DB's outbound counters in lockstep.
            db_seq.protect(spi, payload.as_bytes()).unwrap().unwrap();
        }
    }
    // Replays: re-queue a random slice.
    let replay_from = rng.below(queue.len() as u64 / 2) as usize;
    queue.extend_from_slice(&queue.clone()[replay_from..replay_from + 20]);
    // Forgeries: flip bits in some copies.
    for _ in 0..15 {
        let mut forged = queue[rng.below(queue.len() as u64) as usize].to_vec();
        let idx = rng.below(forged.len() as u64) as usize;
        forged[idx] ^= 1 << rng.below(8);
        queue.push(Bytes::from(forged));
    }
    // A runt and a foreign SPI.
    queue.push(Bytes::copy_from_slice(&[0x01, 0x02]));
    let mut foreign = queue[0].to_vec();
    foreign[3] = 0x77;
    queue.push(Bytes::from(foreign));
    // Shuffle so SA runs interleave unpredictably.
    let mut order: Vec<usize> = (0..queue.len()).collect();
    rng.shuffle(&mut order);
    let queue: Vec<Bytes> = order.into_iter().map(|i| queue[i].clone()).collect();

    let batch = db_batch.process_batch(&queue).unwrap();
    assert_eq!(batch.len(), queue.len());
    let mut delivered = 0usize;
    for (i, wire) in queue.iter().enumerate() {
        let single = match db_seq.process(wire) {
            Ok(r) => r,
            Err(IpsecError::Wire(e)) => RxResult::Rejected(RxReject::Wire(e)),
            Err(IpsecError::UnknownSa { spi }) => RxResult::Rejected(RxReject::UnknownSa { spi }),
            Err(other) => panic!("{other}"),
        };
        assert_eq!(batch[i], single, "packet {i}");
        if batch[i].is_delivered() {
            delivered += 1;
        }
    }
    assert!(delivered > 100, "delivered {delivered}");
}

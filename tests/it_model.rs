//! Regression traces for the bugs fixed alongside the machine extraction,
//! replayed deterministically through the model checker's [`replay`]
//! harness, plus a fail-closed differential between the pure machine and
//! the store-owning drivers under injected FETCH faults.
//!
//! Each trace is the shrunk schedule (or a hand-written minimal one) that
//! exercises the fixed behavior; `replay` runs the full differential
//! oracle at every step, so a regression in either the machine or a
//! driver trips the corresponding invariant or the parity check.

use anti_replay::machine::{FetchFaultKind, Phase, SfEffect, SfEvent, SfMachine};
use anti_replay::{RxOutcome, SeqNum, SfReceiver, SfSender};
use reset_model::{replay, Action, Config};
use reset_stable::{Fault, FaultyStable, MemStable, SlotId};

// ----------------------------------------------------------------------
// Bug 1 — unbounded wake-up buffer (now capped, overflow drops)
// ----------------------------------------------------------------------

/// With `buffer_limit = 1`, a mid-wake-up flood buffers exactly one frame
/// and drops the rest; the flush classifies only the capped buffer. The
/// model runs the capped real receiver in lockstep, so this trace fails
/// on pre-fix code (parity break: the unbounded driver buffers both).
#[test]
fn trace_wakeup_buffer_cap() {
    let cfg = Config {
        k_p: 2,
        k_q: 2,
        w: 4,
        max_sends: 4,
        max_resets_p: 0,
        max_resets_q: 1,
        max_replays: 0,
        buffer_limit: Some(1),
    };
    replay(
        cfg,
        &[
            Action::Send,
            Action::Send,
            Action::ResetQ,
            Action::WakeQ,
            Action::Deliver(0), // buffered (cap 1)
            Action::Deliver(0), // dropped, not buffered
            Action::SaveDoneQ,  // flush classifies the single buffered frame
        ],
    )
    .unwrap_or_else(|v| panic!("{v}"));
}

// ----------------------------------------------------------------------
// Bug 2 — `seqs_leaped` recorded the nominal 2K, not the true gap
// ----------------------------------------------------------------------

/// A wake-up whose FETCH finds a perfectly fresh save skips fewer than
/// 2K numbers; the stat must record the true gap. The schedule is also
/// replayed through the model (invariant 2 bounds the machine's
/// `unusable_gap` by 2K on un-lagged branches).
#[test]
fn trace_leap_gap_is_true_not_nominal() {
    replay(
        Config::small(),
        &[
            Action::Send,
            Action::Send,
            Action::Send,
            Action::SaveDoneP,
            Action::ResetP,
            Action::WakeP,
            Action::SaveDoneP,
        ],
    )
    .unwrap_or_else(|v| panic!("{v}"));

    // Driver-level cross-check with K large enough that the true gap
    // (8) is strictly below the nominal 2K (10) the old stat charged.
    let k = 5;
    let mut p = SfSender::new(MemStable::new(), SlotId::sender(0x51), k);
    for _ in 0..5 {
        p.send_next().unwrap();
    }
    p.save_completed().unwrap();
    for _ in 0..2 {
        p.send_next().unwrap();
    }
    p.reset();
    let resumed = p.wake_up().unwrap();
    assert_eq!(resumed.value(), 16);
    assert_eq!(p.stats().seqs_leaped, 8, "true gap, not 2K = 10");
}

// ----------------------------------------------------------------------
// Bug 3 — save-due threshold overflowed u64 near the sequence ceiling
// ----------------------------------------------------------------------

/// The pure machine must answer the save-due question without wrapping
/// when `lst` sits within 2K of `u64::MAX` (pre-fix: debug panic /
/// release wrap issuing a spurious save).
#[test]
fn machine_save_threshold_near_ceiling() {
    let k = 3u64;
    let mut m = SfMachine::sender(k);
    m.step(SfEvent::Reset);
    let fx = m.step(SfEvent::BeginWakeup {
        fetched: u64::MAX - 2 * k - 2,
    });
    assert!(matches!(fx[..], [SfEffect::SaveIssued(_)]));
    m.step(SfEvent::SaveDone);
    let fx = m.step(SfEvent::Send);
    assert_eq!(
        fx,
        vec![SfEffect::Sent(SeqNum::new(u64::MAX - 2))],
        "a send near the ceiling must not trip an overflowed threshold"
    );
    assert_eq!(m.last_stored(), u64::MAX - 2 * k - 2 + 2 * k);
}

// ----------------------------------------------------------------------
// Explorer finding — the §4 timing assumption is load-bearing
// ----------------------------------------------------------------------

/// Shrunk schedule found by `explore` under the reference bounds: the
/// sender's wake-up leap makes q's edge jump by 2·Kp in one message, so
/// q's in-flight save lags durable by more than 2·Kq when the reset
/// destroys it; the subsequent leap lands below an accepted number and a
/// replay of it is genuinely delivered twice — by the model *and* the
/// real driver. The replay must pass: the explorer recognizes the branch
/// as a semantic §4 breach (lag > 2K at the reset) rather than a
/// protocol violation. If gating ever regresses, this trace fails.
#[test]
fn trace_section4_lag_makes_replay_acceptance_legitimate() {
    replay(
        Config::small(),
        &[
            Action::Send,
            Action::Send,
            Action::Send,
            Action::Deliver(0),
            Action::Deliver(0),
            Action::Deliver(0),
            Action::SaveDoneP,
            Action::ResetP,
            Action::WakeP,
            Action::SaveDoneP,
            Action::Send,
            Action::SaveDoneQ,
            Action::Deliver(0),
            Action::ResetQ,
            Action::WakeQ,
            Action::Replay(7),
            Action::SaveDoneQ,
        ],
    )
    .unwrap_or_else(|v| panic!("{v}"));
}

/// An illegal schedule reports "not a legal schedule" instead of
/// panicking or masquerading as an invariant violation.
#[test]
fn illegal_trace_reports_cleanly() {
    let err = replay(Config::small(), &[Action::SaveDoneP]).unwrap_err();
    assert!(err.message.contains("not a legal schedule"), "{err}");
}

// ----------------------------------------------------------------------
// FETCH-fault differential: driver and pure machine fail closed in step
// ----------------------------------------------------------------------

/// For each injected FETCH fault the driver must return the error,
/// remain Down (fail closed), and land in exactly the state the pure
/// machine reaches via `FetchFault(kind)` — full structural parity.
#[test]
fn fetch_fault_differential_fail_closed() {
    let cases = [
        (Fault::CorruptLoad, FetchFaultKind::Corrupt),
        (Fault::RollbackLoad, FetchFaultKind::Rollback),
    ];
    for (fault, kind) in cases {
        let slot = SlotId::receiver(0xF0);
        let store = FaultyStable::new(MemStable::new());
        let mut q: SfReceiver<_> = SfReceiver::new(store, slot, 5, 32);

        // Two SAVEs witnessed *by the receiver's own saver* (edges 5 and
        // 10), so a rollback has a stale generation to serve and the
        // witness has a baseline to catch it against.
        let mut pure = SfMachine::receiver(5, 32);
        for s in 1..=10u64 {
            q.receive(SeqNum::new(s)).unwrap();
            pure.step(SfEvent::Receive(SeqNum::new(s)));
            if s % 5 == 0 {
                q.save_completed().unwrap();
                pure.step(SfEvent::SaveDone);
            }
        }
        q.reset();
        pure.step(SfEvent::Reset);

        q.store_mut().push_fault(fault);
        let err = q
            .begin_wakeup()
            .expect_err("scripted FETCH fault must surface");
        let fx = pure.step(SfEvent::FetchFault(kind));
        assert_eq!(fx, vec![SfEffect::FailedClosed(kind)], "{err}");
        assert_eq!(q.machine(), &pure, "driver/machine parity after {kind:?}");
        assert_eq!(q.phase(), Phase::Down, "fail closed: still down");
        assert_eq!(
            q.receive(SeqNum::new(11)).unwrap(),
            RxOutcome::DroppedDown,
            "no traffic is accepted after a failed-closed FETCH"
        );

        // The fault script is exhausted: a retry recovers and the leap
        // covers the newest witnessed SAVE.
        let leaped = q.wake_up().unwrap();
        assert_eq!(leaped.value(), 10 + 10);
        assert_eq!(q.phase(), Phase::Running);
    }
}

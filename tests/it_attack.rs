//! Integration: adversary campaigns against the full ESP datapath.
//!
//! Attacks operate on real wire bytes (recorded ciphertext), not
//! abstract sequence numbers: forgery, truncation, bit flips, cross-SA
//! splicing, reflection, and massed replay during every protocol phase.

use reset_ipsec::{Inbound, Outbound};
use reset_ipsec::{IpsecError, PeerEvent, RxResult, SaKeys, SecurityAssociation};
use reset_stable::MemStable;
use system_tests::{drive_traffic, peer_pair};

fn endpoints(k: u64) -> (Outbound<MemStable>, Inbound<MemStable>) {
    let keys = SaKeys::derive(b"attack-secret", b"p->q");
    let sa = SecurityAssociation::new(0x77, keys);
    (
        Outbound::new(sa.clone(), MemStable::new(), k),
        Inbound::new(sa, MemStable::new(), k, 64),
    )
}

#[test]
fn massed_replay_at_every_phase() {
    let (mut tx, mut rx) = endpoints(10);
    let mut recorded = Vec::new();
    for i in 0..50u32 {
        let w = tx.protect(format!("m{i}").as_bytes()).unwrap().unwrap();
        recorded.push(w.clone());
        rx.process(&w).unwrap();
    }
    rx.save_completed().unwrap();

    // Phase 1: replay against a live receiver.
    for w in &recorded {
        assert!(
            !rx.process(w).unwrap().is_delivered(),
            "live replay accepted"
        );
    }
    // Phase 2: replay against a down receiver (drops, then still safe).
    rx.reset();
    for w in &recorded {
        assert_eq!(rx.process(w).unwrap(), RxResult::DroppedDown);
    }
    // Phase 3: replay during the wake-up SAVE (buffered, then rejected).
    rx.begin_wakeup().unwrap();
    for w in recorded.iter().take(10) {
        assert_eq!(rx.process(w).unwrap(), RxResult::Buffered);
    }
    let resolved = rx.finish_wakeup().unwrap();
    assert_eq!(resolved.len(), 10);
    assert!(
        resolved.iter().all(|r| !r.is_delivered()),
        "buffered replay accepted: {resolved:?}"
    );
    // Phase 4: replay after full recovery.
    for w in &recorded {
        assert!(
            !rx.process(w).unwrap().is_delivered(),
            "post-recovery replay"
        );
    }
}

#[test]
fn forgery_and_tampering_rejected_before_window() {
    let (mut tx, mut rx) = endpoints(10);
    let w = tx.protect(b"genuine").unwrap().unwrap();
    rx.process(&w).unwrap();
    let edge_before = rx.seq_state().right_edge();

    // Flip every byte in turn: authentication must fail and the window
    // must be untouched (RFC 2406 ordering).
    for i in 0..w.len() {
        let mut bad = w.to_vec();
        bad[i] ^= 0x80;
        assert!(rx.process(&bad).is_err(), "tamper at byte {i} accepted");
    }
    assert_eq!(
        rx.seq_state().right_edge(),
        edge_before,
        "window touched by forgeries"
    );
    // SPI-byte flips fail as UnknownSa before any crypto runs; the other
    // 27 positions all fail authentication.
    assert_eq!(rx.auth_failures(), w.len() as u64 - 4);

    // Truncations.
    for cut in [0usize, 1, 7, 11, w.len() - 1] {
        assert!(
            rx.process(&w[..cut]).is_err(),
            "truncation to {cut} accepted"
        );
    }
}

#[test]
fn sequence_number_forgery_cannot_shift_window() {
    // The §3 both-reset attack needed a *recorded* high-sequence packet.
    // Here the adversary instead forges one with seq = 1,000,000: the ICV
    // must stop it, so the window edge never moves.
    let (mut tx, mut rx) = endpoints(10);
    let w = tx.protect(b"x").unwrap().unwrap();
    rx.process(&w).unwrap();
    let mut forged = w.to_vec();
    forged[4..8].copy_from_slice(&1_000_000u32.to_be_bytes());
    assert!(matches!(
        rx.process(&forged),
        Err(IpsecError::Wire(reset_wire::WireError::IcvMismatch))
    ));
    assert_eq!(rx.seq_state().right_edge().value(), 1);
}

#[test]
fn cross_sa_splicing_rejected() {
    // Bytes recorded on one SA replayed into another (same SPI rewritten):
    // different keys ⇒ ICV failure; different SPI ⇒ unknown SA.
    let (mut tx_a, _) = endpoints(10);
    let keys_b = SaKeys::derive(b"attack-secret", b"other-sa");
    let sa_b = SecurityAssociation::new(0x88, keys_b);
    let mut rx_b = Inbound::new(sa_b, MemStable::new(), 10, 64);

    let w = tx_a.protect(b"for sa a").unwrap().unwrap();
    // Unmodified: wrong SPI for rx_b.
    assert!(matches!(
        rx_b.process(&w),
        Err(IpsecError::UnknownSa { spi: 0x77 })
    ));
    // SPI rewritten to B's: now the ICV (computed under A's key) fails.
    let mut spliced = w.to_vec();
    spliced[0..4].copy_from_slice(&0x88u32.to_be_bytes());
    assert!(matches!(
        rx_b.process(&spliced),
        Err(IpsecError::Wire(reset_wire::WireError::IcvMismatch))
    ));
}

#[test]
fn reflection_attack_rejected() {
    // A→B traffic reflected back at A: A's inbound SA is B→A with
    // different SPI and keys, so reflected bytes never authenticate.
    let (mut a, mut b) = peer_pair(10, 64);
    let recorded = drive_traffic(&mut a, &mut b, 10);
    for w in &recorded {
        // These packets carry SPI 0xA2B (A→B); A's inbound expects 0xB2A.
        let err = a.handle_wire(w, 0);
        assert!(err.is_err(), "reflection accepted");
    }
}

#[test]
fn replayed_recovery_notify_cannot_reset_peer_state() {
    let (mut a, mut b) = peer_pair(10, 64);
    drive_traffic(&mut a, &mut b, 30);
    drive_traffic(&mut b, &mut a, 30);
    b.save_completed_out().unwrap();
    b.save_completed_in().unwrap();

    b.reset();
    let notify = b.recover().unwrap();
    assert!(matches!(
        a.handle_wire(&notify, 100).unwrap(),
        PeerEvent::PeerRecovered { .. }
    ));
    let edge_after_notify = a.inbound().seq_state().right_edge();

    // The adversary replays the notify 100 times: every copy rejected,
    // edge unmoved — the paper's closing-attack defence.
    for _ in 0..100 {
        assert_eq!(a.handle_wire(&notify, 200).unwrap(), PeerEvent::Rejected);
    }
    assert_eq!(a.inbound().seq_state().right_edge(), edge_after_notify);
}

#[test]
fn adversary_cannot_extend_sa_lifetime_with_replays() {
    use reset_ipsec::SaLifetime;
    // Usage accounting only advances on *delivered* packets, so replays
    // cannot burn (or stretch) the SA lifetime.
    let keys = SaKeys::derive(b"attack-secret", b"lt");
    let sa = SecurityAssociation::new(0x9, keys).with_lifetime(SaLifetime {
        max_packets: 1_000,
        max_bytes: u64::MAX,
    });
    let mut tx = Outbound::new(sa.clone(), MemStable::new(), 10);
    let mut rx = Inbound::new(sa, MemStable::new(), 10, 64);
    let w = tx.protect(b"once").unwrap().unwrap();
    rx.process(&w).unwrap();
    let used_before = rx.sa().usage().packets;
    for _ in 0..50 {
        let _ = rx.process(&w).unwrap();
    }
    assert_eq!(
        rx.sa().usage().packets,
        used_before,
        "replays charged the SA"
    );
}

//! Integration: the `Gateway` engine event loop across the whole stack —
//! the §3 reset-while-replaying attack over real ESP frames, recovery
//! event ordering, policy rekeys, DPD teardown, and batch parity, for
//! every negotiable cipher suite.

use bytes::Bytes;
use reset_ipsec::{
    CryptoSuite, DpdConfig, Gateway, GatewayBuilder, GatewayEvent, IpsecError, SaLifetime,
};
use reset_stable::MemStable;

const SPI: u32 = 0x6A7E;
const MASTER: &[u8] = b"it-gateway-master";

/// The two real transforms the §3 experiments sweep.
const SUITES: [CryptoSuite; 2] = [
    CryptoSuite::HmacSha256WithKeystream,
    CryptoSuite::ChaCha20Poly1305,
];

fn gateway_pair(suite: CryptoSuite, k: u64, w: u64) -> (Gateway<MemStable>, Gateway<MemStable>) {
    let build = || {
        GatewayBuilder::in_memory()
            .suite(suite)
            .save_interval(k)
            .window(w)
            .build()
    };
    let (mut p, mut q) = (build(), build());
    p.add_peer(SPI, MASTER);
    q.add_peer(SPI, MASTER);
    (p, q)
}

/// Sends `n` frames p→q, asserts delivery, returns the recorded wires.
fn drive(p: &mut Gateway<MemStable>, q: &mut Gateway<MemStable>, n: u32) -> Vec<Bytes> {
    let mut recorded = Vec::new();
    for i in 0..n {
        let f = p
            .protect(SPI, format!("pkt-{i}").as_bytes())
            .expect("datapath")
            .expect("endpoint up");
        recorded.push(f.wire.clone());
        q.push_wire(&f.wire).expect("mem store");
    }
    let events = q.poll_events();
    assert!(
        events
            .iter()
            .all(|e| matches!(e, GatewayEvent::Delivered { .. })),
        "{events:?}"
    );
    recorded
}

#[test]
fn section3_reset_while_replaying_rejected_for_both_suites() {
    for suite in SUITES {
        let (mut p, mut q) = gateway_pair(suite, 10, 64);
        let recorded = drive(&mut p, &mut q, 60);
        q.save_completed().unwrap();

        // The receiver is struck mid-replay: the adversary is already
        // pumping the recorded history when the host goes down, keeps
        // pumping through the wake-up SAVE, and finishes after recovery.
        q.reset();
        for w in &recorded[..20] {
            q.push_wire(w).unwrap();
        }
        assert!(
            q.poll_events()
                .iter()
                .all(|e| matches!(e, GatewayEvent::DroppedDown { .. })),
            "{suite:?}: down host must drop"
        );

        q.begin_recover().unwrap();
        for w in &recorded[20..40] {
            q.push_wire(w).unwrap();
        }
        assert!(
            q.poll_events()
                .iter()
                .all(|e| matches!(e, GatewayEvent::Buffered { .. })),
            "{suite:?}: waking host must buffer"
        );

        q.finish_recover().unwrap();
        let events = q.poll_events();
        // Event order: Recovered first, then the buffered replays
        // resolve — every one rejected by the leaped window.
        assert!(
            matches!(events[0], GatewayEvent::Recovered { sas: 2 }),
            "{suite:?}: {events:?}"
        );
        assert_eq!(events.len(), 21, "{suite:?}");
        assert!(
            events[1..]
                .iter()
                .all(|e| matches!(e, GatewayEvent::ReplayDropped { .. })),
            "{suite:?}: a buffered replay survived recovery: {events:?}"
        );

        // The tail of the attack, after recovery: still nothing lands.
        for w in &recorded[40..] {
            q.push_wire(w).unwrap();
        }
        assert!(
            q.poll_events()
                .iter()
                .all(|e| matches!(e, GatewayEvent::ReplayDropped { .. })),
            "{suite:?}: post-recovery replay accepted"
        );

        // Condition (ii): fresh traffic converges within 2K.
        let mut sacrificed = 0;
        loop {
            let f = p.protect(SPI, b"fresh").unwrap().unwrap();
            q.push_wire(&f.wire).unwrap();
            match q.poll_events().pop().expect("one event per frame") {
                GatewayEvent::Delivered { .. } => break,
                GatewayEvent::ReplayDropped { .. } => sacrificed += 1,
                other => panic!("{suite:?}: {other:?}"),
            }
            assert!(sacrificed <= 2 * 10, "{suite:?}: condition (ii) bound");
        }
    }
}

#[test]
fn batch_replay_after_recovery_matches_sequential_for_both_suites() {
    for suite in SUITES {
        let (mut p, mut q_seq) = gateway_pair(suite, 10, 64);
        let (_, mut q_batch) = gateway_pair(suite, 10, 64);
        let mut wires = Vec::new();
        for i in 0..40u32 {
            let f = p
                .protect(SPI, format!("b-{i}").as_bytes())
                .unwrap()
                .unwrap();
            wires.push(f.wire);
        }
        // Both receivers consume the stream, crash, recover, then face
        // the full replay — one frame at a time vs one NIC-queue drain.
        for q in [&mut q_seq, &mut q_batch] {
            q.push_wire_batch(&wires).unwrap();
            q.save_completed().unwrap();
            q.reset();
            q.recover().unwrap();
            q.poll_events();
        }
        for w in &wires {
            q_seq.push_wire(w).unwrap();
        }
        q_batch.push_wire_batch(&wires).unwrap();
        let seq_events = q_seq.poll_events();
        let batch_events = q_batch.poll_events();
        assert_eq!(seq_events, batch_events, "{suite:?}");
        assert!(
            seq_events
                .iter()
                .all(|e| matches!(e, GatewayEvent::ReplayDropped { .. })),
            "{suite:?}"
        );
    }
}

#[test]
fn policy_rekey_keeps_peers_in_lockstep_and_kills_replay_library() {
    let lifetime = SaLifetime {
        max_packets: 30,
        max_bytes: u64::MAX,
    };
    let build = || {
        GatewayBuilder::in_memory()
            .save_interval(10)
            .rekey_after(lifetime)
            .skeyid(b"shared-phase1")
            .build()
    };
    let (mut p, mut q) = (build(), build());
    p.add_peer(SPI, MASTER);
    q.add_peer(SPI, MASTER);
    let recorded = drive(&mut p, &mut q, 30);

    // Both gateways tick; both counted 30 packets on the SA, so both
    // rekey to the same generation — deriving identical replacements.
    p.tick(1_000);
    q.tick(1_000);
    for gw in [&mut p, &mut q] {
        let events = gw.poll_events();
        assert_eq!(
            events,
            vec![
                GatewayEvent::RekeyStarted { spi: SPI },
                GatewayEvent::RekeyCompleted {
                    spi: SPI,
                    suite: CryptoSuite::default()
                },
            ]
        );
    }
    // The recorded generation-0 ciphertext is dead under the new keys.
    for w in &recorded {
        q.push_wire(w).unwrap();
    }
    assert!(
        q.poll_events()
            .iter()
            .all(|e| matches!(e, GatewayEvent::AuthFailed { .. })),
        "old-generation frame authenticated after rekey"
    );
    // And fresh traffic interoperates from sequence 1.
    let f = p.protect(SPI, b"gen-1").unwrap().unwrap();
    assert_eq!(f.seq.value(), 1);
    q.push_wire(&f.wire).unwrap();
    assert!(matches!(
        q.poll_events()[..],
        [GatewayEvent::Delivered { .. }]
    ));
}

#[test]
fn dpd_grace_honours_recovery_but_tears_down_silence() {
    let dpd = DpdConfig {
        idle_timeout_ns: 1_000,
        probe_interval_ns: 500,
        max_probes: 2,
        grace_period_ns: 10_000,
    };
    let build = || {
        GatewayBuilder::in_memory()
            .save_interval(10)
            .dpd(dpd)
            .build()
    };

    // Peer recovers within grace: the pair survives.
    let mut a = build();
    let mut b = GatewayBuilder::in_memory().save_interval(10).build();
    a.add_peer(SPI, MASTER);
    b.add_peer(SPI, MASTER);
    drive(&mut b, &mut a, 3);
    a.tick(100);
    a.tick(1_500); // probe 1
    a.tick(2_100); // probe 2
    a.tick(2_700); // presumed down, grace opens
    assert_eq!(a.in_grace(SPI), Some(true));
    let probes = a
        .poll_events()
        .iter()
        .filter(|e| matches!(e, GatewayEvent::ProbeDue { .. }))
        .count();
    assert_eq!(probes, 2);
    // b recovers and proves liveness with authenticated traffic.
    b.save_completed().unwrap();
    b.reset();
    b.recover().unwrap();
    let f = b.protect(SPI, b"i am back").unwrap().unwrap();
    a.push_wire(&f.wire).unwrap();
    assert_eq!(a.in_grace(SPI), Some(false), "liveness exits grace");
    a.tick(20_000);
    assert!(
        !a.poll_events()
            .iter()
            .any(|e| matches!(e, GatewayEvent::PeerDead { .. })),
        "recovered peer must not be torn down"
    );

    // No recovery: grace expires and the pair dies (§6 bounded wait).
    let mut c = build();
    c.add_peer(SPI, MASTER);
    c.tick(0); // first tick arms the detector
    c.tick(1_500);
    c.tick(2_100);
    c.tick(2_700);
    c.tick(20_000);
    assert!(c
        .poll_events()
        .contains(&GatewayEvent::PeerDead { spi: SPI }));
    assert!(matches!(
        c.protect(SPI, b"gone"),
        Err(IpsecError::UnknownSa { spi: SPI })
    ));
}

#[test]
fn rekey_erases_persistent_slots_so_a_crash_recovers_the_fresh_generation() {
    // Persistent (file-backed) stores keyed by SPI only: the rekey must
    // erase the old generation's slots, or a post-rekey crash would
    // FETCH the stale counter and leap the new SA into the old number
    // space — rejecting the peer's fresh seq 1, 2, 3... forever.
    use reset_ipsec::SaDirection;
    use reset_stable::{Durability, FileStable};
    let dir = std::env::temp_dir().join(format!(
        "it-gw-rekey-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    let factory_dir = dir.clone();
    let make = move |spi: u32, d: SaDirection| {
        FileStable::open(
            factory_dir.join(format!("{spi}-{d:?}")),
            Durability::ProcessCrash,
        )
        .expect("store dir")
    };
    let mut gw = GatewayBuilder::with_stores(make).save_interval(10).build();
    gw.add_peer(SPI, MASTER);
    // Drive the counter to ~51 and make the SAVE durable.
    for _ in 0..50 {
        gw.protect(SPI, b"x").unwrap().unwrap();
    }
    gw.save_completed().unwrap();
    gw.rekey_now(SPI);
    gw.poll_events();
    // Crash before the new generation performs any save, then recover.
    gw.reset();
    gw.recover().unwrap();
    gw.poll_events();
    // FETCH must find nothing (slots erased at rekey): the leap is
    // 0 + 2K = 20. Without erasure it would be the stale 51 + 2K = 71.
    let f = gw.protect(SPI, b"fresh").unwrap().unwrap();
    assert_eq!(f.seq.value(), 20, "stale pre-rekey counter resurrected");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn handshake_keyed_gateways_interoperate() {
    // Keys negotiated by real IKE drive the engine end to end.
    use reset_crypto::toy_group;
    use reset_ipsec::run_handshake;
    let pair = run_handshake(toy_group(), b"psk", b"init", b"resp", 0x10, 0x20).unwrap();
    let mut initiator = GatewayBuilder::in_memory().build();
    let mut responder = GatewayBuilder::in_memory().build();
    initiator.install_outbound(pair.sa_i2r.clone());
    responder.install_inbound(pair.sa_i2r);
    assert_eq!(responder.sadb().len(), 1);
    for i in 0..10u32 {
        let f = initiator
            .protect(0x10, format!("ike-{i}").as_bytes())
            .unwrap()
            .unwrap();
        responder.push_wire(&f.wire).unwrap();
    }
    let events = responder.poll_events();
    assert_eq!(events.len(), 10);
    assert!(events
        .iter()
        .all(|e| matches!(e, GatewayEvent::Delivered { .. })));
}
